"""Fig 4: communication cost breakdown per configuration.

Paper claims: CLAN_DDS transfers the most floats per generation despite
forming children on the agents (parent + child genome back-and-forth);
CLAN_DDA pays genome traffic only in the first generation and then "orders
of magnitude lower cost".
"""

from repro.analysis.figures import fig4_comm_breakdown
from repro.analysis.report import render_comm_breakdown

from benchmarks.conftest import run_once


def test_fig4_comm_breakdown(benchmark, scale, report_sink):
    breakdown = run_once(
        benchmark,
        lambda: fig4_comm_breakdown(
            scale.fig4_workload_groups,
            scale.pop_size,
            scale.generations,
            n_agents=4,
            seed=0,
        ),
    )
    sections = [
        render_comm_breakdown(group, per_config)
        for group, per_config in breakdown.items()
    ]
    report_sink("fig4_comm_breakdown", "\n\n".join(sections))

    for group, per_config in breakdown.items():
        totals = {
            name: sum(categories.values())
            for name, categories in per_config.items()
        }
        assert totals["CLAN_DDS"] > totals["CLAN_DCS"], group
        assert totals["CLAN_DDA"] < totals["CLAN_DCS"], group

    # workload ordering: Atari transfers vastly more than CartPole
    atari_total = sum(breakdown["Atari Games"]["CLAN_DDS"].values())
    cartpole_total = sum(breakdown["Cartpole-v0"]["CLAN_DDS"].values())
    assert atari_total > 10 * cartpole_total
