"""Async-vs-barrier time-to-convergence on a heterogeneous edge fleet.

The paper's headline design point is the **A** in CLAN: clans never wait
on a global barrier. On a homogeneous testbed the saving is modest (clans
finish together); on the mixed fleets the paper targets — a Jetson next
to Pi 3s next to a $10 Pi Zero — barrier execution runs at the pace of
the straggler every generation. This benchmark runs one CLAN_DDA learning
run to convergence, replays it through the event simulator in ``barrier``
and ``async`` modes on a straggler-heavy spec, and gates on async never
losing. It also re-validates that barrier mode on the homogeneous testbed
still agrees with the closed-form analytic model to <0.1 %.
"""

from repro.cluster.analytic import ClusterSpec, time_generation
from repro.cluster.profiles import pi_env_step_seconds
from repro.cluster.simulator import GenerationSimulator
from repro.core.protocols import CLAN_DDA
from repro.neat.config import NEATConfig
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once

ENV = "CartPole-v0"
#: straggler-heavy mix: one fast node, two reference Pis, one Pi Zero
FLEET = ("jetson_nano", "raspberry_pi", "raspberry_pi", "pi_zero")


def test_async_beats_barrier_on_straggler_fleet(
    benchmark, report_sink, json_sink
):
    def build():
        config = NEATConfig.for_env(ENV, pop_size=40)
        # seed 7 takes several generations to converge, so the replay
        # exercises barrier waits on every one of them
        engine = CLAN_DDA(
            ENV, n_agents=len(FLEET), config=config, seed=7
        )
        run = engine.run(max_generations=12)
        step_s = pi_env_step_seconds(ENV)

        het = ClusterSpec.of_devices(FLEET)
        barrier_s = GenerationSimulator(
            het, step_s, mode="barrier"
        ).total_time(run.records)
        async_simulator = GenerationSimulator(het, step_s, mode="async")
        async_sims = async_simulator.simulate_run(run.records)
        async_s = async_simulator.aggregate_total(async_sims)

        # homogeneous barrier numbers must still match the analytic model
        homo = ClusterSpec.of_pis(len(FLEET))
        homo_sim = GenerationSimulator(homo, step_s, mode="barrier")
        worst_rel = max(
            abs(
                homo_sim.simulate(r).total_s
                - time_generation(r, homo, step_s).total_s
            )
            / time_generation(r, homo, step_s).total_s
            for r in run.records
        )

        return {
            "converged": run.converged,
            "generations": len(run.records),
            "imbalance": max(
                r.load_imbalance() for r in run.records
            ),
            "barrier_s": barrier_s,
            "async_s": async_s,
            "worst_straggler_gap_s": max(
                g.straggler_gap_s for g in async_sims
            ),
            "mean_radio_idle": sum(
                g.radio_idle_share for g in async_sims
            ) / len(async_sims),
            "homogeneous_analytic_rel_err": worst_rel,
        }

    result = run_once(benchmark, build)
    saving = 1 - result["async_s"] / result["barrier_s"]
    report_sink(
        "bench_async_heterogeneous",
        format_table(
            ["mode", "time-to-convergence", "note"],
            [
                ["barrier", f"{result['barrier_s']:.2f}s",
                 "slowest device paces every generation"],
                ["async", f"{result['async_s']:.2f}s",
                 f"{saving:.1%} faster; worst straggler gap "
                 f"{result['worst_straggler_gap_s']:.2f}s, radio idle "
                 f"{result['mean_radio_idle']:.0%}"],
            ],
            title=(
                f"[Async] CLAN_DDA time-to-convergence on {ENV}, "
                f"fleet [{', '.join(FLEET)}], "
                f"{result['generations']} generations"
            ),
        ),
    )
    json_sink("bench_async_heterogeneous", result)

    # CI gates
    assert result["converged"], "run must converge for time-to-convergence"
    # async never loses to barrier on a straggler-heavy fleet...
    assert result["async_s"] <= result["barrier_s"] + 1e-9
    # ...and on this spec it must win by a real margin, not a rounding one
    assert saving > 0.02, f"async saved only {saving:.2%}"
    # barrier mode on homogeneous specs stays a <0.1% twin of the
    # analytic model (the simulator's validation anchor)
    assert result["homogeneous_analytic_rel_err"] < 1e-3
