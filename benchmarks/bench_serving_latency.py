"""Micro-batched serving vs sequential scalar serving (extension).

PRs 1–2 vectorized *evaluation*; this benchmark measures the serving
counterpart: the :mod:`repro.serve` gateway coalesces concurrent
single-observation requests into batched forward passes through the
champion's pre-compiled plan, where sequential scalar serving answers
them one interpreted ``policy`` call at a time.

Both paths serve the same burst of requests against the same evolved
champion and must return *identical* actions — micro-batching is a pure
execution change (tests/test_serve_batcher.py owns the per-request
parity invariant; repeating the check here keeps the report honest).
Results go to ``reports/bench_serving_latency.txt`` and, machine-readably
(p50/p95 latency, qps, batch histogram), to
``reports/bench_serving_latency.json`` for the CI trend gate.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.neat.config import NEATConfig
from repro.neat.network import FeedForwardNetwork
from repro.serve import ChampionRegistry, InferenceGateway
from repro.utils.fmt import format_seconds, format_table

from benchmarks.conftest import run_once
from tests.conftest import make_evolved_genome

#: concurrent requests in the served burst
N_REQUESTS = 2000
#: observation dimensionality of the CartPole workload
OBS_DIM = 4
#: growth-boosted mutation budget: serving economics only appear once the
#: champion is big enough that a scalar forward pass dwarfs the per-request
#: asyncio overhead (~450 genes here; deployed continuous-learning
#: champions grow unbounded, unlike the paper's small converged policies)
MUTATIONS = 300
#: gateway coalescing knobs for the burst
MAX_BATCH = 128
MAX_WAIT_S = 0.001
#: timing repetitions; the minimum is reported
REPEATS = 3
#: acceptance floor: the micro-batched gateway must beat sequential
#: scalar serving by at least this factor at equal correctness
MIN_SPEEDUP = 3.0


def _champion_config() -> NEATConfig:
    return NEATConfig.for_env(
        "CartPole-v0",
        node_add_prob=0.4,
        conn_add_prob=0.55,
        node_delete_prob=0.0,
        conn_delete_prob=0.0,
    )


def _observations() -> list[list[float]]:
    rng = random.Random(11)
    return [
        [rng.uniform(-1.0, 1.0) for _ in range(OBS_DIM)]
        for _ in range(N_REQUESTS)
    ]


def _serve_burst(registry, observations):
    """Serve the whole burst through a fresh gateway; returns
    ``(actions, elapsed_s, ServiceStats)``."""

    async def run():
        gateway = InferenceGateway(
            registry,
            max_batch=MAX_BATCH,
            max_wait_s=MAX_WAIT_S,
            close_registry=False,
        )
        await gateway.start()
        start = time.perf_counter()
        served = await asyncio.gather(
            *(gateway.submit(obs) for obs in observations)
        )
        elapsed = time.perf_counter() - start
        stats = gateway.stats()
        await gateway.close()
        return [s.action for s in served], elapsed, stats

    return asyncio.run(run())


def test_serving_latency_speedup(benchmark, report_sink, json_sink):
    config = _champion_config()
    champion = make_evolved_genome(
        config, seed=5, mutations=MUTATIONS, key=1
    )
    observations = _observations()
    registry = ChampionRegistry(config)
    registry.publish(champion, source="bench")
    scalar = FeedForwardNetwork.create(champion, config)

    # sequential scalar serving: one interpreted policy call per request
    sequential_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        expected = [scalar.policy(obs) for obs in observations]
        sequential_s = min(
            sequential_s, time.perf_counter() - start
        )

    # micro-batched serving: same burst, coalesced forward passes
    best_s = float("inf")
    actions = stats = None
    for repeat in range(REPEATS):
        if repeat == 0:
            burst_actions, elapsed, burst_stats = run_once(
                benchmark,
                lambda: _serve_burst(registry, observations),
            )
        else:
            burst_actions, elapsed, burst_stats = _serve_burst(
                registry, observations
            )
        if elapsed < best_s:
            best_s, actions, stats = elapsed, burst_actions, burst_stats

    # equal correctness is the precondition for comparing the timings
    assert actions == expected, (
        "micro-batched actions diverged from sequential scalar serving"
    )

    speedup = sequential_s / best_s
    rows = [
        ["sequential scalar", f"{sequential_s * 1e3:.1f}",
         f"{N_REQUESTS / sequential_s:,.0f}", "-", "-", "1.0x"],
        ["micro-batched gateway", f"{best_s * 1e3:.1f}",
         f"{N_REQUESTS / best_s:,.0f}",
         format_seconds(stats.p50_latency_s),
         format_seconds(stats.p95_latency_s),
         f"{speedup:.1f}x"],
    ]
    report_sink(
        "bench_serving_latency",
        f"Micro-batched serving — {N_REQUESTS} concurrent requests, "
        f"{champion.gene_count()}-gene champion, CartPole-v0\n"
        + format_table(
            ["serving path", "time (ms)", "req/s", "p50", "p95",
             "speedup"],
            rows,
        )
        + f"\nmean batch size {stats.mean_batch_size:.1f}, "
        f"shed {stats.shed}; action parity: exact for all "
        f"{N_REQUESTS} requests",
    )
    json_sink(
        "bench_serving_latency",
        {
            "n_requests": N_REQUESTS,
            "champion_genes": champion.gene_count(),
            "max_batch": MAX_BATCH,
            "max_wait_s": MAX_WAIT_S,
            "sequential_s": sequential_s,
            "micro_batched_s": best_s,
            "speedup": speedup,
            "qps_sequential": N_REQUESTS / sequential_s,
            "qps_micro_batched": N_REQUESTS / best_s,
            "p50_latency_s": stats.p50_latency_s,
            "p95_latency_s": stats.p95_latency_s,
            "mean_batch_size": stats.mean_batch_size,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(
                    stats.batch_size_histogram.items()
                )
            },
            "shed": stats.shed,
            "action_parity": True,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"micro-batched serving only {speedup:.1f}x faster; need "
        f">= {MIN_SPEEDUP}x"
    )
