"""Fig 6: CLAN_DDS evolution + communication runtime at scale.

Paper claim: "evolution does not scale beyond 2 agents ... communication
starts to dominate from the outset since the entire population is needed to
be accessed multiple times during evolution".
"""

from repro.analysis.figures import fig6_dds_scaling
from repro.analysis.report import render_scaling_series

from benchmarks.conftest import run_once


def evo_comm(timing):
    return timing.evolution_s + timing.communication_s


def test_fig6_dds_scaling(benchmark, scale, report_sink):
    series = run_once(
        benchmark,
        lambda: fig6_dds_scaling(
            scale.workloads,
            scale.fig6_grid,
            scale.pop_size,
            scale.generations,
            seed=0,
        ),
    )
    sections = [
        render_scaling_series(
            "Fig 6",
            env_id,
            per_n,
            components=("evolution", "communication"),
        )
        for env_id, per_n in series.items()
    ]
    report_sink("fig6_dds_scaling", "\n\n".join(sections))

    for env_id, per_n in series.items():
        grid = sorted(per_n)
        two_agents = per_n[grid[1]] if len(grid) > 1 else per_n[grid[0]]
        largest = per_n[grid[-1]]
        # evolution + communication never improves meaningfully past 2
        assert evo_comm(largest) > 0.85 * evo_comm(two_agents), env_id
        # and communication dominates the evolution phase at scale
        assert largest.communication_s > largest.evolution_s, env_id
