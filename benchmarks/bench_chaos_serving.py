"""Chaos serving: replica SIGKILL + dropped deployment under burst load.

PR 10's self-healing fleet claims that serving-tier failures are
*absorbed*, not surfaced: a replica process killed mid-burst costs at
most the in-flight requests it was holding (which are transparently
re-dispatched), and a lost deployment message is re-delivered by the
anti-entropy repair loop. This benchmark injects exactly that scenario
through the deterministic chaos plane (``docs/chaos.md``) — a seeded
Poisson burst against a 2-replica fleet, with replica 0 SIGKILLed on
its third inference dispatch and replica 1's second deployment message
dropped — and gates four claims:

* **availability** — >= 99% of offered requests are served, and zero
  requests *fail* (shedding under respawn pressure is allowed; errors
  are not);
* **parity** — every response's action equals what a fresh scalar
  interpreter of the champion version it was attributed to (via
  ``ChampionRegistry.record_for``) produces for that observation, so
  healing never serves a wrong or half-deployed policy;
* **monotone deployment** — no replica's served-version trace ever
  regresses, even though one replica was respawned mid-run and another
  had a deployment message dropped;
* **recovery latency** — the fleet is back to full strength (both
  replicas live and caught up) within ``RECOVERY_BOUND_S`` of the kill.

Results go to ``reports/bench_chaos_serving.txt`` and (for the CI
artifact) ``reports/bench_chaos_serving.json``.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.neat.config import NEATConfig
from repro.serve import ChampionRegistry, LoadGenerator, ServingFleet
from repro.utils.fmt import format_seconds, format_table

from benchmarks.conftest import run_once
from tests.conftest import make_evolved_genome

#: requests in the seeded Poisson burst
N_REQUESTS = 800
#: offered arrival rate — brisk enough that the kill lands mid-traffic
#: with plenty of in-flight work, slow enough for a bounded runtime
RATE_HZ = 2_000.0
#: observation dimensionality of the CartPole workload
OBS_DIM = 4
#: mutation budget for the two champions (small: correctness, not
#: throughput, is under test here)
MUTATIONS = 60
#: gateway replicas behind the balancer
REPLICAS = 2
#: availability floor over offered requests
MIN_SUCCESS = 0.99
#: the fleet must be back at full strength this soon after the kill
RECOVERY_BOUND_S = 5.0
#: how often the recovery monitor samples fleet liveness
MONITOR_PERIOD_S = 0.002

#: the scenario: kill replica 0 on its 3rd inference dispatch, and
#: lose replica 1's 2nd deployment message (the repair loop must
#: re-deliver it before the post-swap parity audit can pass)
PLAN = FaultPlan(
    seed=13,
    faults=(
        Fault(action="kill", scope="replica", target=0,
              kind="infer", at=3),
        Fault(action="drop", scope="replica", target=1,
              kind="publish", at=2),
    ),
)


def _observations(seed: int) -> list[list[float]]:
    rng = random.Random(seed)
    return [
        [rng.uniform(-1.0, 1.0) for _ in range(OBS_DIM)]
        for _ in range(N_REQUESTS)
    ]


def _replay_sampler(observations):
    iterator = iter(observations)
    return lambda rng: next(iterator)


def _drive(config, champions):
    """One chaotic burst; returns everything the gates need."""
    injector = ChaosInjector(PLAN)
    observations = _observations(31)

    async def run():
        loop = asyncio.get_running_loop()
        registry = ChampionRegistry(config)
        fleet = ServingFleet(
            registry,
            replicas=REPLICAS,
            seed=7,
            chaos=injector,
        )
        await fleet.start()

        # liveness monitor: timestamps of degraded/recovered transitions
        transitions: list[tuple[float, int]] = []
        stop = asyncio.Event()

        async def monitor():
            last = None
            while not stop.is_set():
                live = len(fleet.health()["live_replicas"])
                if live != last:
                    transitions.append((time.monotonic(), live))
                    last = live
                await asyncio.sleep(MONITOR_PERIOD_S)

        # first deployment lands before any traffic; the second lands
        # mid-burst (publishes run on an executor thread, like the
        # evolution thread would, so registry delivery cannot stall
        # the loop the fleet heals on)
        await loop.run_in_executor(
            None, lambda: registry.publish(champions[0], source="bench")
        )
        await asyncio.wait_for(fleet.wait_deployed(), timeout=10.0)
        monitor_task = loop.create_task(monitor())
        generator = LoadGenerator(
            fleet.submit,
            _replay_sampler(observations),
            rate_hz=RATE_HZ,
            n_requests=N_REQUESTS,
            seed=101,
        )
        load_task = loop.create_task(generator.run())
        await asyncio.sleep(N_REQUESTS / RATE_HZ / 2)
        await loop.run_in_executor(
            None, lambda: registry.publish(champions[1], source="bench")
        )
        report = await load_task
        stop.set()
        await monitor_task
        stats = await fleet.scrape()
        traces = fleet.version_traces()
        health = fleet.health()
        await fleet.close()
        records = {
            version: registry.record_for(version) for version in (1, 2)
        }
        registry.close()
        return report, traces, stats, health, records, transitions

    outcome = asyncio.run(run())
    return (*outcome, injector)


def _recovery_latency_s(transitions) -> float | None:
    """Seconds from first degradation to full strength, or None."""
    degraded_at = None
    for stamp, live in transitions:
        if degraded_at is None and live < REPLICAS:
            degraded_at = stamp
        elif degraded_at is not None and live >= REPLICAS:
            return stamp - degraded_at
    return None


def test_chaos_serving(benchmark, report_sink, json_sink):
    config = NEATConfig.for_env("CartPole-v0")
    champions = [
        make_evolved_genome(config, seed=5, mutations=MUTATIONS, key=1),
        make_evolved_genome(config, seed=9, mutations=MUTATIONS, key=2),
    ]
    report, traces, stats, health, records, transitions, injector = (
        run_once(benchmark, lambda: _drive(config, champions))
    )

    # -- the plan executed: both faults fired, nothing left pending
    assert injector.faults_fired == 2, injector.injected_counts()
    assert injector.faults_pending == 0
    assert health["replica_respawns"] >= 1

    # -- availability: >= 99% served, zero hard failures
    assert report.failed == 0, (
        f"{report.failed} request(s) failed outright — in-flight "
        "re-dispatch should have absorbed the kill"
    )
    success = report.served / report.offered
    assert success >= MIN_SUCCESS, (
        f"served {report.served}/{report.offered} "
        f"({success:.1%}) < {MIN_SUCCESS:.0%} floor"
    )

    # -- monotone deployment: no replica's version trace regresses
    for replica_id, trace in traces.items():
        assert trace == sorted(trace), (
            f"replica {replica_id} served versions out of order: "
            f"{trace}"
        )

    # -- parity: every served action matches the scalar reference of
    #    the exact record it was attributed to
    scalars = {
        version: record.scalar_network()
        for version, record in records.items()
    }
    checked = 0
    for observation, response in zip(
        report.observations, report.responses
    ):
        if response is None:
            continue
        expected = scalars[response.champion_version].policy(observation)
        assert response.action == expected, (
            f"action diverged from the v{response.champion_version} "
            "scalar reference"
        )
        checked += 1
    assert checked == report.served

    # -- recovery: full strength again within the bound
    recovery_s = _recovery_latency_s(transitions)
    assert recovery_s is not None, (
        "the liveness monitor never saw the fleet degrade+recover "
        f"(transitions: {transitions})"
    )
    assert recovery_s <= RECOVERY_BOUND_S, (
        f"fleet took {recovery_s:.2f}s to recover "
        f"(bound {RECOVERY_BOUND_S}s)"
    )

    rows = [
        ["offered", str(report.offered)],
        ["served", f"{report.served} ({success:.1%})"],
        ["shed", str(report.shed)],
        ["failed", str(report.failed)],
        ["respawns", str(health["replica_respawns"])],
        ["in-flight retries", str(health["requests_retried"])],
        ["recovery", format_seconds(recovery_s)],
        ["p95 latency", format_seconds(stats.p95_latency_s)],
        ["parity checks", f"{checked} exact"],
        ["faults fired", str(injector.faults_fired)],
    ]
    report_sink(
        "bench_chaos_serving",
        f"Chaos serving — {N_REQUESTS} Poisson requests at "
        f"{RATE_HZ:,.0f} Hz against {REPLICAS} replicas; replica 0 "
        "killed on infer #3, replica 1's deployment #2 dropped\n"
        + format_table(["metric", "value"], rows)
        + f"\ngates: >= {MIN_SUCCESS:.0%} served, 0 failed, 0 stale "
        f"serves, exact parity, recovery <= {RECOVERY_BOUND_S}s",
    )
    json_sink(
        "bench_chaos_serving",
        {
            "n_requests": N_REQUESTS,
            "rate_hz": RATE_HZ,
            "replicas": REPLICAS,
            "plan": PLAN.to_dict(),
            "offered": report.offered,
            "served": report.served,
            "shed": report.shed,
            "failed": report.failed,
            "success_rate": success,
            "min_success": MIN_SUCCESS,
            "replica_respawns": health["replica_respawns"],
            "requests_retried": health["requests_retried"],
            "recovery_latency_s": recovery_s,
            "recovery_bound_s": RECOVERY_BOUND_S,
            "p95_latency_s": stats.p95_latency_s,
            "parity_checked": checked,
            "faults_injected": injector.injected_counts(),
        },
    )
