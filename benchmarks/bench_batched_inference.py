"""Scalar vs batched inference engine at population scale (extension).

The paper's dominant cost is the Inference block — genes processed per
environment time-step. This benchmark measures how much of that cost the
NumPy-backed :class:`~repro.neat.network.BatchedFeedForwardNetwork`
recovers over the dict-and-loop interpreter when a population of evolved
genomes is evaluated against a shared observation set (the DCS/DDS serving
pattern: many genomes, many observations per generation).

Compile time is charged to both backends, so the reported speedup is the
end-to-end one an evaluator sees. Results are rendered to
``reports/bench_batched_inference.txt`` and, machine-readably, to
``reports/bench_batched_inference.json`` for perf-trajectory tracking.
"""

from __future__ import annotations

import time

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.network import BatchedFeedForwardNetwork, FeedForwardNetwork
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once
from tests.conftest import make_evolved_genome

#: evolved genomes in the benchmark population
POPULATION = 16
#: observations per genome (a generation's worth of env steps in DCS terms)
BATCH = 256
#: structural mutation bursts growing each genome's hidden topology
MUTATIONS = 60
#: timing repetitions; the minimum is reported
REPEATS = 3
#: acceptance floor from the issue: batched must be at least this much faster
MIN_SPEEDUP = 5.0


def _population(config: NEATConfig) -> list:
    return [
        make_evolved_genome(config, seed=seed, mutations=MUTATIONS, key=seed)
        for seed in range(POPULATION)
    ]


def _time_scalar(genomes, config, observations) -> float:
    rows = [list(row) for row in observations]
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for genome in genomes:
            network = FeedForwardNetwork.create(genome, config)
            for row in rows:
                network.activate(row)
        best = min(best, time.perf_counter() - start)
    return best


def _time_batched(genomes, config, observations) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for genome in genomes:
            network = BatchedFeedForwardNetwork.create(genome, config)
            network.activate_batch(observations)
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_inference_speedup(benchmark, report_sink, json_sink):
    config = NEATConfig(
        num_inputs=8,
        num_outputs=4,
        pop_size=POPULATION,
        node_add_prob=0.35,
        conn_add_prob=0.5,
    )
    genomes = _population(config)
    observations = np.random.default_rng(0).uniform(
        -2.0, 2.0, size=(BATCH, config.num_inputs)
    )

    # the two backends must agree before their timings mean anything
    worst_diff = 0.0
    for genome in genomes[:4]:
        scalar_net = FeedForwardNetwork.create(genome, config)
        batched_out = BatchedFeedForwardNetwork.create(
            genome, config
        ).activate_batch(observations[:32])
        for i in range(32):
            scalar_out = scalar_net.activate(list(observations[i]))
            worst_diff = max(
                worst_diff,
                float(np.max(np.abs(batched_out[i] - scalar_out))),
            )
    assert worst_diff <= 1e-9

    scalar_s = run_once(
        benchmark, lambda: _time_scalar(genomes, config, observations)
    )
    batched_s = _time_batched(genomes, config, observations)
    speedup = scalar_s / batched_s
    activations = POPULATION * BATCH
    genes = sum(g.gene_count() for g in genomes)

    rows = [
        ["scalar", f"{scalar_s * 1e3:.1f}",
         f"{activations / scalar_s:,.0f}", "1.0x"],
        ["batched", f"{batched_s * 1e3:.1f}",
         f"{activations / batched_s:,.0f}", f"{speedup:.1f}x"],
    ]
    report_sink(
        "bench_batched_inference",
        f"Batched inference engine — {POPULATION} evolved genomes "
        f"({genes} genes) x {BATCH} observations\n"
        + format_table(
            ["backend", "time (ms)", "activations/s", "speedup"], rows
        )
        + f"\nmax |scalar - batched| = {worst_diff:.2e}",
    )
    json_sink(
        "bench_batched_inference",
        {
            "population": POPULATION,
            "batch": BATCH,
            "total_genes": genes,
            "scalar_s": scalar_s,
            "batched_s": batched_s,
            "speedup": speedup,
            "activations_per_s_scalar": activations / scalar_s,
            "activations_per_s_batched": activations / batched_s,
            "max_abs_diff": worst_diff,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched backend only {speedup:.1f}x faster; need "
        f">= {MIN_SPEEDUP}x"
    )
