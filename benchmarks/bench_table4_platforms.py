"""Table IV: evaluation-platform specifications and prices."""

from repro.analysis.tables import table4_platforms
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once


def test_table4_platforms(benchmark, report_sink):
    rows = run_once(benchmark, table4_platforms)
    rendered = format_table(
        ["platform", "price", "inference x Pi", "evolution x Pi"],
        [
            [
                row["platform"],
                f"${row['price_usd']:.0f}",
                f"{row['inference_speedup_vs_pi']:.1f}",
                f"{row['evolution_speedup_vs_pi']:.1f}",
            ]
            for row in rows
        ],
        title="[Table IV] platform models",
    )
    report_sink("table4_platforms", rendered)
    prices = {row["platform"]: row["price_usd"] for row in rows}
    assert prices["raspberry_pi"] == 40.0
    assert prices["hpc_cpu"] == 1500.0
