"""Fig 8: compute/communication share, single-step inference, 2 nodes.

Paper claims (share of communication): CartPole ~93-94% in every
configuration; AirRaid 36% (DCS), 50% (DDS), 22% (DDA) — DDA cuts the
communication share ~3.6x versus DDS.
"""

from repro.analysis.figures import fig8_share
from repro.analysis.report import render_share

from benchmarks.conftest import run_once

WORKLOADS = ("CartPole-v0", "Airraid-ram-v0")


def test_fig8_share(benchmark, scale, report_sink):
    shares = run_once(
        benchmark,
        lambda: fig8_share(
            WORKLOADS, scale.pop_size, scale.generations, n_agents=2, seed=0
        ),
    )
    sections = [
        render_share(env_id, per_config)
        for env_id, per_config in shares.items()
    ]
    report_sink("fig8_share", "\n\n".join(sections))

    cartpole = shares["CartPole-v0"]
    for config_name, share in cartpole.items():
        assert share["communication"] > 0.8, config_name

    airraid = shares["Airraid-ram-v0"]
    assert (
        airraid["CLAN_DDA"]["communication"]
        < airraid["CLAN_DCS"]["communication"]
        < airraid["CLAN_DDS"]["communication"]
    )
    # the headline: DDS -> DDA communication share reduction
    reduction = (
        airraid["CLAN_DDS"]["communication"]
        / airraid["CLAN_DDA"]["communication"]
    )
    assert reduction > 1.5
