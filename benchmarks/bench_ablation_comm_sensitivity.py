"""Ablation: sensitivity of the scaling story to the link-cost constants.

DESIGN.md calls out the per-phase synchronisation coefficient as the
calibrated constant behind the paper's crossover points. This ablation
sweeps it (and the per-message overhead) to show the *qualitative* story —
DDA outlives DCS, small workloads are communication-bound — is robust to
the calibration, not an artefact of one constant.
"""

import dataclasses

from repro.analysis.cache import shared_cache
from repro.cluster.analytic import ClusterSpec, mean_generation_time
from repro.cluster.netmodel import WiFiModel
from repro.cluster.profiles import pi_env_step_seconds
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once

ENV = "Airraid-ram-v0"
N = 8


def test_ablation_comm_sensitivity(benchmark, scale, report_sink):
    def build():
        cache = shared_cache(ENV, scale.pop_size, seed=0, max_steps=1)
        step_s = pi_env_step_seconds(ENV)
        dcs = cache.records("CLAN_DCS", N, scale.generations)
        dda = cache.records("CLAN_DDA", N, scale.generations)
        rows = {}
        for sync_factor in (0.25, 1.0, 4.0):
            for msg_factor in (0.5, 1.0, 2.0):
                link = WiFiModel().scaled(msg_factor)
                spec = dataclasses.replace(
                    ClusterSpec(n_agents=N, agent_device=ClusterSpec.of_pis(
                        N).agent_device, link=link),
                    phase_sync_s=ClusterSpec.of_pis(N).phase_sync_s
                    * sync_factor,
                )
                dcs_t = mean_generation_time(dcs, spec, step_s).total_s
                dda_t = mean_generation_time(dda, spec, step_s).total_s
                rows[(sync_factor, msg_factor)] = (dcs_t, dda_t)
        return rows

    rows = run_once(benchmark, build)
    table = [
        [sync, msg, f"{dcs_t:.2f}s", f"{dda_t:.2f}s",
         f"{dcs_t / dda_t:.2f}x"]
        for (sync, msg), (dcs_t, dda_t) in rows.items()
    ]
    report_sink(
        "ablation_comm_sensitivity",
        format_table(
            ["sync cost x", "message cost x", "DCS total", "DDA total",
             "DDA advantage"],
            table,
            title=(
                f"[Ablation] link-constant sweep, single-step {ENV}, "
                f"{N} nodes (preset={scale.name})"
            ),
        ),
    )
    # DDA wins across the entire swept constant space
    for dcs_t, dda_t in rows.values():
        assert dda_t < dcs_t
