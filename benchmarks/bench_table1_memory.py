"""Table I: memory behaviour of BP-based learning versus NE.

Paper claim: DQN needs ~7 MB of weights and >220 MB of training state at
batch 32; a whole NEAT population stays under 1 MB even on Atari
(GeneSys measurement). We measure a real evolved population.
"""

from repro.analysis.tables import table1_memory
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once


def test_table1_memory(benchmark, scale, report_sink):
    comparison = run_once(
        benchmark,
        lambda: table1_memory(
            env_id="Airraid-ram-v0",
            pop_size=scale.pop_size,
            generations=scale.generations,
            seed=0,
        ),
    )
    rows = [
        ["DQN weights (1.7M fp32 params)",
         f"{comparison.dqn_weights_mb:.1f} MB"],
        [
            "DQN training state (batch 32)",
            f"{comparison.dqn_batch_training_mb:.1f} MB",
        ],
        [
            f"NEAT population ({comparison.neat_population_size} genomes, "
            f"{comparison.neat_env_id})",
            f"{comparison.neat_population_mb:.3f} MB",
        ],
        ["reduction factor", f"{comparison.reduction_factor:.0f}x"],
    ]
    report_sink(
        "table1_memory",
        format_table(
            ["quantity", "measured"],
            rows,
            title="[Table I] memory: BP-based RL vs NEAT "
            f"(preset={scale.name})",
        ),
    )
    # the paper's qualitative claims
    assert comparison.dqn_weights_mb > 6.0
    assert comparison.neat_population_mb < comparison.dqn_weights_mb
