"""Kill-a-clan gate: churn must not change where evolution ends up.

The fault-tolerance claim (docs/fault_tolerance.md) is sharp: because
every RNG stream is name-derived, a clan respawned from its checkpoint
replays its lost generations *bit-identically*, so a run that loses a
worker process mid-flight ends with exactly the trajectory of a run that
never did. This benchmark runs a 4-clan barrier-free fleet twice — once
undisturbed, once SIGKILLing a clan's worker process mid-run (triggered
deterministically off the first champion report) — and gates on:

* the disturbed run completing its full per-clan budget,
* churn counters reporting exactly one death and one respawn,
* the final best fitness matching the undisturbed run exactly,
* recovery latency being bounded (no multi-second supervision stalls).
"""

import os
import signal

from repro.cluster.runtime import DistributedClanRuntime
from repro.neat.config import NEATConfig
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once

ENV = "CartPole-v0"
N_CLANS = 4
BUDGET = 8


def _make_runtime(config):
    return DistributedClanRuntime(
        ENV,
        n_clans=N_CLANS,
        config=config,
        seed=7,
        respawn_backoff_s=0.0,
        heartbeat_timeout_s=30.0,
    )


def test_sigkill_midrun_recovers_to_identical_best(
    benchmark, report_sink, json_sink
):
    def build():
        config = NEATConfig.for_env(ENV, pop_size=40)
        with _make_runtime(config) as runtime:
            baseline = runtime.run_async(
                max_generations=BUDGET, fitness_threshold=1e9
            )
            baseline_best = runtime.best_genome()

        killed = []

        def kill_once(event):
            # fires on the caller thread at the first champion report —
            # deterministically early, genuinely mid-run — and SIGKILLs
            # a clan that is *not* the one that just reported
            if not killed:
                victim = (event.clan_id + 1) % N_CLANS
                os.kill(
                    disturbed_runtime.pool._procs[victim].pid,
                    signal.SIGKILL,
                )
                killed.append(victim)

        with _make_runtime(config) as disturbed_runtime:
            disturbed = disturbed_runtime.run_async(
                max_generations=BUDGET,
                fitness_threshold=1e9,
                on_champion=kill_once,
            )
            disturbed_best = disturbed_runtime.best_genome()

        return {
            "baseline_best": baseline.best_fitness,
            "baseline_per_clan": baseline.per_clan_generations,
            "baseline_wall_s": baseline.wall_time_s,
            "disturbed_best": disturbed.best_fitness,
            "disturbed_per_clan": disturbed.per_clan_generations,
            "disturbed_wall_s": disturbed.wall_time_s,
            "victim": killed[0] if killed else None,
            "deaths": disturbed.churn.deaths,
            "respawns": disturbed.churn.respawns,
            "clans_lost": disturbed.churn.clans_lost,
            "lost_generations": disturbed.churn.lost_generations,
            "recovery_s": disturbed.churn.mean_recovery_latency_s(),
            "best_gap": abs(
                disturbed.best_fitness - baseline.best_fitness
            ),
            "champion_gap": abs(
                disturbed_best.fitness - baseline_best.fitness
            ),
            "baseline_churned": bool(baseline.churn),
        }

    result = run_once(benchmark, build)
    report_sink(
        "bench_fault_tolerance",
        format_table(
            ["run", "best fitness", "per-clan generations", "note"],
            [
                [
                    "undisturbed",
                    f"{result['baseline_best']:.2f}",
                    str(result["baseline_per_clan"]),
                    f"{result['baseline_wall_s']:.2f}s wall",
                ],
                [
                    "SIGKILL clan mid-run",
                    f"{result['disturbed_best']:.2f}",
                    str(result["disturbed_per_clan"]),
                    f"killed clan {result['victim']}; "
                    f"{result['deaths']} death, "
                    f"{result['respawns']} respawn, "
                    f"{result['lost_generations']} generation(s) "
                    f"replayed, recovery "
                    f"{result['recovery_s'] * 1e3:.0f}ms",
                ],
            ],
            title=(
                f"[FT] {N_CLANS}-clan fleet on {ENV}, budget {BUDGET} "
                "generations/clan, one worker SIGKILLed mid-run"
            ),
        ),
    )
    json_sink("bench_fault_tolerance", result)

    # CI gates
    assert result["victim"] is not None, "kill hook never fired"
    assert not result["baseline_churned"]
    # churn reports exactly one death and one respawn, no abandonment
    assert result["deaths"] == 1
    assert result["respawns"] == 1
    assert result["clans_lost"] == 0
    # the disturbed run completes its entire budget on every clan
    assert result["disturbed_per_clan"] == [BUDGET] * N_CLANS
    assert result["baseline_per_clan"] == [BUDGET] * N_CLANS
    # recovery is replay-exact: zero best-fitness gap, not just "bounded"
    assert result["best_gap"] <= 1e-9
    assert result["champion_gap"] <= 1e-9
    # detection + respawn + restore stays sub-second on this workload
    assert result["recovery_s"] < 2.0
