"""Fleet serving scaling: 1 -> 4 gateway replicas (extension).

PR 4's micro-batched gateway is capped by one event loop and one GIL;
the :class:`~repro.serve.fleet.ServingFleet` shards traffic across
replica *processes* behind a seeded balancer. This benchmark drives the
identical seeded Poisson load (same arrival times, same observations)
against a 1-replica and a 4-replica fleet, with a champion hot-swap
between two load phases, and gates three claims:

* **scaling** — >= 2.5x fleet qps at 4 replicas (asserted only on hosts
  with >= 4 cores; a 1-core container cannot physically scale, but the
  correctness audits below still run there);
* **parity** — every response's action equals what a fresh scalar
  interpreter of the champion version it was *attributed to* (via
  ``ChampionRegistry.record_for``) produces for that observation;
* **monotone deployment** — zero stale-version serves: phase A is
  answered entirely by v1, phase B entirely by v2, and no replica's
  served-version trace ever regresses.

Results go to ``reports/bench_serving_scaling.txt`` and (for the CI
artifact) ``reports/bench_serving_scaling.json``.
"""

from __future__ import annotations

import asyncio
import os
import random

from repro.neat.config import NEATConfig
from repro.serve import ChampionRegistry, LoadGenerator, ServingFleet
from repro.utils.fmt import format_seconds, format_table

from benchmarks.conftest import run_once
from tests.conftest import make_evolved_genome

#: requests per load phase (two phases: before and after the hot-swap)
N_REQUESTS = 1200
#: offered Poisson rate — far above single-replica capacity, so the
#: measured qps is service-rate-bound, not arrival-rate-bound
RATE_HZ = 50_000.0
#: observation dimensionality of the CartPole workload
OBS_DIM = 4
#: mutation budget: a big champion makes replica compute dominate the
#: parent's pipe/balancing overhead (same reasoning as
#: bench_serving_latency's growth-boosted champion). Kept at a size
#: where batched-vs-scalar float accumulation order cannot flip a
#: near-tied argmax — the parity gate is *exact* by design
MUTATIONS = 400
#: replica batching knobs (static here; autotuning is benchmarked via
#: its unit tests — a moving knob would confound the scaling number).
#: A latency-oriented batch cap keeps per-request replica compute well
#: above the parent's per-request dispatch cost — the regime where
#: adding replicas buys throughput (a huge batch cap amortises the
#: replica's work so far down that the shared dispatch path becomes
#: the ceiling instead)
MAX_BATCH = 8
MAX_WAIT_S = 0.001
#: effectively-unbounded queues: shedding would hide the capacity gap
MAX_PENDING = 1 << 16
#: fleet sizes under test
FLEETS = (1, 4)
#: acceptance floor for 4-replica scaling (see module docstring)
MIN_SPEEDUP = 2.5
#: the scaling gate needs real parallelism to be physically possible
GATE_ACTIVE = (os.cpu_count() or 1) >= 4


def _champion_config() -> NEATConfig:
    return NEATConfig.for_env(
        "CartPole-v0",
        node_add_prob=0.4,
        conn_add_prob=0.55,
        node_delete_prob=0.0,
        conn_delete_prob=0.0,
    )


def _observations(seed: int) -> list[list[float]]:
    rng = random.Random(seed)
    return [
        [rng.uniform(-1.0, 1.0) for _ in range(OBS_DIM)]
        for _ in range(N_REQUESTS)
    ]


def _replay_sampler(observations):
    """A LoadGenerator sampler that replays a fixed observation list —
    both fleet sizes must see byte-identical load."""
    iterator = iter(observations)
    return lambda rng: next(iterator)


def _drive_fleet(config, champions, phases, replicas):
    """Two Poisson phases against one fleet, hot-swapping in between.

    Returns ``(phase_reports, version_traces, fleet_stats,
    per_replica_stats)``.
    """

    async def run():
        registry = ChampionRegistry(config)
        fleet = ServingFleet(
            registry,
            replicas=replicas,
            max_batch=MAX_BATCH,
            max_wait_s=MAX_WAIT_S,
            max_pending=MAX_PENDING,
            seed=7,
            max_inflight=MAX_PENDING,
        )
        await fleet.start()
        reports = []
        for champion, (observations, arrival_seed) in zip(
            champions, phases
        ):
            registry.publish(champion, source="bench")
            await fleet.wait_deployed()
            generator = LoadGenerator(
                fleet.submit,
                _replay_sampler(observations),
                rate_hz=RATE_HZ,
                n_requests=len(observations),
                seed=arrival_seed,
            )
            reports.append(await generator.run())
        stats = await fleet.scrape()
        per_replica = fleet.replica_stats()
        traces = fleet.version_traces()
        await fleet.close()
        registry_records = {
            version: registry.record_for(version)
            for version in (1, 2)
        }
        registry.close()
        return reports, traces, stats, per_replica, registry_records

    return asyncio.run(run())


def test_fleet_scaling(benchmark, report_sink, json_sink):
    config = _champion_config()
    champions = [
        make_evolved_genome(config, seed=5, mutations=MUTATIONS, key=1),
        make_evolved_genome(config, seed=9, mutations=MUTATIONS, key=2),
    ]
    phases = [
        (_observations(11), 101),
        (_observations(23), 202),
    ]

    results = {}
    for index, replicas in enumerate(FLEETS):
        drive = lambda r=replicas: _drive_fleet(
            config, champions, phases, r
        )
        if index == 0:
            results[replicas] = run_once(benchmark, drive)
        else:
            results[replicas] = drive()

    qps = {}
    for replicas in FLEETS:
        reports, traces, stats, per_replica, records = results[replicas]

        # -- monotone deployment: phase N served entirely by version N,
        #    and no replica's served-version trace ever regresses
        for phase_number, report in enumerate(reports, start=1):
            assert report.served == report.offered == N_REQUESTS, (
                f"{replicas}r phase {phase_number}: shed/failed load "
                "voids the comparison"
            )
            versions = {r.champion_version for r in report.responses}
            assert versions == {phase_number}, (
                f"{replicas}r phase {phase_number}: stale-version "
                f"serves (saw versions {sorted(versions)})"
            )
        for replica_id, trace in traces.items():
            assert trace == sorted(trace), (
                f"{replicas}r replica {replica_id}: served versions "
                f"regressed: {trace}"
            )

        # -- parity: every action equals a fresh scalar interpreter of
        #    the record the response was attributed to (record_for)
        scalars = {
            version: record.scalar_network()
            for version, record in records.items()
        }
        for report in reports:
            for observation, response in zip(
                report.observations, report.responses
            ):
                expected = scalars[response.champion_version].policy(
                    observation
                )
                assert response.action == expected, (
                    f"{replicas}r: action diverged from the scalar "
                    f"reference of v{response.champion_version}"
                )

        elapsed = sum(report.duration_s for report in reports)
        qps[replicas] = 2 * N_REQUESTS / elapsed

    speedup = qps[FLEETS[-1]] / qps[FLEETS[0]]

    rows = []
    for replicas in FLEETS:
        _, _, stats, per_replica, _ = results[replicas]
        shares = " ".join(
            f"r{rid}:{rstats.served}"
            for rid, rstats in sorted(per_replica.items())
            if rstats is not None
        )
        rows.append(
            [
                str(replicas),
                f"{qps[replicas]:,.0f}",
                format_seconds(stats.p50_latency_s),
                format_seconds(stats.p95_latency_s),
                str(stats.shed),
                shares,
                f"{qps[replicas] / qps[FLEETS[0]]:.2f}x",
            ]
        )
    gate_note = (
        f"gate: >= {MIN_SPEEDUP}x at {FLEETS[-1]} replicas (active)"
        if GATE_ACTIVE
        else f"gate: skipped — host has {os.cpu_count()} core(s), "
        "scaling is not physically possible"
    )
    report_sink(
        "bench_serving_scaling",
        f"Fleet scaling — 2x{N_REQUESTS} Poisson requests "
        f"({RATE_HZ:,.0f} Hz offered), hot-swap between phases, "
        f"{champions[0].gene_count()}-gene champion, CartPole-v0\n"
        + format_table(
            ["replicas", "qps", "p50", "p95", "shed", "per-replica",
             "scaling"],
            rows,
        )
        + f"\nparity: exact for all {2 * N_REQUESTS} requests per "
        f"fleet; stale-version serves: 0\n{gate_note}",
    )
    json_sink(
        "bench_serving_scaling",
        {
            "n_requests_per_phase": N_REQUESTS,
            "rate_hz": RATE_HZ,
            "champion_genes": champions[0].gene_count(),
            "max_batch": MAX_BATCH,
            "max_wait_s": MAX_WAIT_S,
            "cores": os.cpu_count(),
            "gate_active": GATE_ACTIVE,
            "min_speedup": MIN_SPEEDUP,
            "speedup": speedup,
            "fleets": {
                str(replicas): {
                    "qps": qps[replicas],
                    "p50_latency_s": results[replicas][2].p50_latency_s,
                    "p95_latency_s": results[replicas][2].p95_latency_s,
                    "served": results[replicas][2].served,
                    "shed": results[replicas][2].shed,
                    "per_replica_served": {
                        str(rid): rstats.served
                        for rid, rstats in sorted(
                            results[replicas][3].items()
                        )
                        if rstats is not None
                    },
                }
                for replicas in FLEETS
            },
            "action_parity": True,
            "stale_version_serves": 0,
        },
    )

    if GATE_ACTIVE:
        assert speedup >= MIN_SPEEDUP, (
            f"{FLEETS[-1]}-replica fleet only {speedup:.2f}x the "
            f"single-replica qps; need >= {MIN_SPEEDUP}x"
        )
