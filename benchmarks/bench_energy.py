"""Extension: energy per generation across platforms.

The paper claims the Pi swarm matches bigger platforms "at much lower
energy and dollar cost" without quantifying the energy side; this bench
does, using public sustained power ratings (Pi 4 W, Jetson 7.5/15 W,
HPC 90/250 W).
"""

from repro.analysis.energy import energy_ratio, energy_study
from repro.utils.fmt import format_seconds, format_table

from benchmarks.conftest import run_once

ENV = "Airraid-ram-v0"


def test_energy_per_generation(benchmark, scale, report_sink):
    points = run_once(
        benchmark,
        lambda: energy_study(
            ENV, scale.fig11_pi_counts, scale.pop_size, scale.generations,
            seed=0,
        ),
    )
    rows = [
        [
            p.label,
            f"{p.fleet_power_w:.1f}W",
            format_seconds(p.time_per_generation_s),
            f"{p.energy_per_generation_j / 1000:.2f} kJ",
        ]
        for p in points
    ]
    pi_points = [p for p in points if p.label.endswith("pi")]
    sweet_spot = min(pi_points, key=lambda p: p.energy_per_generation_j)
    max_pis = f"{max(scale.fig11_pi_counts)} pi"
    report_sink(
        "energy_study",
        format_table(
            ["platform", "fleet power", "time/gen", "energy/gen"],
            rows,
            title=f"[Extension] energy per generation, {ENV} "
            f"(preset={scale.name})",
        )
        + f"\nmost energy-efficient fleet: {sweet_spot.label} "
        f"({sweet_spot.energy_per_generation_j / 1000:.2f} kJ/gen)"
        + f"\nenergy advantage {sweet_spot.label} vs HPC CPU: "
        f"{energy_ratio(points, sweet_spot.label, 'HPC CPU'):.2f}x"
        + f"\nenergy advantage {max_pis} vs HPC GPU: "
        f"{energy_ratio(points, max_pis, 'HPC GPU'):.2f}x",
    )

    # the claim: matching performance at much lower energy. Fleet energy is
    # roughly flat in size (n nodes for ~1/n the time), so the best fleet
    # beats the HPC CPU; at the largest sizes synchronisation overhead can
    # erode the margin — the report records where the sweet spot sits.
    assert energy_ratio(points, sweet_spot.label, "HPC CPU") > 1.0
    assert energy_ratio(points, max_pis, "HPC GPU") > 1.0
