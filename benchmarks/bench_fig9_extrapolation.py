"""Fig 9: extrapolated scaling to 100 units (AirRaid).

Paper claims: (a) single-step — CLAN_DCS becomes worse than serial at
~40 units while CLAN_DDA pushes the limit to ~65 units, performing ~2x
better on average; (b) multi-step — both configurations stagnate around
~50 units with CLAN_DDA ahead by ~1.1x throughout.
"""

from repro.analysis.figures import fig9_extrapolation
from repro.analysis.report import render_extrapolation

from benchmarks.conftest import run_once

ENV = "Airraid-ram-v0"


def test_fig9a_single_step(benchmark, scale, report_sink):
    study = run_once(
        benchmark,
        lambda: fig9_extrapolation(
            ENV,
            scale.fig9_measure_grid,
            scale.pop_size,
            scale.generations,
            single_step=True,
            seed=0,
            plot_grid=scale.fig9_plot_grid_single,
        ),
    )
    crossovers = study.crossovers()
    advantage = study.mean_advantage(
        "CLAN_DDA", "CLAN_DCS", up_to=crossovers["CLAN_DDA"] or 100
    )
    report_sink(
        "fig9a_single_step",
        render_extrapolation("Fig 9a single-step", study)
        + f"\nmean DDA advantage over DCS: {advantage:.2f}x"
        + "\npaper: DCS crosses serial at ~40, DDA at ~65, DDA ~2x better",
    )
    assert crossovers["CLAN_DCS"] is not None
    assert crossovers["CLAN_DDA"] is not None
    assert crossovers["CLAN_DDA"] > crossovers["CLAN_DCS"]
    assert advantage > 1.2


def test_fig9b_multi_step(benchmark, scale, report_sink):
    study = run_once(
        benchmark,
        lambda: fig9_extrapolation(
            ENV,
            scale.fig9_measure_grid,
            scale.pop_size,
            scale.generations,
            single_step=False,
            seed=0,
            plot_grid=scale.fig9_plot_grid_multi,
        ),
    )
    stagnation = study.stagnation_points()
    advantage = study.mean_advantage("CLAN_DDA", "CLAN_DCS", up_to=80)
    report_sink(
        "fig9b_multi_step",
        render_extrapolation("Fig 9b multi-step", study)
        + f"\nmean DDA advantage over DCS: {advantage:.2f}x"
        + "\npaper: both stagnate ~50 units, DDA ~1.1x better throughout",
    )
    # multi-step: huge inference keeps both scaling far beyond the testbed
    assert stagnation["CLAN_DCS"] > 15
    assert stagnation["CLAN_DDA"] >= stagnation["CLAN_DCS"]
    assert advantage > 1.0
