"""Ablation: periodic global speciation for CLAN_DDA.

The paper flags "allowing periodic global speciation" as the natural
mitigation for the convergence cost of asynchronous speciation (section
IV-C, "an idea ripe for future work"). This ablation implements it
(``resync_period`` on CLAN_DDA) and quantifies both sides of the trade:
the extra genome traffic per resync and the convergence benefit.
"""

from repro.core.protocols import CLAN_DDA
from repro.neat.config import NEATConfig
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once

ENV = "CartPole-v0"
N_CLANS = 8
RUNS = 3
MAX_GENERATIONS = 25


def converge_stats(resync_period, pop_size, seed_base=11):
    config = NEATConfig.for_env(ENV, pop_size=pop_size)
    generations = []
    for run in range(RUNS):
        engine = CLAN_DDA(
            ENV,
            n_agents=N_CLANS,
            config=config,
            seed=seed_base + 101 * run,
            resync_period=resync_period,
        )
        result = engine.run(max_generations=MAX_GENERATIONS)
        generations.append(
            result.generations_to_converge
            if result.converged
            else MAX_GENERATIONS
        )
    # communication is measured over a fixed-length run so early
    # convergence cannot hide the resync traffic
    engine = CLAN_DDA(
        ENV,
        n_agents=N_CLANS,
        config=config,
        seed=seed_base,
        resync_period=resync_period,
    )
    fixed = engine.run(max_generations=8, fitness_threshold=float("inf"))
    comm = fixed.total_comm_floats() / fixed.generations
    return (sum(generations) / len(generations), comm)


def test_ablation_periodic_resync(benchmark, scale, report_sink):
    def build():
        return {
            period: converge_stats(period, scale.fig7b_pop)
            for period in (None, 10, 5, 2)
        }

    results = run_once(benchmark, build)
    rows = []
    for period, (gens, comm) in results.items():
        label = "never (pure DDA)" if period is None else f"every {period}"
        rows.append([label, f"{gens:.1f}", f"{comm:,.0f}"])
    report_sink(
        "ablation_resync",
        format_table(
            ["global resync", "mean generations to converge",
             "floats/generation"],
            rows,
            title=(
                "[Ablation] periodic global speciation, "
                f"{N_CLANS} clans on {ENV} (preset={scale.name})"
            ),
        ),
    )

    # resync must cost communication (genomes travel again)
    assert results[2][1] > results[None][1]
