"""Fig 10: impact of technology and hardware on scalability (AirRaid).

Paper claims: (a) halving the communication cost moves the single-step
scalability limit from ~10 to ~12 nodes; (b) in multi-step mode scaling
continues through the scale without stagnation; (c) with a 32x32
systolic-array inference accelerator, compute shrinks so much that
CLAN_DCS cannot scale while CLAN_DDA still scales to ~7 nodes.
"""

from repro.analysis.figures import fig9_extrapolation
from repro.analysis.report import render_extrapolation
from repro.cluster.netmodel import WiFiModel

from benchmarks.conftest import run_once

ENV = "Airraid-ram-v0"
GRID = (1, 8, 18, 40, 70)


def test_fig10a_better_comm_single_step(benchmark, scale, report_sink):
    def build():
        base = fig9_extrapolation(
            ENV, scale.fig9_measure_grid, scale.pop_size, scale.generations,
            single_step=True, seed=0, plot_grid=GRID,
        )
        halved = fig9_extrapolation(
            ENV, scale.fig9_measure_grid, scale.pop_size, scale.generations,
            single_step=True, seed=0, link=WiFiModel().scaled(0.5),
            plot_grid=GRID,
        )
        return base, halved

    base, halved = run_once(benchmark, build)
    report_sink(
        "fig10a_better_comm_single_step",
        render_extrapolation("Fig 10a baseline link", base)
        + "\n\n"
        + render_extrapolation("Fig 10a halved-cost link", halved)
        + "\npaper: scalability improves from ~10 to ~12 nodes",
    )
    for protocol in ("CLAN_DCS", "CLAN_DDA"):
        assert (
            halved.stagnation_points()[protocol]
            >= base.stagnation_points()[protocol]
        )


def test_fig10b_better_comm_multi_step(benchmark, scale, report_sink):
    def build():
        base = fig9_extrapolation(
            ENV, scale.fig9_measure_grid, scale.pop_size, scale.generations,
            single_step=False, seed=0, plot_grid=GRID,
        )
        halved = fig9_extrapolation(
            ENV, scale.fig9_measure_grid, scale.pop_size, scale.generations,
            single_step=False, seed=0, link=WiFiModel().scaled(0.5),
            plot_grid=GRID,
        )
        return base, halved

    base, halved = run_once(benchmark, build)
    report_sink(
        "fig10b_better_comm_multi_step",
        render_extrapolation("Fig 10b baseline link", base)
        + "\n\n"
        + render_extrapolation("Fig 10b halved-cost link", halved)
        + "\npaper: reduction allows scaling to continue without stagnation",
    )
    # a cheaper link can only help at scale
    n = GRID[-1]
    for protocol in ("CLAN_DCS", "CLAN_DDA"):
        assert (
            halved.fits[protocol].predict(n)
            <= base.fits[protocol].predict(n) + 1e-9
        )


def test_fig10c_custom_hw_multi_step(benchmark, scale, report_sink):
    def build():
        pi = fig9_extrapolation(
            ENV, scale.fig9_measure_grid, scale.pop_size, scale.generations,
            single_step=False, seed=0, plot_grid=GRID,
        )
        systolic = fig9_extrapolation(
            ENV, scale.fig9_measure_grid, scale.pop_size, scale.generations,
            single_step=False, seed=0, device_name="systolic_32x32",
            plot_grid=GRID,
        )
        return pi, systolic

    pi, systolic = run_once(benchmark, build)
    report_sink(
        "fig10c_custom_hw_multi_step",
        render_extrapolation("Fig 10c Raspberry Pi nodes", pi)
        + "\n\n"
        + render_extrapolation("Fig 10c systolic-array nodes", systolic)
        + "\npaper: faster compute makes communication the serious issue; "
        "CLAN_DCS cannot scale, CLAN_DDA scales to ~7 nodes",
    )
    # accelerated inference pulls the useful-scaling region down hard
    assert (
        systolic.stagnation_points()["CLAN_DCS"]
        < pi.stagnation_points()["CLAN_DCS"]
    )
    assert (
        systolic.stagnation_points()["CLAN_DDA"]
        < pi.stagnation_points()["CLAN_DDA"]
    )
    # DDA still scales further than DCS on custom hardware
    assert (
        systolic.stagnation_points()["CLAN_DDA"]
        >= systolic.stagnation_points()["CLAN_DCS"]
    )
