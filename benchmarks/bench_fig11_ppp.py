"""Fig 11: performance per dollar across platforms.

Paper claims: for larger workloads a handful of $40 Pis rivals much more
expensive platforms — ~6 Pis match the Jetson TX2 CPU (Price-Performance-
Product advantage ~2.5x) and 15 Pis land near the HPC CPU (PPP ~1.2x);
the GPUs of both platforms remain out of reach.
"""

from repro.analysis.figures import fig11_ppp, ppp_ratio
from repro.analysis.report import render_platforms

from benchmarks.conftest import run_once

WORKLOADS = (
    "CartPole-v0",
    "MountainCar-v0",
    "LunarLander-v2",
    "Airraid-ram-v0",
)


def test_fig11_ppp(benchmark, scale, report_sink):
    points = run_once(
        benchmark,
        lambda: fig11_ppp(
            WORKLOADS,
            scale.fig11_pi_counts,
            scale.pop_size,
            scale.generations,
            seed=0,
        ),
    )
    sections = []
    for env_id, platform_points in points.items():
        section = render_platforms(env_id, platform_points)
        if env_id == "Airraid-ram-v0":
            by_label = {p.label: p for p in platform_points}
            if "6 pi" in by_label:
                section += (
                    f"\nPPP 6 Pis vs Jetson CPU: "
                    f"{ppp_ratio(platform_points, '6 pi', 'Jetson CPU'):.2f}x"
                )
            section += (
                f"\nPPP 15 Pis vs HPC CPU: "
                "{:.2f}x".format(
                    ppp_ratio(
                        platform_points,
                        f"{max(scale.fig11_pi_counts)} pi",
                        "HPC CPU",
                    )
                )
            )
        sections.append(section)
    report_sink("fig11_ppp", "\n\n".join(sections))

    airraid = {p.label: p for p in points["Airraid-ram-v0"]}
    max_pis = f"{max(scale.fig11_pi_counts)} pi"

    # Pi clusters get faster with size for the large workload
    assert (
        airraid[max_pis].time_per_generation_s
        < airraid["1 pi"].time_per_generation_s
    )
    # PPP of the Pi cluster beats the HPC CPU (the paper's punchline)
    assert ppp_ratio(points["Airraid-ram-v0"], max_pis, "HPC CPU") > 1.0
    # the GPUs could not be rivalled in absolute time
    assert (
        airraid["HPC GPU"].time_per_generation_s
        < airraid[max_pis].time_per_generation_s
    )
    # tiny workloads don't amortise communication (paper: "performance is
    # not comparable for extremely small workloads")
    cartpole = {p.label: p for p in points["CartPole-v0"]}
    assert (
        cartpole[max_pis].time_per_generation_s
        > cartpole["HPC CPU"].time_per_generation_s
    )
