"""Population-mode vs per-genome batched evaluation (extension).

PR 1 vectorized inference *within* one genome; this benchmark measures
what the PR 2 evaluation stack adds on top: ``eval_mode="population"``
stacks every genome's compiled plan into one ragged super-batch
(:class:`~repro.neat.network.StackedPopulationNetwork`) and rolls all
genomes x episodes forward together against the array-native
:class:`~repro.envs.vector.CartPoleVectorEnv`, retiring lanes and
compacting the batch as episodes finish.

Both paths pay their full cost (compile + rollout), evaluate the same
128-genome CartPole generation under identical seeds, and must return
*identical* ``FitnessResult``s — the speedup is a pure execution change.
Results go to ``reports/bench_population_eval.txt`` and, machine-readably,
``reports/bench_population_eval.json`` for the CI trend gate.
"""

from __future__ import annotations

import time

from repro.neat.config import NEATConfig
from repro.neat.evaluation import GenomeEvaluator
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once
from tests.conftest import make_evolved_genome

#: evolved genomes in the benchmark generation (the issue's target size)
POPULATION = 128
#: episodes per genome, lockstep in both modes
EPISODES = 3
#: structural mutation bursts growing each genome's hidden topology
MUTATIONS = 60
#: timing repetitions; the minimum is reported
REPEATS = 3
#: acceptance floor: population mode must be at least this much faster
#: than the PR 1 per-genome batched path
MIN_SPEEDUP = 3.0


def _population(config: NEATConfig) -> list:
    return [
        make_evolved_genome(config, seed=seed, mutations=MUTATIONS,
                            key=seed)
        for seed in range(POPULATION)
    ]


def _time(evaluate) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        evaluate()
        best = min(best, time.perf_counter() - start)
    return best


def test_population_eval_speedup(benchmark, report_sink, json_sink):
    config = NEATConfig.for_env("CartPole-v0", pop_size=POPULATION)
    genomes = _population(config)
    per_genome = GenomeEvaluator(
        "CartPole-v0", episodes=EPISODES, seed=11, backend="batched"
    )
    population = GenomeEvaluator(
        "CartPole-v0", episodes=EPISODES, seed=11, backend="batched",
        eval_mode="population",
    )

    # the two modes must agree exactly before their timings mean
    # anything (tier-1's test_population_eval.py owns this invariant and
    # runs first in CI; repeating it here keeps the report honest)
    expected = per_genome.evaluate_many(genomes, config, generation=0)
    got = population.evaluate_many(genomes, config, generation=0)
    assert got == expected, "population mode diverged from per-genome"

    per_genome_s = run_once(
        benchmark,
        lambda: _time(
            lambda: per_genome.evaluate_many(genomes, config, 0)
        ),
    )
    population_s = _time(
        lambda: population.evaluate_many(genomes, config, 0)
    )
    speedup = per_genome_s / population_s
    total_steps = sum(r.steps for r in expected.values())
    genes = sum(g.gene_count() for g in genomes)

    rows = [
        ["per_genome (batched)", f"{per_genome_s * 1e3:.1f}",
         f"{total_steps / per_genome_s:,.0f}", "1.0x"],
        ["population", f"{population_s * 1e3:.1f}",
         f"{total_steps / population_s:,.0f}", f"{speedup:.1f}x"],
    ]
    report_sink(
        "bench_population_eval",
        f"Population-scale evaluation — {POPULATION} evolved genomes "
        f"({genes} genes) x {EPISODES} episodes, CartPole-v0\n"
        + format_table(
            ["eval mode", "time (ms)", "env steps/s", "speedup"], rows
        )
        + "\nfitness parity: exact for all "
        f"{POPULATION} genomes",
    )
    json_sink(
        "bench_population_eval",
        {
            "population": POPULATION,
            "episodes": EPISODES,
            "total_genes": genes,
            "total_env_steps": total_steps,
            "per_genome_s": per_genome_s,
            "population_s": population_s,
            "speedup": speedup,
            "env_steps_per_s_per_genome": total_steps / per_genome_s,
            "env_steps_per_s_population": total_steps / population_s,
            "fitness_parity": True,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"population mode only {speedup:.1f}x faster; need "
        f">= {MIN_SPEEDUP}x"
    )
