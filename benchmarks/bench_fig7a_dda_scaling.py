"""Fig 7(a): CLAN_DDA evolution + communication runtime at scale.

Paper claim: with asynchronous speciation "the communication cost is not
prohibitive, thus allowing evolution to scale alongside inference".
"""

from repro.analysis.figures import fig6_dds_scaling, fig7a_dda_scaling
from repro.analysis.report import render_scaling_series

from benchmarks.conftest import run_once


def test_fig7a_dda_scaling(benchmark, scale, report_sink):
    series = run_once(
        benchmark,
        lambda: fig7a_dda_scaling(
            scale.workloads,
            scale.fig7a_grid,
            scale.pop_size,
            scale.generations,
            seed=0,
        ),
    )
    sections = [
        render_scaling_series(
            "Fig 7a",
            env_id,
            per_n,
            components=("evolution", "communication"),
        )
        for env_id, per_n in series.items()
    ]
    report_sink("fig7a_dda_scaling", "\n\n".join(sections))

    # evolution scales: the distributed share shrinks with agents
    for env_id, per_n in series.items():
        grid = sorted(per_n)
        assert (
            per_n[grid[-1]].evolution_s < per_n[grid[0]].evolution_s
        ), env_id

    # and DDA's evolution+comm beats DDS's at matched sizes (large workload)
    dds = fig6_dds_scaling(
        ("Airraid-ram-v0",),
        tuple(n for n in scale.fig6_grid if n > 1),
        scale.pop_size,
        scale.generations,
        seed=0,
    )["Airraid-ram-v0"]
    dda = series["Airraid-ram-v0"]
    for n in set(dds) & set(dda):
        assert (
            dda[n].evolution_s + dda[n].communication_s
            < dds[n].evolution_s + dds[n].communication_s
        )
