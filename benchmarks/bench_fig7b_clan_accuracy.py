"""Fig 7(b): convergence cost of asynchronous speciation.

Paper claim: "the number of generations needed to converge gradually
increases" with the number of clans — the accuracy/performance trade-off
of CLAN_DDA. The paper averages 10 LunarLander runs at population 150; the
quick preset uses CartPole with 3 seeds (set REPRO_SCALE=paper for the
faithful configuration).
"""

import numpy as np

from repro.analysis.figures import fig7b_clan_accuracy
from repro.analysis.report import render_clan_accuracy

from benchmarks.conftest import run_once


def test_fig7b_clan_accuracy(benchmark, scale, report_sink):
    points = run_once(
        benchmark,
        lambda: fig7b_clan_accuracy(
            scale.fig7b_env,
            scale.fig7b_clans,
            scale.fig7b_pop,
            scale.fig7b_runs,
            scale.fig7b_max_generations,
            seed=1,
        ),
    )
    report_sink(
        "fig7b_clan_accuracy",
        render_clan_accuracy(points, scale.fig7b_env)
        + f"\n(preset={scale.name}: {scale.fig7b_runs} runs, population "
        f"{scale.fig7b_pop}, cap {scale.fig7b_max_generations} generations)",
    )

    # the trend: more clans -> more generations (tested as a positive
    # slope of the least-squares line, robust to per-point noise)
    xs = np.array([p.n_clans for p in points], dtype=float)
    ys = np.array([p.mean_generations for p in points], dtype=float)
    slope = np.polyfit(xs, ys, 1)[0]
    assert slope >= 0.0, f"convergence cost should grow with clans: {ys}"
    # synchronous speciation (1 clan) is never the worst configuration
    assert points[0].mean_generations <= max(
        p.mean_generations for p in points
    )
