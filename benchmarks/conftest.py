"""Benchmark harness plumbing.

Every benchmark regenerates one table or figure of the paper and renders
the rows/series the paper reports. Rendered reports go to
``benchmarks/reports/*.txt`` (and to stdout — run with ``-s`` to see them
inline). ``REPRO_SCALE=paper`` switches from the quick preset to the
paper's full parameter grids.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

from repro.analysis.scale import bench_scale

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def report_sink():
    """Write a rendered figure report to disk and echo it to stdout."""
    REPORT_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        path = REPORT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return sink


@pytest.fixture(scope="session")
def json_sink():
    """Write a machine-readable result payload to disk.

    Counterpart of ``report_sink`` for automation: each benchmark can dump
    its headline numbers as ``benchmarks/reports/<name>.json`` so future PRs
    (and CI trend jobs) can diff the perf trajectory without parsing the
    rendered text tables. The payload is wrapped with enough provenance
    (python/platform) to compare runs across machines.
    """
    REPORT_DIR.mkdir(exist_ok=True)

    def sink(name: str, payload: dict) -> pathlib.Path:
        document = {
            "benchmark": name,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "results": payload,
        }
        path = REPORT_DIR / f"{name}.json"
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"[json saved to {path}]")
        return path

    return sink


def run_once(benchmark, fn):
    """Run a heavy figure builder exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
