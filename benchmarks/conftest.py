"""Benchmark harness plumbing.

Every benchmark regenerates one table or figure of the paper and renders
the rows/series the paper reports. Rendered reports go to
``benchmarks/reports/*.txt`` (and to stdout — run with ``-s`` to see them
inline). ``REPRO_SCALE=paper`` switches from the quick preset to the
paper's full parameter grids.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.scale import bench_scale

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def report_sink():
    """Write a rendered figure report to disk and echo it to stdout."""
    REPORT_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        path = REPORT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return sink


def run_once(benchmark, fn):
    """Run a heavy figure builder exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
