"""Ablation: pipelining genome distribution with inference (CLAN_DCS).

The paper's Fig 2 time-lines serialise communication and compute phases; a
co-designed runtime could start each agent's inference as soon as *its*
genome shard lands. The discrete-event simulator's ``pipelined`` mode
quantifies the head-room of that overlap — the "algorithm-hardware
co-design" direction the conclusion calls for.
"""

from repro.analysis.cache import shared_cache
from repro.cluster.analytic import ClusterSpec
from repro.cluster.profiles import pi_env_step_seconds
from repro.cluster.simulator import GenerationSimulator
from repro.utils.fmt import format_table

from benchmarks.conftest import run_once

ENV = "CartPole-v0"
GRID = (2, 4, 8, 15)


def test_ablation_phase_overlap(benchmark, scale, report_sink):
    def build():
        cache = shared_cache(ENV, scale.pop_size, seed=0)
        step_s = pi_env_step_seconds(ENV)
        rows = {}
        for n in GRID:
            records = cache.records("CLAN_DCS", n, scale.generations)
            spec = ClusterSpec.of_pis(n)
            barrier = GenerationSimulator(spec, step_s, mode="barrier")
            pipelined = GenerationSimulator(spec, step_s, mode="pipelined")
            rows[n] = (
                barrier.total_time(records) / len(records),
                pipelined.total_time(records) / len(records),
            )
        return rows

    rows = run_once(benchmark, build)
    table = []
    for n, (barrier_s, pipelined_s) in rows.items():
        saving = (1 - pipelined_s / barrier_s) * 100
        table.append(
            [n, f"{barrier_s:.2f}s", f"{pipelined_s:.2f}s", f"{saving:.1f}%"]
        )
    report_sink(
        "ablation_overlap",
        format_table(
            ["nodes", "barrier", "pipelined", "saving"],
            table,
            title=(
                "[Ablation] overlap of genome distribution with inference, "
                f"CLAN_DCS on {ENV} (preset={scale.name})"
            ),
        ),
    )
    for barrier_s, pipelined_s in rows.values():
        assert pipelined_s <= barrier_s + 1e-9
    # overlap must buy something at some size
    assert any(p < b * 0.999 for b, p in rows.values())
