"""Vectorized genetics engine vs scalar, + compiled-plan cache (extension).

PRs 1–2 vectorized inference and environments; this benchmark measures
the evolution phase those left behind — the paper's Speciation block
(the one CLAN "cannot use PLP" on) and Reproduction (which GeneSys
showed dominates once inference is fast):

* **speciation + reproduction** — a 256-genome evolved population is
  speciated and a full brood formed under ``genetics="scalar"`` and
  ``genetics="vectorized"``. The partitions must be *identical* (same
  species ids, same membership) before the timings mean anything; the
  vectorized engine must clear ``MIN_SPEEDUP``.
* **plan cache** — a weight-mutation-dominated seeded run (structural
  rates zeroed, NEAT's common regime between topology innovations) is
  evaluated with the batched backend; the topology-keyed
  :class:`~repro.neat.network.PlanCache` must serve at least
  ``MIN_HIT_RATE`` of compiles and return plans whose evaluation
  results are *bitwise identical* to cache-less compilation.

Results go to ``reports/bench_genetics.txt`` and, machine-readably,
``reports/bench_genetics.json`` for the CI trend gate.
"""

from __future__ import annotations

import random
import time

from repro.neat.config import NEATConfig
from repro.neat.evaluation import GenomeEvaluator
from repro.neat.innovation import InnovationTracker
from repro.neat.population import Population
from repro.neat.reproduction import execute_plan, plan_generation
from repro.neat.species import SpeciesSet
from repro.utils.fmt import format_table
from repro.utils.rng import RngFactory

from benchmarks.conftest import run_once
from tests.conftest import make_evolved_genome

#: evolved genomes in the benchmark population (issue floor: >= 256)
POPULATION = 512
#: structural mutation bursts diversifying each genome's topology — with
#: the growth-biased rates below this reaches ~50 genes per genome, the
#: paper's long-run regime where speciation cost dominates (Fig 3c)
MUTATIONS = 80
#: timing repetitions; the minimum is reported
REPEATS = 3
#: acceptance floor: vectorized speciation+reproduction vs scalar
MIN_SPEEDUP = 3.0
#: acceptance floor: plan-cache hit rate on the weight-only run
MIN_HIT_RATE = 0.8
#: generations of the weight-mutation-dominated cache run
CACHE_GENERATIONS = 4


def _population(config: NEATConfig, generation: int = 0) -> dict:
    population = {}
    for i in range(POPULATION):
        key = generation * 10_000 + i
        genome = make_evolved_genome(
            config, seed=i + generation * 300, mutations=MUTATIONS,
            key=key,
        )
        genome.fitness = float((i * 13) % 29)
        population[key] = genome
    return population


def _time(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _speciate(populations, config):
    """Two speciation passes: generation 0 founds the species, the next
    generation re-anchors them — the steady-state per-generation
    pattern. Returns the final partition and the accumulated stats."""
    species_set = SpeciesSet()
    comparisons = 0
    genes_compared = 0
    for generation, population in enumerate(populations):
        stats = species_set.speciate(
            population, generation, config, random.Random(generation)
        )
        comparisons += stats.comparisons
        genes_compared += stats.genes_compared
    stats.comparisons = comparisons
    stats.genes_compared = genes_compared
    return species_set, stats


def _make_plan(population, config, species_set):
    """Generation Planning — a separate Table III block, not timed."""
    counter = iter(range(100_000, 100_000 + 4 * POPULATION))
    return plan_generation(
        config, species_set, 1, random.Random(1), lambda: next(counter)
    )


def _reproduce(population, config, plan):
    """The Reproduction block proper: execute a prepared plan."""
    rngs = RngFactory(7)
    innovation = InnovationTracker(
        next_node_id=max(g.max_node_id() for g in population.values()) + 1
    )
    next_population, stats = execute_plan(
        plan, population, config,
        lambda spec: rngs.get(f"child:0:{spec.child_key}"),
        innovation,
        np_rng=(
            rngs.np_generator("brood:0")
            if config.genetics == "vectorized"
            else None
        ),
    )
    return next_population, stats


def test_vectorized_genetics_speedup(benchmark, report_sink, json_sink):
    # growth-biased structural rates evolve realistic long-run genome
    # sizes; a tighter threshold then splits the diverse population into
    # a healthy species count — the regime Fig 3c measures
    scalar_config = NEATConfig.for_env(
        "CartPole-v0",
        pop_size=POPULATION,
        compatibility_threshold=2.8,
        conn_add_prob=0.45,
        node_add_prob=0.2,
        node_delete_prob=0.05,
        conn_delete_prob=0.05,
    )
    vector_config = scalar_config.evolve_with(genetics="vectorized")
    populations = [
        _population(scalar_config, generation) for generation in range(2)
    ]
    population = populations[-1]
    total_genes = sum(g.gene_count() for g in population.values())

    # correctness first: identical speciation partition and cost counters
    scalar_set, scalar_stats = _speciate(populations, scalar_config)
    vector_set, vector_stats = _speciate(populations, vector_config)
    assert scalar_set.genome_to_species == vector_set.genome_to_species, (
        "vectorized speciation diverged from scalar partition"
    )
    assert scalar_stats.comparisons == vector_stats.comparisons
    assert scalar_stats.genes_compared == vector_stats.genes_compared
    # ... and the vectorized brood keeps the scalar structure (the
    # structural draws are the prefix of each child's scalar stream).
    # Identical partitions yield identical plans; reuse one.
    plan = _make_plan(population, scalar_config, scalar_set)
    scalar_next, _ = _reproduce(population, scalar_config, plan)
    vector_next, _ = _reproduce(population, vector_config, plan)
    assert set(scalar_next) == set(vector_next)
    for key in scalar_next:
        assert set(scalar_next[key].connections) == set(
            vector_next[key].connections
        ), "vectorized brood changed a child topology"

    scalar_speciation_s = run_once(
        benchmark,
        lambda: _time(lambda: _speciate(populations, scalar_config)),
    )
    vector_speciation_s = _time(
        lambda: _speciate(populations, vector_config)
    )
    scalar_repro_s = _time(
        lambda: _reproduce(population, scalar_config, plan)
    )
    vector_repro_s = _time(
        lambda: _reproduce(population, vector_config, plan)
    )

    scalar_total = scalar_speciation_s + scalar_repro_s
    vector_total = vector_speciation_s + vector_repro_s
    speedup = scalar_total / vector_total
    speciation_speedup = scalar_speciation_s / vector_speciation_s
    repro_speedup = scalar_repro_s / vector_repro_s

    rows = [
        ["speciation", f"{scalar_speciation_s * 1e3:.1f}",
         f"{vector_speciation_s * 1e3:.1f}",
         f"{speciation_speedup:.1f}x"],
        ["reproduction", f"{scalar_repro_s * 1e3:.1f}",
         f"{vector_repro_s * 1e3:.1f}", f"{repro_speedup:.1f}x"],
        ["combined", f"{scalar_total * 1e3:.1f}",
         f"{vector_total * 1e3:.1f}", f"{speedup:.1f}x"],
    ]
    report_sink(
        "bench_genetics",
        f"Vectorized genetics engine — {POPULATION} evolved genomes "
        f"({total_genes} genes), {scalar_stats.n_species} species, "
        f"{len(plan.children)} children, CartPole-v0\n"
        + format_table(
            ["evolution block", "scalar (ms)", "vectorized (ms)",
             "speedup"],
            rows,
        )
        + "\npartition parity: identical species assignment for all "
        f"{POPULATION} genomes",
    )
    json_sink(
        "bench_genetics",
        {
            "population": POPULATION,
            "total_genes": total_genes,
            "n_species": scalar_stats.n_species,
            "comparisons": scalar_stats.comparisons,
            "genes_compared": scalar_stats.genes_compared,
            "children": len(plan.children),
            "scalar_speciation_s": scalar_speciation_s,
            "vector_speciation_s": vector_speciation_s,
            "scalar_reproduction_s": scalar_repro_s,
            "vector_reproduction_s": vector_repro_s,
            "speciation_speedup": speciation_speedup,
            "reproduction_speedup": repro_speedup,
            "speedup": speedup,
            "partition_identical": True,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized genetics only {speedup:.1f}x faster; need "
        f">= {MIN_SPEEDUP}x"
    )


def test_plan_cache_hit_rate_and_bitwise_parity(report_sink, json_sink):
    # weight-mutation-dominated regime: every child differs from its
    # parent in weights/biases only, so every compile after the first
    # per-topology should be a refill
    config = NEATConfig.for_env(
        "CartPole-v0",
        pop_size=64,
        node_add_prob=0.0, node_delete_prob=0.0,
        conn_add_prob=0.0, conn_delete_prob=0.0,
        enabled_mutate_rate=0.0,
    )
    cached = GenomeEvaluator("CartPole-v0", seed=9, backend="batched")
    population = Population(config, seed=9)

    def evaluate(genomes, generation):
        results = cached.evaluate_many(genomes, config, generation)
        fresh = GenomeEvaluator("CartPole-v0", seed=9, backend="batched")
        fresh.plan_cache = None
        reference = fresh.evaluate_many(genomes, config, generation)
        assert results == reference, (
            "cached compilation changed evaluation results"
        )
        return results

    population.run(evaluate, max_generations=CACHE_GENERATIONS)
    cache = cached.plan_cache
    hit_rate = cache.hit_rate
    lookups = cache.hits + cache.misses

    report_sink(
        "bench_genetics_plan_cache",
        "Compiled-plan cache — weight-mutation-dominated run "
        f"({config.pop_size} genomes x {CACHE_GENERATIONS} "
        "generations, CartPole-v0)\n"
        + format_table(
            ["metric", "value"],
            [
                ["compiles requested", str(lookups)],
                ["cache hits", str(cache.hits)],
                ["full lowerings", str(cache.misses)],
                ["hit rate", f"{hit_rate:.0%}"],
                ["evaluation parity", "bitwise identical"],
            ],
        ),
    )
    json_sink(
        "bench_genetics_plan_cache",
        {
            "population": config.pop_size,
            "generations": CACHE_GENERATIONS,
            "lookups": lookups,
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": hit_rate,
            "bitwise_parity": True,
        },
    )

    assert hit_rate >= MIN_HIT_RATE, (
        f"plan cache hit rate {hit_rate:.0%}; need >= "
        f"{MIN_HIT_RATE:.0%}"
    )
