"""Fig 3: gene-cost of the NEAT compute blocks across generations.

Paper claim: "inference is the costliest operation by orders of magnitude
followed by Speciation and lastly by Reproduction".
"""

from repro.analysis.figures import fig3_block_costs
from repro.analysis.report import render_block_costs

from benchmarks.conftest import run_once


def test_fig3_block_costs(benchmark, scale, report_sink):
    costs = run_once(
        benchmark,
        lambda: fig3_block_costs(
            scale.workloads, scale.pop_size, scale.generations, seed=0
        ),
    )
    sections = [
        render_block_costs(env_id, series)
        for env_id, series in costs.items()
    ]
    report_sink("fig3_block_costs", "\n\n".join(sections))

    for env_id, series in costs.items():
        total_inference = sum(p.inference_genes for p in series)
        total_speciation = sum(p.speciation_genes for p in series)
        total_reproduction = sum(p.reproduction_genes for p in series)
        # inference dominates by an order of magnitude (multi-step)
        assert total_inference > 5 * total_speciation, env_id
        assert total_inference > 5 * total_reproduction, env_id
