"""Fig 5: CLAN_DCS (distributed inference) runtime at scale.

Paper claims: small workloads stop scaling after 5-10 units because
communication starts to dominate (panel b); larger workloads speed up
linearly through the 15-Pi testbed.
"""

from repro.analysis.figures import fig5_dcs_scaling
from repro.analysis.report import render_scaling_series

from benchmarks.conftest import run_once


def test_fig5_dcs_scaling(benchmark, scale, report_sink):
    series = run_once(
        benchmark,
        lambda: fig5_dcs_scaling(
            scale.workloads,
            scale.fig5_grid,
            scale.pop_size,
            scale.generations,
            seed=0,
        ),
    )
    sections = [
        render_scaling_series("Fig 5a", env_id, per_n)
        for env_id, per_n in series.items()
    ]
    # panel (b): inference vs communication share for the small workload
    cartpole = series["CartPole-v0"]
    sections.append(
        render_scaling_series(
            "Fig 5b",
            "CartPole-v0 (inference vs communication)",
            cartpole,
            components=("inference", "communication"),
        )
    )
    report_sink("fig5_dcs_scaling", "\n\n".join(sections))

    grid = sorted(cartpole)
    # inference itself keeps scaling ...
    assert cartpole[grid[-1]].inference_s < cartpole[grid[0]].inference_s
    # ... but communication grows with agents (panel b's message)
    assert (
        cartpole[grid[-1]].communication_s
        > cartpole[grid[0]].communication_s
    )
    # large workloads: near-linear total speedup through the testbed
    airraid = series["Airraid-ram-v0"]
    speedup = airraid[grid[0]].total_s / airraid[grid[-1]].total_s
    assert speedup > 0.5 * (grid[-1] / grid[0])
