"""Telemetry overhead gate: tracing must be ~free off, cheap on.

The observability layer (:mod:`repro.obs`) promises a no-op fast path —
an instrumented hot path pays one global load and one test when tracing
is off — and a bounded cost when it is on (one ``SpanEvent`` append per
*batch*, not per request, on the serving path). This benchmark holds
both promises against the micro-batched serving burst of
``bench_serving_latency``:

* **disabled** — a burst served with no active tracer must be within
  ``MAX_DISABLED_OVERHEAD`` of the uninstrumented-equivalent baseline;
* **enabled** — the same burst with a live driver tracer must stay
  within ``MAX_ENABLED_OVERHEAD``.

Each repeat times the bursts in a symmetric baseline-variant-variant-
baseline sandwich and the gate checks the median of the per-repeat
ratios, so drift that is linear in time cancels exactly instead of
biasing either side. The report also writes
``reports/bench_obs_overhead_trace.json`` — a Chrome-trace-format sample
of a real 4-clan barrier-free run (open at https://ui.perfetto.dev),
uploaded as a CI artifact.
"""

from __future__ import annotations

import asyncio
import gc
import json
import random
import time

from repro.cluster.runtime import DistributedClanRuntime
from repro.neat.config import NEATConfig
from repro.obs import tracer as obs
from repro.obs.export import to_chrome_trace
from repro.obs.tracer import Tracer
from repro.serve import ChampionRegistry, InferenceGateway
from repro.utils.fmt import format_table

from benchmarks.conftest import REPORT_DIR, run_once
from tests.conftest import make_evolved_genome

#: concurrent requests per measured burst — large enough that asyncio
#: scheduling noise is small relative to the burst (the gates are
#: single-digit percentages)
N_REQUESTS = 4000
#: observation dimensionality of the CartPole workload
OBS_DIM = 4
#: champion mutation budget (forward passes must dominate, as in prod)
MUTATIONS = 300
#: gateway coalescing knobs
MAX_BATCH = 128
MAX_WAIT_S = 0.001
#: sandwich repetitions per variant; the gate takes the median ratio
REPEATS = 5
#: acceptance ceilings, as fractions of the untraced baseline
MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_OVERHEAD = 0.10
#: clans in the sample trace shipped as a CI artifact
TRACE_CLANS = 4


def _observations() -> list[list[float]]:
    rng = random.Random(11)
    return [
        [rng.uniform(-1.0, 1.0) for _ in range(OBS_DIM)]
        for _ in range(N_REQUESTS)
    ]


def _serve_burst(registry, observations) -> float:
    """Serve the burst through a fresh gateway; returns elapsed seconds."""

    async def run():
        gateway = InferenceGateway(
            registry,
            max_batch=MAX_BATCH,
            max_wait_s=MAX_WAIT_S,
            close_registry=False,
        )
        await gateway.start()
        start = time.perf_counter()
        await asyncio.gather(
            *(gateway.submit(obs) for obs in observations)
        )
        elapsed = time.perf_counter() - start
        await gateway.close()
        return elapsed

    return asyncio.run(run())


def _sample_clan_trace() -> dict:
    """Trace a real 4-clan barrier-free run; returns the Chrome doc."""
    tracer = Tracer(track="driver")
    previous = obs.activate(tracer)
    try:
        config = NEATConfig.for_env("CartPole-v0", pop_size=32)
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=TRACE_CLANS, config=config, seed=8
        ) as runtime:
            runtime.run_async(max_generations=3, fitness_threshold=1e9)
    finally:
        if previous is not None:
            obs.activate(previous)
        else:
            obs.deactivate()
    return to_chrome_trace(tracer.events(), dropped=tracer.dropped)


def test_obs_overhead_gate(benchmark, report_sink, json_sink):
    config = NEATConfig.for_env(
        "CartPole-v0",
        node_add_prob=0.4,
        conn_add_prob=0.55,
        node_delete_prob=0.0,
        conn_delete_prob=0.0,
    )
    champion = make_evolved_genome(
        config, seed=5, mutations=MUTATIONS, key=1
    )
    observations = _observations()
    registry = ChampionRegistry(config)
    registry.publish(champion, source="bench")

    obs.deactivate()
    # warm-up: compile caches, import costs, first-loop jitter
    _serve_burst(registry, observations)
    run_once(benchmark, lambda: _serve_burst(registry, observations))

    def timed(tracer: Tracer | None) -> float:
        # collect the previous burst's garbage (4000 futures) up front
        # so collector pauses don't land mid-measurement at random
        gc.collect()
        if tracer is not None:
            obs.activate(tracer)
        try:
            return _serve_burst(registry, observations)
        finally:
            obs.deactivate()

    enabled_tracer = Tracer(track="driver")
    # two variants against the no-tracer default: a tracer installed
    # but switched off (instrumented paths take the NULL_SPAN fast
    # path) and live tracing (one span appended per batch flush).
    # Each repeat times the bursts in a symmetric baseline-variant-
    # variant-baseline sandwich, so any drift that is linear in time
    # cancels exactly from the ratio; the gate takes the median ratio
    # across repeats to shrug off the occasional outlier repeat.
    ratios: dict[str, list[float]] = {"disabled": [], "enabled": []}
    best = {
        "baseline": float("inf"),
        "disabled": float("inf"),
        "enabled": float("inf"),
    }
    for repeat in range(REPEATS):
        for name, tracer in (
            ("disabled", Tracer(enabled=False)),
            ("enabled", enabled_tracer),
        ):
            base_a = timed(None)
            variant_a = timed(tracer)
            variant_b = timed(tracer)
            base_b = timed(None)
            ratios[name].append(
                (variant_a + variant_b) / (base_a + base_b)
            )
            best["baseline"] = min(best["baseline"], base_a, base_b)
            best[name] = min(best[name], variant_a, variant_b)

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    baseline_s = best["baseline"]
    disabled_s = best["disabled"]
    enabled_s = best["enabled"]
    enabled_events = len(enabled_tracer.events())
    disabled_overhead = median(ratios["disabled"]) - 1.0
    enabled_overhead = median(ratios["enabled"]) - 1.0

    trace_doc = _sample_clan_trace()
    REPORT_DIR.mkdir(exist_ok=True)
    trace_path = REPORT_DIR / "bench_obs_overhead_trace.json"
    trace_path.write_text(json.dumps(trace_doc))
    tracks = sorted(
        entry["args"]["name"]
        for entry in trace_doc["traceEvents"]
        if entry.get("name") == "thread_name"
    )

    rows = [
        ["untraced baseline", f"{baseline_s * 1e3:.1f}", "-", "-"],
        ["tracer installed, disabled", f"{disabled_s * 1e3:.1f}",
         f"{disabled_overhead:+.1%}",
         f"< {MAX_DISABLED_OVERHEAD:.0%}"],
        ["tracing enabled", f"{enabled_s * 1e3:.1f}",
         f"{enabled_overhead:+.1%}", f"< {MAX_ENABLED_OVERHEAD:.0%}"],
    ]
    report_sink(
        "bench_obs_overhead",
        f"Telemetry overhead — {N_REQUESTS} concurrent requests, "
        f"median sandwich ratio over {REPEATS} repeats\n"
        + format_table(
            ["serving burst", "time (ms)", "overhead", "gate"], rows
        )
        + f"\nenabled run recorded {enabled_events} span events; "
        f"sample {TRACE_CLANS}-clan chrome trace "
        f"({', '.join(tracks)}) saved to {trace_path.name}",
    )
    json_sink(
        "bench_obs_overhead",
        {
            "n_requests": N_REQUESTS,
            "repeats": REPEATS,
            "baseline_s": baseline_s,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": enabled_overhead,
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
            "enabled_span_events": enabled_events,
            "trace_tracks": tracks,
        },
    )

    assert enabled_events > 0, "enabled tracer recorded nothing"
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"tracing-disabled overhead {disabled_overhead:+.1%} exceeds "
        f"the {MAX_DISABLED_OVERHEAD:.0%} gate"
    )
    assert enabled_overhead < MAX_ENABLED_OVERHEAD, (
        f"tracing-enabled overhead {enabled_overhead:+.1%} exceeds "
        f"the {MAX_ENABLED_OVERHEAD:.0%} gate"
    )
