#!/usr/bin/env python3
"""Population-scale evaluation: one vectorized sweep per generation.

Evolves CartPole twice with the same seed — once evaluating genome by
genome (the PR 1 batched path) and once with ``eval_mode="population"``,
where every genome's compiled plan is stacked into one super-batch and
all genomes x episodes roll forward together against the array-native
``CartPoleVectorEnv``. The two runs produce identical fitness
trajectories; only the wall-clock differs.

Run:  python examples/population_eval.py
"""

import time

from repro.core import SerialNEAT
from repro.neat import NEATConfig


def evolve(eval_mode: str):
    config = NEATConfig.for_env("CartPole-v0", pop_size=64)
    engine = SerialNEAT(
        "CartPole-v0", config=config, seed=7, episodes=3,
        backend="batched", eval_mode=eval_mode,
    )
    start = time.perf_counter()
    result = engine.run(max_generations=8, fitness_threshold=1e9)
    elapsed = time.perf_counter() - start
    return result, elapsed


def main() -> None:
    print("evolving CartPole-v0 twice (same seed, 64 genomes x 3 episodes)")
    per_genome, per_genome_s = evolve("per_genome")
    population, population_s = evolve("population")

    print(f"\n{'generation':>10} | {'per_genome best':>15} | "
          f"{'population best':>15}")
    identical = True
    for rec_a, rec_b in zip(per_genome.records, population.records):
        same = rec_a.best_fitness == rec_b.best_fitness
        marker = "" if same else "  <-- differs"
        identical = identical and same
        print(f"{rec_a.generation:>10} | {rec_a.best_fitness:>15.2f} | "
              f"{rec_b.best_fitness:>15.2f}{marker}")

    print(f"\nidentical trajectories: {identical}")
    print(
        f"per-genome evaluation: {per_genome_s:.2f}s, "
        f"population sweep: {population_s:.2f}s "
        f"({per_genome_s / population_s:.1f}x faster)"
    )


if __name__ == "__main__":
    main()
