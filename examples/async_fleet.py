#!/usr/bin/env python3
"""Barrier-free CLAN on a heterogeneous edge fleet.

Models the paper's headline claim — the A in CLAN — on the mixed fleets
it targets: a Jetson Nano next to Raspberry Pis next to a $10 Pi Zero.
One CLAN_DDA run is replayed through the event simulator in barrier,
pipelined and async execution modes, showing how much time the global
barrier burns waiting for the straggler; then the barrier-free process
driver runs real clans with no per-generation pool join, letting fast
clans drift ahead until one converges.

Run:  python examples/async_fleet.py
"""

from repro.cluster.analytic import ClusterSpec
from repro.cluster.runtime import DistributedClanRuntime
from repro.core import ClanDriver
from repro.neat import NEATConfig

ENV_ID = "CartPole-v0"
FLEET = ("jetson_nano", "raspberry_pi", "raspberry_pi", "pi_zero")
GENERATIONS = 6
SEED = 7


def main() -> None:
    cluster = ClusterSpec.of_devices(FLEET)
    config = NEATConfig.for_env(ENV_ID, pop_size=40)
    print(
        f"workload {ENV_ID} on a heterogeneous fleet "
        f"[{', '.join(FLEET)}] (cost ${cluster.total_price_usd():.0f})\n"
    )

    driver = ClanDriver(
        ENV_ID, cluster, protocol="CLAN_DDA", config=config, seed=SEED
    )
    driver.learn(
        max_generations=GENERATIONS, fitness_threshold=float("inf")
    )

    print(f"{'execution mode':15s} {'total':>8s} {'radio idle':>11s} "
          f"{'straggler gap':>14s}")
    for mode in ("barrier", "pipelined", "async"):
        generations, total = driver.simulate(mode=mode)
        idle = sum(g.radio_idle_share for g in generations) / len(
            generations
        )
        gap = (
            f"{max(g.straggler_gap_s for g in generations):13.2f}s"
            if mode == "async"
            else f"{'-':>14s}"
        )
        print(f"{mode:15s} {total:7.2f}s {idle:10.0%} {gap}")

    straggliest = max(
        driver.engine.records, key=lambda r: r.load_imbalance()
    )
    print(
        f"\nworst generation load imbalance (max/mean gene-ops): "
        f"{straggliest.load_imbalance():.2f}x — the barrier waits for "
        f"the Pi Zero every generation; async does not.\n"
    )

    print("running clans barrier-free (no per-generation pool join)...")
    with DistributedClanRuntime(
        ENV_ID, n_clans=len(FLEET), config=config, seed=SEED
    ) as runtime:
        stats = runtime.run_async(max_generations=30)
        champion = runtime.best_genome()
    print(
        f"converged: {stats.converged}; per-clan generation counts "
        f"{stats.per_clan_generations} (clans drift apart freely)"
    )
    print(
        f"champion fitness {champion.fitness:.1f} after "
        f"{stats.wall_time_s:.2f}s wall time on this machine"
    )


if __name__ == "__main__":
    main()
