#!/usr/bin/env python3
"""Quickstart: evolve a CartPole controller with serial NEAT.

The minimal end-to-end use of the library: build a config sized for a
workload, run the serial NEAT loop until the gym convergence criterion, and
replay the champion.

Run:  python examples/quickstart.py
"""

from repro.core import SerialNEAT
from repro.envs import make, rollout
from repro.neat import FeedForwardNetwork, NEATConfig, RunStatistics
from repro.neat.visualize import describe_layers


def main() -> None:
    env_id = "CartPole-v0"
    config = NEATConfig.for_env(env_id, pop_size=100)
    # fitness = mean over 3 episodes, so champions generalise across
    # initial conditions instead of overfitting one seed
    engine = SerialNEAT(env_id, config=config, seed=7, episodes=3)

    print(f"evolving {env_id}: population {config.pop_size}, "
          f"solved at {engine.solved_threshold} points")
    result = engine.run(max_generations=40)

    for record in result.records:
        print(
            f"  generation {record.generation:2d}: "
            f"best {record.best_fitness:6.1f}  "
            f"mean {record.mean_fitness:6.1f}  "
            f"species {record.n_species}"
        )

    if not result.converged:
        print("did not converge within the generation budget")
        return

    champion = engine.best_genome
    nodes, connections = champion.complexity()
    print(
        f"\nconverged in {result.generations_to_converge} generations; "
        f"champion has {nodes} nodes / {connections} enabled connections"
    )
    print(describe_layers(champion, config))

    trends = RunStatistics()
    trends.record_all(engine.population.history)
    print("\n" + trends.report())

    network = FeedForwardNetwork.create(champion, config)
    env = make(env_id)
    for episode in range(3):
        outcome = rollout(env, network.policy, seed=1000 + episode)
        print(
            f"replay episode {episode}: reward {outcome.total_reward:.0f} "
            f"over {outcome.steps} steps"
        )


if __name__ == "__main__":
    main()
