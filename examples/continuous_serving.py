#!/usr/bin/env python3
"""Continuous learning, served: evolve in the background, answer live.

This is the loop the paper's title promises, end to end. A champion
registry deploys a bootstrap policy immediately; a micro-batching
gateway starts answering open-loop Poisson traffic; two clans evolve on
worker processes and every global-best report is compiled and hot-swapped
into the registry *mid-traffic* — a swap is one reference assignment
between micro-batches, so not a single request is paused or dropped.

Afterwards the script audits every response against the scalar inference
of the exact champion version that served it: micro-batching and
hot-swapping are invisible to correctness.

Run:  python examples/continuous_serving.py
"""

import asyncio

from repro.neat.network import FeedForwardNetwork
from repro.serve import (
    ContinuousService,
    LoadGenerator,
    observation_sampler,
)

ENV_ID = "CartPole-v0"
N_CLANS = 2
POP_SIZE = 24
GENERATION_BUDGET = 25
REQUESTS = 800
RATE_HZ = 500.0
SEED = 0


async def serve() -> None:
    service = ContinuousService(
        ENV_ID,
        n_clans=N_CLANS,
        pop_size=POP_SIZE,
        seed=SEED,
        max_generations=GENERATION_BUDGET,
        fitness_threshold=1e9,  # spend the whole budget improving
        max_batch=16,
        max_wait_s=0.001,
    )
    bootstrap = await service.start()
    print(
        f"deployed bootstrap champion v{bootstrap.version} "
        f"(unevaluated seed genome) — serving starts now"
    )

    generator = LoadGenerator(
        service.submit,
        observation_sampler(ENV_ID),
        rate_hz=RATE_HZ,
        n_requests=REQUESTS,
        seed=SEED + 1,
    )
    report = await generator.run()
    evolution = await service.evolution_done()
    stats = service.stats()
    await service.close()

    print(
        f"\nserved {report.served}/{report.offered} requests at "
        f"{stats.qps:,.0f} qps (p50 {stats.p50_latency_s * 1e3:.2f}ms, "
        f"p95 {stats.p95_latency_s * 1e3:.2f}ms, mean batch "
        f"{stats.mean_batch_size:.2f}, shed {stats.shed})"
    )
    print(
        f"evolution ran {evolution.generations} generations/clan in the "
        f"background, best fitness {evolution.best_fitness:.1f}"
    )
    for record, event in service.promotions:
        print(
            f"  hot-swap -> v{record.version}: genome "
            f"{event.genome_key} from clan {event.clan_id} "
            f"(generation {event.generation}, fitness "
            f"{event.fitness:.1f})"
        )
    versions = report.distinct_versions
    swapped_mid_traffic = len(versions) >= 2
    print(
        f"champion versions observed by live traffic: {versions} — "
        f"hot-swap mid-traffic: {swapped_mid_traffic}"
    )

    # audit: every response equals the scalar inference of the champion
    # version that served it (the scalar interpreter is the repo's
    # bit-exact reference engine)
    scalar_by_version: dict[int, FeedForwardNetwork] = {}
    audited = mismatches = 0
    for served, observation in zip(
        report.responses, report.observations
    ):
        if served is None:  # shed/rejected requests carry no action
            continue
        audited += 1
        record = service.registry.record_for(served.champion_version)
        scalar = scalar_by_version.setdefault(
            served.champion_version, record.scalar_network()
        )
        if served.action != scalar.policy(observation):
            mismatches += 1
    print(
        f"served actions match their champion's scalar inference: "
        f"{mismatches == 0} ({audited} responses audited across "
        f"{len(scalar_by_version)} champion versions)"
    )


def main() -> None:
    asyncio.run(serve())


if __name__ == "__main__":
    main()
