#!/usr/bin/env python3
"""Mini Fig 9: how far can a Pi swarm scale on a large workload?

Measures CLAN_DCS and CLAN_DDA at testbed sizes, fits the paper's scaling
form t(n) = a/n + b + c*n^2, extrapolates to 100 units, and reports the
two numbers the paper headlines: where each configuration loses to a
serial implementation, and the average advantage of asynchronous
speciation.

Run:  python examples/scaling_study.py            (multi-step inference)
      python examples/scaling_study.py --single   (single-step inference)
"""

import sys

from repro.analysis.figures import fig9_extrapolation
from repro.analysis.report import render_extrapolation

ENV_ID = "Airraid-ram-v0"


def main() -> None:
    single_step = "--single" in sys.argv
    mode = "single-step" if single_step else "multi-step"
    print(f"scaling study: {ENV_ID}, {mode} inference "
          f"(measuring 1..15 nodes, extrapolating to 100)\n")

    study = fig9_extrapolation(
        ENV_ID,
        measure_grid=(1, 2, 4, 6, 8, 10, 12, 15),
        pop_size=60,
        generations=5,
        single_step=single_step,
        seed=0,
        plot_grid=(1, 6, 12, 24, 40, 60, 100),
    )
    print(render_extrapolation(f"Fig 9 {mode}", study))

    crossovers = study.crossovers()
    dda_limit = crossovers["CLAN_DDA"]
    advantage = study.mean_advantage(
        "CLAN_DDA", "CLAN_DCS", up_to=dda_limit or 100
    )
    print(
        f"\nasynchronous speciation keeps the swarm ahead of a single "
        f"device up to {dda_limit or '>100'} nodes and runs "
        f"{advantage:.2f}x faster than hard scaling on average."
    )


if __name__ == "__main__":
    main()
