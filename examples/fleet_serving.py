#!/usr/bin/env python3
"""Horizontally scaled serving: a replica fleet under a hot-swap.

A :class:`~repro.serve.fleet.ServingFleet` runs two full inference
gateways in worker processes behind a seeded load balancer, all fed
from one champion registry. The script drives two phases of seeded
Poisson load with a champion hot-swap in between: the publish streams
the compiled plan down every replica pipe, each replica acks the
deployment sequence number, and ``wait_deployed`` returns only when
every replica is on the new champion — after which not a single
response may carry the old version (monotone propagation).

Afterwards the script audits every response against the scalar
inference of the exact champion version it was attributed to, and
prints the per-replica load split the balancer produced.

Run:  python examples/fleet_serving.py
"""

import asyncio

from repro.neat.config import NEATConfig
from repro.neat.population import Population
from repro.serve import (
    ChampionRegistry,
    LoadGenerator,
    ServingFleet,
    observation_sampler,
)

ENV_ID = "CartPole-v0"
REPLICAS = 2
REQUESTS_PER_PHASE = 300
RATE_HZ = 600.0
SEED = 0


async def serve() -> None:
    config = NEATConfig.for_env(ENV_ID, pop_size=16)
    registry = ChampionRegistry(config)
    fleet = ServingFleet(
        registry,
        replicas=REPLICAS,
        max_batch=16,
        max_wait_s=0.001,
        seed=SEED,
    )
    await fleet.start()

    # two deterministic champions to swap between, from the same seeded
    # population the evolution stack would draw from
    population = Population(config, seed=SEED)
    keys = sorted(population.genomes)
    reports = []
    for phase, key in enumerate(keys[:2], start=1):
        record = registry.publish(
            population.genomes[key], source=f"phase{phase}"
        )
        await fleet.wait_deployed()
        print(
            f"phase {phase}: champion v{record.version} deployed to "
            f"all {REPLICAS} replicas (registry seq {registry.seq})"
        )
        generator = LoadGenerator(
            fleet.submit,
            observation_sampler(ENV_ID),
            rate_hz=RATE_HZ,
            n_requests=REQUESTS_PER_PHASE,
            seed=SEED + phase,
        )
        reports.append(await generator.run())

    stats = await fleet.scrape()
    per_replica = fleet.replica_stats()
    traces = fleet.version_traces()
    await fleet.close()

    print(
        f"\nfleet served {stats.served} requests at {stats.qps:,.0f} "
        f"qps (p50 {stats.p50_latency_s * 1e3:.2f}ms, p95 "
        f"{stats.p95_latency_s * 1e3:.2f}ms, shed {stats.shed})"
    )
    for replica_id, rstats in sorted(per_replica.items()):
        print(
            f"  replica {replica_id}: {rstats.served} served at "
            f"{rstats.qps:,.0f} qps, versions served {traces[replica_id]}"
        )

    # audits: (1) no stale-version serves — phase N was answered
    # entirely by champion vN; (2) every action equals the scalar
    # inference of the record it was attributed to (record_for)
    stale = 0
    mismatches = 0
    scalar_by_version = {}
    for phase, report in enumerate(reports, start=1):
        for observation, served in zip(
            report.observations, report.responses
        ):
            if served is None:
                continue
            if served.champion_version != phase:
                stale += 1
            scalar = scalar_by_version.setdefault(
                served.champion_version,
                registry.record_for(
                    served.champion_version
                ).scalar_network(),
            )
            if served.action != scalar.policy(observation):
                mismatches += 1
    registry.close()
    print(
        f"stale-version serves after hot-swap: {stale}; "
        f"scalar parity mismatches: {mismatches}"
    )


def main() -> None:
    asyncio.run(serve())


if __name__ == "__main__":
    main()
