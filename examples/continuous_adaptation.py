#!/usr/bin/env python3
"""The paper's Fig 1 closed loop: deploy, monitor, relearn on drift.

An autonomous agent balances a pole with a deployed NEAT expert. Midway,
the physics change under it (a longer, heavier pole under stronger
gravity — the "trained to walk on the road, encountering sand" story).
The rolling fitness collapses below threshold; the agent invokes
collaborative learning on its edge cluster, evolves a new expert with zero
cloud interaction, and resumes.

Run:  python examples/continuous_adaptation.py
"""

from repro.cluster.analytic import ClusterSpec
from repro.core import AdaptiveAgent
from repro.envs.cartpole import CartPoleEnv
from repro.neat import NEATConfig


def main() -> None:
    env = CartPoleEnv(seed=0)
    agent = AdaptiveAgent(
        env=env,
        cluster=ClusterSpec.of_pis(6),
        fitness_threshold=60.0,
        window=4,
        protocol="CLAN_DDA",
        config=NEATConfig.for_env("CartPole-v0", pop_size=64),
        seed=11,
        relearn_generations=30,
        relearn_target=120.0,
    )

    print("phase 1: learn an initial expert on the default environment")
    first = agent.learn()
    print(
        f"  learned in {first.generations} generations "
        f"(modelled cluster time {first.timing_total.total_s:.1f}s); "
        f"fitness {first.best_genome.fitness:.0f}\n"
    )

    print("phase 2: operate normally")
    for episode in range(4):
        fitness = agent.run_episode(seed=episode)
        print(f"  episode {episode}: fitness {fitness:6.1f} "
              f"(rolling {agent.rolling_fitness:6.1f})")

    print("\nphase 3: the environment drifts (actuator polarity inverts — "
          "every learned reflex now pushes the wrong way)")
    env.FORCE_MAG = -env.FORCE_MAG

    episode = 4
    relearned = False
    while episode < 20:
        fitness = agent.run_episode(seed=episode)
        flag = ""
        if agent.needs_relearning():
            flag = "  <- fitness below threshold: relearning"
        print(f"  episode {episode}: fitness {fitness:6.1f} "
              f"(rolling {agent.rolling_fitness:6.1f}){flag}")
        if agent.needs_relearning():
            run = agent.learn()
            relearned = True
            print(
                f"  ... relearned in {run.generations} generations, new "
                f"expert fitness {run.best_genome.fitness:.0f}\n"
            )
        episode += 1
        if relearned and episode >= 10:
            break

    print("phase 4: operate with the adapted expert")
    for episode in range(100, 104):
        fitness = agent.run_episode(seed=episode)
        print(f"  episode {episode}: fitness {fitness:6.1f}")


if __name__ == "__main__":
    main()
