#!/usr/bin/env python3
"""Collaborative learning on a (simulated + real) edge cluster.

Runs the paper's three CLAN configurations on the same workload and
cluster, reporting what each would cost on the 15-Pi WiFi testbed — then
executes CLAN_DDA *physically*, one OS process per clan, and checks the
real run reproduces the logical one.

Run:  python examples/distributed_edge_cluster.py
"""

from repro.cluster.analytic import ClusterSpec
from repro.cluster.runtime import DistributedClanRuntime
from repro.core import ClanDriver
from repro.neat import NEATConfig

ENV_ID = "LunarLander-v2"
N_AGENTS = 8
GENERATIONS = 6
SEED = 3


def main() -> None:
    cluster = ClusterSpec.of_pis(N_AGENTS)
    config = NEATConfig.for_env(ENV_ID, pop_size=64)

    print(
        f"workload {ENV_ID}, {N_AGENTS} Raspberry Pis over "
        f"{cluster.link.bandwidth_bps / 1e6:.2f} Mbps WiFi "
        f"(fleet cost ${cluster.total_price_usd():.0f})\n"
    )

    print(f"{'configuration':12s} {'best':>8s} {'inference':>10s} "
          f"{'evolution':>10s} {'comm':>8s} {'total/gen':>10s}")
    for protocol in ("CLAN_DCS", "CLAN_DDS", "CLAN_DDA"):
        driver = ClanDriver(
            ENV_ID, cluster, protocol=protocol, config=config, seed=SEED
        )
        run = driver.learn(
            max_generations=GENERATIONS, fitness_threshold=float("inf")
        )
        timing = run.timing_per_generation
        print(
            f"{protocol:12s} {run.result.best_fitness:8.1f} "
            f"{timing.inference_s:9.2f}s {timing.evolution_s:9.2f}s "
            f"{timing.communication_s:7.2f}s {timing.total_s:9.2f}s"
        )

    print("\nnow running CLAN_DDA physically (one process per clan)...")
    logical = ClanDriver(
        ENV_ID, cluster, protocol="CLAN_DDA", config=config, seed=SEED
    ).learn(max_generations=GENERATIONS, fitness_threshold=float("inf"))
    with DistributedClanRuntime(
        ENV_ID, n_clans=N_AGENTS, config=config, seed=SEED
    ) as runtime:
        real = runtime.run(
            max_generations=GENERATIONS, fitness_threshold=float("inf")
        )
        champion = runtime.best_genome()

    logical_best = [r.best_fitness for r in logical.result.records]
    print(f"logical best-per-generation : "
          f"{[round(v, 1) for v in logical_best]}")
    print(f"physical best-per-generation: "
          f"{[round(v, 1) for v in real.best_fitness_per_generation]}")
    match = real.best_fitness_per_generation == logical_best
    print(f"bit-exact agreement: {match}")
    print(
        f"physical wall time: {real.wall_time_s:.2f}s on this machine; "
        f"champion fitness {champion.fitness:.1f}"
    )


if __name__ == "__main__":
    main()
