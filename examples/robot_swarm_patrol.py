#!/usr/bin/env python3
"""A robotic-swarm scenario: real-time control means single-step inference.

The paper's section IV-D observes that "there does not exist a necessary
condition of repeated inference over multiple time steps in the real
world" — a patrol robot takes *one* control decision per learning
evaluation tick, so inference stops dominating and the choice of
distributed configuration decides everything.

This example contrasts multi-step learning (game-style, inference-heavy)
with single-step learning (robotics-style) on the large workload and
shows how the winning configuration and the communication share flip,
then prints where each configuration stops beating one robot learning
alone.

Run:  python examples/robot_swarm_patrol.py
"""

from repro.analysis.figures import fig9_extrapolation, scaling_series
from repro.utils.fmt import format_table

ENV_ID = "Alien-ram-v0"  # pursuit/evasion: closest to a patrol task
SWARM_SIZES = (2, 6, 12)
POP = 60
GENERATIONS = 4


def share_table(max_steps, label):
    rows = []
    for protocol in ("CLAN_DCS", "CLAN_DDA"):
        series = scaling_series(
            ENV_ID, protocol, SWARM_SIZES, POP, GENERATIONS,
            seed=1, max_steps=max_steps,
        )
        for n, timing in sorted(series.items()):
            share = timing.share()
            rows.append(
                [
                    protocol,
                    n,
                    f"{timing.total_s:.2f}s",
                    f"{share['inference'] * 100:.0f}%",
                    f"{share['communication'] * 100:.0f}%",
                ]
            )
    return format_table(
        ["configuration", "robots", "time/generation", "inference",
         "communication"],
        rows,
        title=label,
    )


def main() -> None:
    print(
        f"swarm of patrol robots learning {ENV_ID} "
        f"(population {POP})\n"
    )
    print(share_table(None, "game-style learning: full episodes per "
                            "evaluation (multi-step)"))
    print()
    print(share_table(1, "robot-style learning: one control tick per "
                         "evaluation (single-step)"))

    study = fig9_extrapolation(
        ENV_ID,
        measure_grid=(1, 2, 4, 6, 8, 10, 12, 15),
        pop_size=POP,
        generations=GENERATIONS,
        single_step=True,
        seed=1,
    )
    crossovers = study.crossovers()
    print(
        "\nhow large can the swarm grow before one robot learning alone "
        "would be faster?"
    )
    for protocol, crossover in sorted(crossovers.items()):
        print(f"  {protocol}: {crossover or '>500'} robots")
    print(
        "\nasynchronous clans keep the swarm useful "
        f"{crossovers['CLAN_DDA'] / crossovers['CLAN_DCS']:.1f}x further — "
        "the paper's case for CLAN_DDA on real robots."
    )


if __name__ == "__main__":
    main()
