#!/usr/bin/env python3
"""Mini Fig 11: what does a dollar of hardware buy per generation?

Compares serial NEAT on the Table IV platforms (HPC CPU/GPU, Jetson TX2
CPU/GPU) against CLAN_DDA on growing Raspberry-Pi swarms, for one small
and one large workload.

Run:  python examples/price_performance.py
"""

from repro.analysis.figures import fig11_ppp, ppp_ratio
from repro.analysis.report import render_platforms

WORKLOADS = ("CartPole-v0", "Airraid-ram-v0")
PI_COUNTS = (1, 2, 4, 6, 10, 15)


def main() -> None:
    results = fig11_ppp(
        WORKLOADS, PI_COUNTS, pop_size=60, generations=5, seed=0
    )
    for env_id, points in results.items():
        print(render_platforms(env_id, points))
        print()

    airraid = results["Airraid-ram-v0"]
    prices = {p.label: p.price_usd for p in airraid}
    print("headline ratios (Airraid):")
    for ours, reference in (("6 pi", "Jetson CPU"), ("15 pi", "HPC CPU")):
        ratio = ppp_ratio(airraid, ours, reference)
        print(
            f"  {ours} (${prices[ours]:.0f}) "
            f"vs {reference}: {ratio:.2f}x performance per dollar"
        )


if __name__ == "__main__":
    main()
