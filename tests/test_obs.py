"""Unit tests for the telemetry layer: tracer, clock, metrics, export."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.obs import clock
from repro.obs import tracer as obs
from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.tracer import NULL_SPAN, SpanEvent, Tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with tracing off and the real clock."""
    obs.deactivate()
    yield
    obs.deactivate()
    clock.set_clock(clock.SystemClock())


# ---------------------------------------------------------------------------
# clock shim
# ---------------------------------------------------------------------------


class TestClock:
    def test_system_clock_is_default_and_monotonic(self):
        a = clock.perf()
        b = clock.perf()
        assert b >= a
        assert clock.monotonic() >= 0.0
        assert clock.wall() > 0.0

    def test_manual_clock_injects_and_restores(self):
        manual = clock.ManualClock(start=100.0)
        previous = clock.set_clock(manual)
        try:
            assert clock.perf() == 100.0
            manual.advance(2.5)
            assert clock.perf() == 102.5
            assert clock.monotonic() == 102.5
        finally:
            clock.set_clock(previous)
        assert clock.get_clock() is previous

    def test_manual_clock_rejects_negative_advance(self):
        manual = clock.ManualClock()
        with pytest.raises(ValueError):
            manual.advance(-1.0)


# ---------------------------------------------------------------------------
# tracer: nesting, no-op, collection
# ---------------------------------------------------------------------------


class TestSpanNesting:
    def test_depth_and_parent_recorded(self):
        tracer = Tracer()
        with tracer.span("generation", gen=3):
            with tracer.span("speciate"):
                pass
            with tracer.span("reproduce"):
                with tracer.span("brood_mutate"):
                    pass
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["generation"].depth == 0
        assert by_name["generation"].parent is None
        assert by_name["generation"].args == {"gen": 3}
        assert by_name["speciate"].depth == 1
        assert by_name["speciate"].parent == "generation"
        assert by_name["reproduce"].parent == "generation"
        assert by_name["brood_mutate"].depth == 2
        assert by_name["brood_mutate"].parent == "reproduce"

    def test_children_close_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e.name for e in tracer.events()]
        assert names == ["inner", "outer"]

    def test_nesting_is_thread_local(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name: str):
            with tracer.span(name, track=name):
                barrier.wait(timeout=5)
                with tracer.span(f"{name}-child", track=name):
                    pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = {e.name: e for e in tracer.events()}
        # each thread's child nests under its *own* root, never the
        # other thread's (the stacks are contextvars, not globals)
        assert events["t0-child"].parent == "t0"
        assert events["t1-child"].parent == "t1"
        assert events["t0-child"].depth == 1
        assert events["t1-child"].depth == 1

    def test_nesting_is_task_local(self):
        tracer = Tracer()

        async def task(name: str):
            with tracer.span(name):
                await asyncio.sleep(0)
                with tracer.span(f"{name}-child"):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(task("a"), task("b"))

        asyncio.run(main())
        events = {e.name: e for e in tracer.events()}
        assert events["a-child"].parent == "a"
        assert events["b-child"].parent == "b"

    def test_instant_records_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("generation"):
            tracer.instant("respawn", clan=2)
        instant = next(
            e for e in tracer.events() if e.kind == "instant"
        )
        assert instant.name == "respawn"
        assert instant.parent == "generation"
        assert instant.dur_s == 0.0
        assert instant.args == {"clan": 2}

    def test_span_add_annotates_mid_flight(self):
        tracer = Tracer()
        span = tracer.span("batch_flush", size=4)
        with span:
            span.add(version=7)
        event = tracer.events()[0]
        assert event.args == {"size": 4, "version": 7}

    def test_durations_follow_the_injected_clock(self):
        manual = clock.ManualClock()
        previous = clock.set_clock(manual)
        try:
            tracer = Tracer()
            with tracer.span("generation"):
                manual.advance(1.5)
            event = tracer.events()[0]
            assert event.dur_s == 1.5
        finally:
            clock.set_clock(previous)


class TestDisabledMode:
    def test_module_span_is_shared_null_singleton(self):
        assert obs.current() is None
        assert obs.span("generation") is NULL_SPAN
        assert obs.span("anything", gen=1) is NULL_SPAN

    def test_null_span_supports_the_full_surface(self):
        with obs.span("generation") as span:
            span.add(gen=1)
        obs.instant("deploy", seq=1)  # no-op, no error

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NULL_SPAN
        tracer.instant("y")
        assert tracer.events() == []

    def test_activate_returns_previous(self):
        first = Tracer()
        second = Tracer()
        assert obs.activate(first) is None
        assert obs.activate(second) is first
        assert obs.current() is second
        assert obs.deactivate() is second
        assert obs.current() is None


class TestCollection:
    def test_drain_pops_primitive_dicts(self):
        tracer = Tracer(track="clan:1")
        with tracer.span("evaluate", gen=0):
            pass
        batch = tracer.drain()
        assert tracer.events() == []
        assert len(batch) == 1
        assert isinstance(batch[0], dict)
        assert batch[0]["track"] == "clan:1"
        # drained payloads survive a JSON round trip (pipe-safe)
        assert json.loads(json.dumps(batch)) == batch

    def test_absorb_preserves_per_track_order(self):
        producer_a = Tracer(track="clan:0")
        producer_b = Tracer(track="clan:1")
        for gen in range(3):
            with producer_a.span("evaluate", gen=gen):
                pass
            with producer_b.span("evaluate", gen=gen):
                pass
        merged = Tracer(track="driver")
        # interleaved batches, as pipe messages would arrive
        merged.absorb(producer_a.drain())
        merged.absorb(producer_b.drain())
        for track in ("clan:0", "clan:1"):
            gens = [
                e.args["gen"]
                for e in merged.events()
                if e.track == track
            ]
            assert gens == sorted(gens)

    def test_absorb_can_retag_track(self):
        producer = Tracer(track="driver")
        with producer.span("evaluate"):
            pass
        merged = Tracer()
        assert merged.absorb(producer.drain(), track="clan:7") == 1
        assert merged.events()[0].track == "clan:7"

    def test_max_events_counts_drops(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.events()) == 2
        assert tracer.dropped == 3

    def test_span_event_dict_round_trip(self):
        event = SpanEvent(
            name="deploy",
            track="driver",
            start_s=1.0,
            dur_s=0.0,
            depth=2,
            parent="generation",
            args={"seq": 3},
            kind="instant",
        )
        assert SpanEvent.from_dict(event.as_dict()) == event


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        registry.counter("repro_x_total").inc(2)
        assert registry.value("repro_x_total") == 3
        registry.gauge("repro_y").set(1.5)
        assert registry.value("repro_y") == 1.5
        hist = registry.histogram("repro_z_seconds")
        hist.observe(0.003)
        hist.observe(10.0)
        assert registry.value("repro_z_seconds") == 2
        assert hist.total == pytest.approx(10.003)

    def test_counters_reject_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("repro_x_total").inc(-1)

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_labels_key_independent_of_order(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", a="1", b="2").inc()
        registry.counter("repro_x_total", b="2", a="1").inc()
        assert registry.value("repro_x_total", a="1", b="2") == 2

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_z_seconds", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(50.0)
        assert hist.cumulative_buckets() == [
            (0.1, 1),
            (1.0, 2),
            (float("inf"), 3),
        ]

    def test_ingest_service_stats(self):
        from repro.core.metrics import ServiceStats

        stats = ServiceStats(
            requests=10,
            served=8,
            shed=2,
            qps=123.0,
            p50_latency_s=0.001,
            p95_latency_s=0.004,
            batch_size_histogram={1: 4, 4: 1},
            champion_version=3,
            swaps=2,
        )
        registry = MetricsRegistry()
        registry.ingest_service_stats(stats)
        assert registry.value(
            "repro_serve_requests_total", outcome="served"
        ) == 8
        assert registry.value(
            "repro_serve_requests_total", outcome="shed"
        ) == 2
        assert registry.value("repro_serve_qps") == 123.0
        assert registry.value(
            "repro_serve_latency_seconds", quantile="0.95"
        ) == 0.004
        assert registry.value("repro_serve_batch_size") == 5
        assert registry.value("repro_serve_champion_version") == 3
        assert registry.value("repro_serve_champion_swaps_total") == 2

    def test_ingest_churn(self):
        from repro.core.metrics import ChurnStats

        churn = ChurnStats(
            deaths=2,
            respawns=1,
            clans_lost=1,
            lost_generations=3,
            reassigned_generations=4,
            recovery_latency_s=[0.2, 0.4],
        )
        registry = MetricsRegistry()
        registry.ingest_churn(churn)
        assert registry.value("repro_churn_deaths_total") == 2
        assert registry.value("repro_churn_respawns_total") == 1
        assert (
            registry.value("repro_churn_recovery_latency_seconds") == 2
        )
        assert registry.value(
            "repro_churn_mean_recovery_latency_seconds"
        ) == pytest.approx(0.3)

    def test_ingest_fleet_health(self):
        health = {
            "replica_respawns": 2,
            "requests_retried": 5,
            "requests_hedged": 1,
            "fleet_shed": 0,
            "breaker_states": {0: 1.0, 1: 0.0},
            "live_replicas": [1],
            "faults_injected": {"kill": 1, "drop": 2},
        }
        registry = MetricsRegistry()
        registry.ingest_fleet_health(health)
        assert registry.value("repro_replica_respawns_total") == 2
        assert registry.value("repro_requests_retried_total") == 5
        assert registry.value("repro_requests_hedged_total") == 1
        assert (
            registry.value("repro_faults_injected_total", action="kill")
            == 1
        )
        assert (
            registry.value("repro_faults_injected_total", action="drop")
            == 2
        )
        assert (
            registry.value("repro_replica_breaker_state", replica="0")
            == 1.0
        )
        assert (
            registry.value("repro_replica_breaker_state", replica="1")
            == 0.0
        )

    def test_ingest_fleet_health_tolerates_empty_dict(self):
        registry = MetricsRegistry()
        registry.ingest_fleet_health({})
        assert registry.value("repro_replica_respawns_total") == 0

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_x_total", "things counted", kind="a"
        ).inc(2)
        hist = registry.histogram(
            "repro_z_seconds", "latency", buckets=(0.1,)
        )
        hist.observe(0.05)
        text = registry.to_prometheus()
        assert "# HELP repro_x_total things counted" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="a"} 2' in text
        assert "# TYPE repro_z_seconds histogram" in text
        assert 'repro_z_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_z_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_z_seconds_count 1" in text
        assert text.endswith("\n")

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def _sample_events() -> list[SpanEvent]:
    return [
        SpanEvent("generation", "driver", 10.0, 2.0, args={"gen": 0}),
        SpanEvent("evaluate", "clan:1", 10.1, 0.5, depth=1,
                  parent="generation", args={"gen": 0}),
        SpanEvent("evaluate", "clan:0", 10.2, 0.4, depth=1,
                  parent="generation"),
        SpanEvent("batch_flush", "replica:0", 10.5, 0.01,
                  args={"size": 4, "version": 2}),
        SpanEvent("deploy", "driver", 11.0, 0.0, kind="instant",
                  args={"seq": 1}),
    ]


class TestChromeTrace:
    def test_schema(self):
        doc = to_chrome_trace(_sample_events())
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        for entry in doc["traceEvents"]:
            assert entry["ph"] in ("M", "X", "i")
            if entry["ph"] == "M":
                assert entry["name"] in (
                    "thread_name", "thread_sort_index"
                )
                continue
            assert isinstance(entry["ts"], float)
            assert entry["pid"] == 1
            assert entry["tid"] >= 1
            if entry["ph"] == "X":
                assert entry["dur"] >= 0
            else:
                assert entry["s"] == "t"
        # the document is valid JSON end to end
        json.loads(json.dumps(doc))

    def test_one_named_track_per_source(self):
        doc = to_chrome_trace(_sample_events())
        names = {
            entry["args"]["name"]: entry["tid"]
            for entry in doc["traceEvents"]
            if entry.get("name") == "thread_name"
        }
        assert set(names) == {
            "driver", "clan:0", "clan:1", "replica:0"
        }
        # display order: driver first, then clans, then replicas
        assert names["driver"] < names["clan:0"] < names["clan:1"]
        assert names["clan:1"] < names["replica:0"]

    def test_timestamps_rebased_to_zero(self):
        doc = to_chrome_trace(_sample_events())
        ts = [
            e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"
        ]
        assert min(ts) == 0.0
        # microseconds: the 1 s gap between first and last is 1e6
        assert max(ts) == pytest.approx(1e6)

    def test_dropped_events_surfaced(self):
        doc = to_chrome_trace(_sample_events(), dropped=7)
        assert doc["otherData"]["dropped_events"] == 7

    def test_write_round_trip(self, tmp_path):
        target = write_chrome_trace(
            _sample_events(), tmp_path / "trace.json"
        )
        doc = json.loads(target.read_text())
        assert len(doc["traceEvents"]) == 5 + 2 * 4  # events + metadata


class TestJsonl:
    def test_round_trip(self, tmp_path):
        events = _sample_events()
        target = write_jsonl(events, tmp_path / "trace.jsonl")
        assert read_jsonl(target) == events
        lines = target.read_text().strip().splitlines()
        assert len(lines) == len(events)
        assert json.loads(lines[0])["name"] == "generation"
