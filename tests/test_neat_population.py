"""Tests for the serial NEAT generation loop."""

import pytest

from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult
from repro.neat.population import Population, summarise_population


def fake_evaluate(genomes, generation):
    """Fitness = genome key modulo prime (deterministic, no env)."""
    return {
        g.key: FitnessResult(
            genome_key=g.key,
            fitness=float(g.key % 17),
            steps=3,
            total_reward=float(g.key % 17),
            solved=False,
        )
        for g in genomes
    }


@pytest.fixture
def config():
    return NEATConfig(num_inputs=3, num_outputs=2, pop_size=30)


class TestConstruction:
    def test_initial_population_size(self, config):
        pop = Population(config, seed=0)
        assert pop.size == config.pop_size

    def test_unique_keys(self, config):
        pop = Population(config, seed=0)
        assert len(set(pop.genomes)) == config.pop_size

    def test_same_seed_same_population(self, config):
        a = Population(config, seed=3)
        b = Population(config, seed=3)
        for key in a.genomes:
            assert a.genomes[key].distance(b.genomes[key], config) == 0.0

    def test_different_seed_different_population(self, config):
        a = Population(config, seed=3)
        b = Population(config, seed=4)
        distances = [
            a.genomes[key].distance(b.genomes[key], config)
            for key in a.genomes
        ]
        assert any(d > 0 for d in distances)


class TestGenerationLoop:
    def test_population_size_invariant(self, config):
        pop = Population(config, seed=0)
        for _ in range(5):
            pop.run_generation(fake_evaluate)
            assert pop.size == config.pop_size

    def test_generation_counter(self, config):
        pop = Population(config, seed=0)
        pop.run_generation(fake_evaluate)
        pop.run_generation(fake_evaluate)
        assert pop.generation == 2

    def test_stats_fields(self, config):
        pop = Population(config, seed=0)
        stats = pop.run_generation(fake_evaluate)
        assert stats.generation == 0
        assert stats.best_fitness == 16.0  # max key % 17
        assert stats.population_size == config.pop_size
        assert stats.n_species >= 1
        assert stats.inference_genes > 0
        assert stats.speciation_genes > 0
        assert stats.reproduction_genes > 0

    def test_inference_genes_counts_steps(self, config):
        pop = Population(config, seed=0)
        stats = pop.run_generation(fake_evaluate)
        total_genes = sum(
            genes for genes, _steps in stats.genome_profile.values()
        )
        assert stats.inference_genes == total_genes * 3  # 3 steps each

    def test_missing_fitness_rejected(self, config):
        pop = Population(config, seed=0)

        def partial_evaluate(genomes, generation):
            results = fake_evaluate(genomes, generation)
            results.pop(next(iter(results)))
            return results

        with pytest.raises(ValueError, match="no fitness"):
            pop.run_generation(partial_evaluate)

    def test_best_genome_tracked(self, config):
        pop = Population(config, seed=0)
        pop.run_generation(fake_evaluate)
        assert pop.best_genome is not None
        assert pop.best_genome.fitness == 16.0

    def test_best_genome_is_copy(self, config):
        pop = Population(config, seed=0)
        pop.run_generation(fake_evaluate)
        best = pop.best_genome
        pop.run_generation(fake_evaluate)
        # mutating the population later never mutates the stored champion
        assert best.fitness == 16.0

    def test_last_plan_exposed(self, config):
        pop = Population(config, seed=0)
        pop.run_generation(fake_evaluate)
        assert pop.last_plan is not None
        assert pop.last_plan.next_population_size() == config.pop_size
        assert set(pop.last_children_profile) == {
            spec.child_key for spec in pop.last_plan.children
        }

    def test_history_accumulates(self, config):
        pop = Population(config, seed=0)
        pop.run_generation(fake_evaluate)
        pop.run_generation(fake_evaluate)
        assert [s.generation for s in pop.history] == [0, 1]

    def test_run_stops_at_threshold(self, config):
        pop = Population(config, seed=0)
        log = pop.run(fake_evaluate, max_generations=10, fitness_threshold=10)
        assert len(log) == 1  # 16 >= 10 immediately

    def test_run_respects_budget(self, config):
        pop = Population(config, seed=0)
        log = pop.run(
            fake_evaluate, max_generations=4, fitness_threshold=1e9
        )
        assert len(log) == 4


class TestSummarise:
    def test_summarise_population(self, config):
        pop = Population(config, seed=0)
        total, mean, largest = summarise_population(pop.genomes)
        assert total == sum(g.gene_count() for g in pop.genomes.values())
        assert mean == pytest.approx(total / config.pop_size)
        assert largest >= mean
