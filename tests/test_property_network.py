"""Property-based tests for network compilation and activation."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork

CONFIG = NEATConfig(num_inputs=3, num_outputs=2, pop_size=10)


@st.composite
def genome_strategy(draw):
    seed = draw(st.integers(min_value=0, max_value=50_000))
    mutations = draw(st.integers(min_value=0, max_value=40))
    rng = random.Random(seed)
    tracker = InnovationTracker(next_node_id=CONFIG.num_outputs)
    genome = Genome(0)
    genome.configure_new(CONFIG, rng)
    for _ in range(mutations):
        genome.mutate(CONFIG, rng, tracker)
    return genome


inputs_strategy = st.lists(
    st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    ),
    min_size=3,
    max_size=3,
)


class TestActivationProperties:
    @given(genome_strategy(), inputs_strategy)
    @settings(max_examples=50, deadline=None)
    def test_every_mutated_genome_compiles_and_runs(self, genome, inputs):
        network = FeedForwardNetwork.create(genome, CONFIG)
        outputs = network.activate(inputs)
        assert len(outputs) == CONFIG.num_outputs
        assert all(math.isfinite(v) for v in outputs)

    @given(genome_strategy(), inputs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_activation_deterministic(self, genome, inputs):
        network = FeedForwardNetwork.create(genome, CONFIG)
        assert network.activate(inputs) == network.activate(inputs)

    @given(genome_strategy(), inputs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_fresh_compile_agrees(self, genome, inputs):
        a = FeedForwardNetwork.create(genome, CONFIG)
        b = FeedForwardNetwork.create(genome, CONFIG)
        assert a.activate(inputs) == b.activate(inputs)

    @given(genome_strategy(), inputs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_policy_in_action_space(self, genome, inputs):
        network = FeedForwardNetwork.create(genome, CONFIG)
        action = network.policy(inputs)
        assert 0 <= action < CONFIG.num_outputs

    @given(genome_strategy(), inputs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_wire_round_trip_preserves_behaviour(self, genome, inputs):
        from repro.cluster.serialization import decode_genome, encode_genome

        original = FeedForwardNetwork.create(genome, CONFIG)
        restored = FeedForwardNetwork.create(
            decode_genome(encode_genome(genome)), CONFIG
        )
        assert original.activate(inputs) == restored.activate(inputs)
