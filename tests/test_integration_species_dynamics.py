"""Integration: speciation dynamics over long runs."""

from repro.core.protocols import SerialNEAT
from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult
from repro.neat.population import Population


def deceptive_evaluate(genomes, generation):
    """Fitness favours structural complexity: drives divergence."""
    return {
        g.key: FitnessResult(
            genome_key=g.key,
            fitness=float(g.gene_count()),
            steps=1,
            total_reward=0.0,
            solved=False,
        )
        for g in genomes
    }


class TestSpeciesFormation:
    def test_lower_threshold_more_species(self):
        def count_species(threshold):
            config = NEATConfig(
                num_inputs=4,
                num_outputs=2,
                pop_size=40,
                compatibility_threshold=threshold,
            )
            population = Population(config, seed=3)
            for _ in range(6):
                stats = population.run_generation(deceptive_evaluate)
            return stats.n_species

        assert count_species(1.0) >= count_species(5.0)

    def test_species_emerge_under_structural_pressure(self):
        config = NEATConfig(
            num_inputs=4,
            num_outputs=2,
            pop_size=40,
            compatibility_threshold=2.0,
            node_add_prob=0.2,
            conn_add_prob=0.4,
        )
        population = Population(config, seed=3)
        for _ in range(8):
            stats = population.run_generation(deceptive_evaluate)
        assert stats.n_species >= 2

    def test_stagnant_species_culled_over_time(self):
        config = NEATConfig(
            num_inputs=4,
            num_outputs=2,
            pop_size=40,
            compatibility_threshold=1.5,
            max_stagnation=3,
            species_elitism=1,
        )
        population = Population(config, seed=5)

        def flat_evaluate(genomes, generation):
            # constant fitness: every species stagnates immediately
            return {
                g.key: FitnessResult(g.key, 1.0, 1, 1.0, False)
                for g in genomes
            }

        peak = 0
        for _ in range(10):
            stats = population.run_generation(flat_evaluate)
            peak = max(peak, stats.n_species)
        # survivors exist (species_elitism) but the peak was culled
        assert stats.n_species >= 1
        assert population.size == config.pop_size


class TestFitnessSharing:
    def test_no_species_monopolises_under_sharing(self):
        # paper Table III: "each genome must share the fitness of their
        # species"; with several species alive, spawn counts stay bounded
        config = NEATConfig(
            num_inputs=4,
            num_outputs=2,
            pop_size=60,
            compatibility_threshold=1.5,
            node_add_prob=0.15,
            min_species_size=2,
        )
        population = Population(config, seed=7)
        for _ in range(6):
            population.run_generation(deceptive_evaluate)
        plan = population.last_plan
        if len(plan.spawn_counts) >= 2:
            largest = max(plan.spawn_counts.values())
            assert largest < config.pop_size


class TestConvergedBehaviourStability:
    def test_champion_protected_by_elitism(self):
        engine = SerialNEAT(
            "CartPole-v0",
            config=NEATConfig.for_env("CartPole-v0", pop_size=60),
            seed=1,
        )
        result = engine.run(max_generations=25, fitness_threshold=1e9)
        # paper section III-C: NEAT maintains accuracy over generations;
        # with elitism the best-ever fitness never regresses much
        best_so_far = float("-inf")
        regressions = 0
        for record in result.records:
            if record.best_fitness < best_so_far * 0.5:
                regressions += 1
            best_so_far = max(best_so_far, record.best_fitness)
        assert regressions <= len(result.records) // 3
