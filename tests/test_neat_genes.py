"""Tests for node and connection genes."""

import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene


@pytest.fixture
def config():
    return NEATConfig(num_inputs=2, num_outputs=1)


class TestNodeGene:
    def test_rejects_negative_key(self):
        with pytest.raises(ValueError):
            NodeGene(-1)

    def test_random_within_bounds(self, config):
        rng = random.Random(0)
        for _ in range(50):
            gene = NodeGene.random(3, config, rng)
            assert config.bias_min <= gene.bias <= config.bias_max

    def test_random_uses_default_activation(self, config):
        gene = NodeGene.random(0, config, random.Random(0))
        assert gene.activation == config.default_activation
        assert gene.aggregation == config.default_aggregation

    def test_copy_is_independent(self):
        gene = NodeGene(1, bias=0.5)
        clone = gene.copy()
        clone.bias = 9.0
        assert gene.bias == 0.5

    def test_copy_equal(self):
        gene = NodeGene(1, bias=0.5, response=2.0)
        assert gene.copy() == gene

    def test_crossover_mixes_parents(self, config):
        rng = random.Random(0)
        a = NodeGene(1, bias=0.0)
        b = NodeGene(1, bias=1.0)
        picks = {a.crossover(b, rng).bias for _ in range(40)}
        assert picks == {0.0, 1.0}

    def test_crossover_requires_matching_keys(self):
        with pytest.raises(ValueError):
            NodeGene(1).crossover(NodeGene(2), random.Random(0))

    def test_distance_zero_for_identical(self, config):
        gene = NodeGene(1, bias=0.3)
        assert gene.distance(gene.copy(), config) == 0.0

    def test_distance_tracks_bias_difference(self, config):
        a = NodeGene(1, bias=0.0)
        b = NodeGene(1, bias=2.0)
        expected = 2.0 * config.compatibility_weight_coefficient
        assert a.distance(b, config) == pytest.approx(expected)

    def test_distance_counts_activation_mismatch(self, config):
        a = NodeGene(1, activation="tanh")
        b = NodeGene(1, activation="relu")
        assert a.distance(b, config) > 0

    def test_distance_symmetric(self, config):
        a = NodeGene(1, bias=0.1, response=1.5)
        b = NodeGene(1, bias=-0.7, response=0.5)
        assert a.distance(b, config) == pytest.approx(b.distance(a, config))

    def test_mutate_respects_bounds(self, config):
        rng = random.Random(7)
        gene = NodeGene(1, bias=config.bias_max)
        for _ in range(100):
            gene.mutate(config, rng)
            assert config.bias_min <= gene.bias <= config.bias_max

    def test_wire_footprint(self):
        assert NodeGene.FLOAT_FIELDS == 5


class TestConnectionGene:
    def test_rejects_connection_into_input(self):
        with pytest.raises(ValueError):
            ConnectionGene((-1, -2))

    def test_key_normalised_to_ints(self):
        gene = ConnectionGene((True, 3))  # bools are ints; normalised
        assert gene.key == (1, 3)

    def test_random_within_bounds(self, config):
        rng = random.Random(0)
        for _ in range(50):
            gene = ConnectionGene.random((-1, 0), config, rng)
            assert config.weight_min <= gene.weight <= config.weight_max
            assert gene.enabled

    def test_copy_is_independent(self):
        gene = ConnectionGene((-1, 0), weight=1.0)
        clone = gene.copy()
        clone.weight = -1.0
        clone.enabled = False
        assert gene.weight == 1.0
        assert gene.enabled

    def test_crossover_mixes_weights(self, config):
        rng = random.Random(0)
        a = ConnectionGene((-1, 0), weight=0.0)
        b = ConnectionGene((-1, 0), weight=1.0)
        picks = {a.crossover(b, rng).weight for _ in range(40)}
        assert picks == {0.0, 1.0}

    def test_crossover_requires_matching_keys(self):
        with pytest.raises(ValueError):
            ConnectionGene((-1, 0)).crossover(
                ConnectionGene((-2, 0)), random.Random(0)
            )

    def test_distance_includes_enabled_flag(self, config):
        a = ConnectionGene((-1, 0), weight=1.0, enabled=True)
        b = ConnectionGene((-1, 0), weight=1.0, enabled=False)
        assert a.distance(b, config) == pytest.approx(
            config.compatibility_weight_coefficient
        )

    def test_distance_symmetric(self, config):
        a = ConnectionGene((-1, 0), weight=2.0)
        b = ConnectionGene((-1, 0), weight=-1.0)
        assert a.distance(b, config) == pytest.approx(b.distance(a, config))

    def test_mutate_respects_bounds(self, config):
        rng = random.Random(9)
        gene = ConnectionGene((-1, 0), weight=config.weight_max)
        for _ in range(100):
            gene.mutate(config, rng)
            assert config.weight_min <= gene.weight <= config.weight_max

    def test_wire_footprint(self):
        assert ConnectionGene.FLOAT_FIELDS == 4
