"""Tests for gene-attribute mutation helpers."""

import random

from repro.neat.attributes import clamp, mutate_bool, mutate_float, new_float


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-2.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0


class TestNewFloat:
    def test_respects_bounds(self):
        rng = random.Random(0)
        for _ in range(200):
            value = new_float(rng, 0.0, 5.0, -1.0, 1.0)
            assert -1.0 <= value <= 1.0

    def test_zero_stdev_returns_mean(self):
        rng = random.Random(0)
        assert new_float(rng, 0.7, 0.0, -1.0, 1.0) == 0.7


class TestMutateFloat:
    KWARGS = dict(
        mutate_rate=0.8,
        replace_rate=0.1,
        mutate_power=0.5,
        init_mean=0.0,
        init_stdev=1.0,
        low=-2.0,
        high=2.0,
    )

    def test_zero_rates_never_change(self):
        rng = random.Random(0)
        kwargs = dict(self.KWARGS, mutate_rate=0.0, replace_rate=0.0)
        assert all(
            mutate_float(0.3, rng, **kwargs) == 0.3 for _ in range(100)
        )

    def test_rate_one_always_perturbs(self):
        rng = random.Random(0)
        kwargs = dict(self.KWARGS, mutate_rate=1.0, replace_rate=0.0)
        values = {mutate_float(0.3, rng, **kwargs) for _ in range(20)}
        assert 0.3 not in values

    def test_result_always_in_bounds(self):
        rng = random.Random(3)
        for _ in range(500):
            value = mutate_float(1.9, rng, **self.KWARGS)
            assert -2.0 <= value <= 2.0

    def test_perturbation_magnitude_tracks_power(self):
        rng = random.Random(5)
        kwargs = dict(
            self.KWARGS, mutate_rate=1.0, replace_rate=0.0, mutate_power=0.01
        )
        deltas = [
            abs(mutate_float(0.0, rng, **kwargs)) for _ in range(200)
        ]
        assert max(deltas) < 0.1


class TestMutateBool:
    def test_zero_rate_is_stable(self):
        rng = random.Random(0)
        assert all(mutate_bool(True, rng, 0.0) for _ in range(50))

    def test_rate_one_randomises(self):
        rng = random.Random(0)
        values = {mutate_bool(True, rng, 1.0) for _ in range(50)}
        assert values == {True, False}
