"""Tests for evaluation and run caching."""

import pytest

from repro.analysis.cache import CachedGenomeEvaluator, RunCache
from repro.core.protocols import ProtocolBase, SerialNEAT
from repro.neat.config import NEATConfig
from repro.neat.population import Population


@pytest.fixture
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=16)


class TestCachedEvaluator:
    def test_hit_on_identical_content(self, config):
        evaluator = CachedGenomeEvaluator("CartPole-v0", seed=3)
        population = Population(config, seed=0)
        genome = next(iter(population.genomes.values()))
        first = evaluator.evaluate(genome, config, 0)
        second = evaluator.evaluate(genome, config, 0)
        assert evaluator.hits == 1
        assert first.fitness == second.fitness

    def test_hit_across_key_renames(self, config):
        evaluator = CachedGenomeEvaluator("CartPole-v0", seed=3)
        population = Population(config, seed=0)
        genome = next(iter(population.genomes.values()))
        evaluator.evaluate(genome, config, 0)
        renamed = genome.copy(new_key=999)
        result = evaluator.evaluate(renamed, config, 0)
        assert evaluator.hits == 1
        assert result.genome_key == 999

    def test_miss_on_different_generation(self, config):
        evaluator = CachedGenomeEvaluator("CartPole-v0", seed=3)
        population = Population(config, seed=0)
        genome = next(iter(population.genomes.values()))
        evaluator.evaluate(genome, config, 0)
        evaluator.evaluate(genome, config, 1)
        assert evaluator.hits == 0
        assert evaluator.misses == 2

    def test_miss_on_different_content(self, config):
        evaluator = CachedGenomeEvaluator("CartPole-v0", seed=3)
        population = Population(config, seed=0)
        keys = iter(population.genomes)
        a = population.genomes[next(keys)]
        b = population.genomes[next(keys)]
        evaluator.evaluate(a, config, 0)
        evaluator.evaluate(b, config, 0)
        assert evaluator.hits == 0

    def test_matches_uncached_evaluator(self, config):
        cached = CachedGenomeEvaluator("CartPole-v0", seed=3)
        plain = ProtocolBase.default_evaluator("CartPole-v0", 0)
        cached.seed = plain.seed  # align episode seeds
        population = Population(config, seed=0)
        genome = next(iter(population.genomes.values()))
        assert (
            cached.evaluate(genome, config, 2).fitness
            == plain.evaluate(genome, config, 2).fitness
            if cached.seed == plain.seed
            else True
        )


class TestRunCache:
    def test_same_request_returns_same_records(self, config):
        cache = RunCache("CartPole-v0", config, seed=1)
        a = cache.records("CLAN_DCS", 2, 2)
        b = cache.records("CLAN_DCS", 2, 2)
        assert a is b

    def test_sweep_over_n_reuses_evaluations(self, config):
        cache = RunCache("CartPole-v0", config, seed=1)
        cache.records("CLAN_DCS", 2, 2)
        misses_after_first = cache.evaluator.misses
        cache.records("CLAN_DCS", 4, 2)
        # identical trajectory at any n: zero new rollouts
        assert cache.evaluator.misses == misses_after_first

    def test_records_match_uncached_engine(self, config):
        cache = RunCache("CartPole-v0", config, seed=1)
        cached_records = cache.records("Serial", 1, 2)
        engine = SerialNEAT("CartPole-v0", config=config, seed=1)
        plain = engine.run(max_generations=2, fitness_threshold=float("inf"))
        assert [r.best_fitness for r in cached_records] == [
            r.best_fitness for r in plain.records
        ]
