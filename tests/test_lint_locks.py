"""Runtime lock-order checker: cycle detection, hazards, patching.

The injected-inversion tests run under a *private* :class:`LockMonitor`
(passed into ``checked_locks`` explicitly), so a ``--lock-check``
session wrapping the whole suite never sees the deliberately bad
acquisition orders — the acceptance criterion is exactly that the real
suite stays cycle-free while these tests prove the detector fires.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.lint.locks import (
    CheckedLock,
    LockMonitor,
    LockSite,
    checked_locks,
)

pytestmark = pytest.mark.lock_check


def make_lock(monitor, name, kind="Lock"):
    return CheckedLock(monitor, LockSite(f"fake/{name}.py", 1, kind))


def test_injected_inversion_fires():
    """The seeded order inversion: A->B somewhere, B->A elsewhere."""
    monitor = LockMonitor()
    with checked_locks(monitor=monitor, track="*"):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        assert isinstance(lock_a, CheckedLock)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
    cycles = monitor.cycles()
    assert len(cycles) == 1
    assert {site.lineno for site in cycles[0]} == {
        lock_a.site.lineno,
        lock_b.site.lineno,
    }
    assert "ORDER-INVERSION" in monitor.report()


def test_injected_inversion_across_threads():
    """The same inversion observed from two real threads (serialised by
    a handshake so both interleavings are actually recorded)."""
    monitor = LockMonitor()
    with checked_locks(monitor=monitor, track="*"):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        first_done = threading.Event()

        def forward():
            with lock_a:
                with lock_b:
                    pass
            first_done.set()

        def backward():
            first_done.wait(5)
            with lock_b:
                with lock_a:
                    pass

        threads = [
            threading.Thread(target=forward),
            threading.Thread(target=backward),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5)
    assert len(monitor.cycles()) == 1


def test_consistent_order_is_clean():
    monitor = LockMonitor()
    with checked_locks(monitor=monitor, track="*"):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
    assert monitor.cycles() == []
    assert monitor.acquires == 6
    assert "no order-inversion cycles" in monitor.report()


def test_three_lock_rotation_cycle():
    """A->B, B->C, C->A: a cycle no pairwise check would see."""
    monitor = LockMonitor()
    a = make_lock(monitor, "a")
    b = make_lock(monitor, "b")
    c = make_lock(monitor, "c")
    for first, second in ((a, b), (b, c), (c, a)):
        with first:
            with second:
                pass
    cycles = monitor.cycles()
    assert len(cycles) == 1
    assert len(cycles[0]) == 3


def test_reentrant_rlock_is_not_a_cycle():
    monitor = LockMonitor()
    lock = make_lock(monitor, "re", kind="RLock")
    with lock:
        with lock:
            pass
    assert monitor.cycles() == []
    assert monitor.edges == {}


def test_same_site_instances_do_not_self_edge():
    # many instances born at one allocation site (per-replica stores):
    # nesting two of them is same-site and must not become an edge
    monitor = LockMonitor()
    site = LockSite("fake/store.py", 10, "Lock")
    first = CheckedLock(monitor, site)
    second = CheckedLock(monitor, site)
    with first:
        with second:
            pass
    assert monitor.edges == {}
    assert monitor.cycles() == []


def test_try_acquire_failure_records_no_hold():
    monitor = LockMonitor()
    lock = make_lock(monitor, "t")
    other = make_lock(monitor, "other")
    assert lock.acquire(blocking=False)
    # a failed non-blocking acquire from the same thread (Lock, not
    # RLock) must not leave phantom holdings behind
    assert not lock.acquire(blocking=False)
    lock.release()
    with other:
        pass
    assert monitor.cycles() == []


def test_held_in_async_hazard():
    monitor = LockMonitor()
    lock = make_lock(monitor, "loop")

    async def touch():
        with lock:
            pass

    asyncio.run(touch())
    kinds = {hazard.kind for hazard in monitor.hazards}
    assert kinds == {"held-in-async"}


def test_fork_hazard_flags_other_threads_only():
    monitor = LockMonitor()
    lock = make_lock(monitor, "forked")
    holding = threading.Event()
    release = threading.Event()

    def holder():
        with lock:
            holding.set()
            release.wait(5)

    thread = threading.Thread(target=holder)
    thread.start()
    assert holding.wait(5)
    # the main thread "forks": the holder thread's lock is a hazard
    monitor._record_fork_hazards(threading.get_ident())
    release.set()
    thread.join(5)
    kinds = [hazard.kind for hazard in monitor.hazards]
    assert kinds == ["held-across-fork"]
    # forking while only the forker itself holds locks is fine
    clean = LockMonitor()
    own = make_lock(clean, "own")
    with own:
        clean._record_fork_hazards(threading.get_ident())
    assert clean.hazards == []


def test_patching_scopes_to_tracked_paths_and_restores():
    saved = (threading.Lock, threading.RLock)
    monitor = LockMonitor()
    with checked_locks(monitor=monitor, track="/nowhere/"):
        # this file is not under /nowhere/: real, unwrapped locks
        lock = threading.Lock()
        assert not isinstance(lock, CheckedLock)
        with lock:
            pass
    assert (threading.Lock, threading.RLock) == saved
    assert monitor.acquires == 0


def test_checked_rlock_supports_reentry_via_patch():
    monitor = LockMonitor()
    with checked_locks(monitor=monitor, track="*"):
        lock = threading.RLock()
        assert isinstance(lock, CheckedLock)
        with lock:
            with lock:
                pass
    assert monitor.acquires == 2
    assert monitor.cycles() == []
