"""Round-trip tests for the compiled batched-plan wire format.

``encode_batched_plan`` / ``decode_batched_plan`` must reproduce the plan
exactly: a worker evaluating a decoded plan gets bit-identical outputs to
the centre evaluating the original, which is what lets the runtime ship
plans instead of recompiling on every agent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.serialization import (
    decode_batched_plan,
    decode_batched_plans,
    encode_batched_plan,
    encode_batched_plans,
)
from repro.neat.activations import ACTIVATIONS
from repro.neat.aggregations import AGGREGATIONS
from repro.neat.config import NEATConfig
from repro.neat.network import BatchedFeedForwardNetwork, compile_batched

from tests.conftest import make_evolved_genome


def rich_config() -> NEATConfig:
    return NEATConfig(
        num_inputs=4,
        num_outputs=3,
        pop_size=20,
        node_add_prob=0.4,
        conn_add_prob=0.5,
        activation_mutate_rate=0.3,
        aggregation_mutate_rate=0.3,
        allowed_activations=tuple(sorted(ACTIVATIONS)),
        allowed_aggregations=tuple(sorted(AGGREGATIONS)),
    )


def assert_plans_equal(original, decoded) -> None:
    assert decoded.input_keys == original.input_keys
    assert decoded.output_keys == original.output_keys
    assert decoded.total_slots == original.total_slots
    np.testing.assert_array_equal(
        decoded.output_slots, original.output_slots
    )
    assert decoded.n_layers == original.n_layers
    for got, want in zip(decoded.layers, original.layers):
        np.testing.assert_array_equal(got.node_slots, want.node_slots)
        np.testing.assert_array_equal(got.weights, want.weights)
        np.testing.assert_array_equal(got.bias, want.bias)
        np.testing.assert_array_equal(got.response, want.response)
        assert len(got.act_groups) == len(want.act_groups)
        for (got_name, got_rows), (want_name, want_rows) in zip(
            got.act_groups, want.act_groups
        ):
            assert got_name == want_name
            np.testing.assert_array_equal(got_rows, want_rows)
        assert len(got.generic_nodes) == len(want.generic_nodes)
        for got_node, want_node in zip(got.generic_nodes, want.generic_nodes):
            assert got_node[0] == want_node[0]
            assert got_node[1] == want_node[1]
            np.testing.assert_array_equal(got_node[2], want_node[2])
            np.testing.assert_array_equal(got_node[3], want_node[3])


class TestPlanRoundTrip:
    def test_structure_survives_round_trip(self):
        config = rich_config()
        for seed in range(8):
            plan = compile_batched(
                make_evolved_genome(config, seed=seed, mutations=45), config
            )
            assert_plans_equal(plan, decode_batched_plan(
                encode_batched_plan(plan)
            ))

    def test_decoded_plan_outputs_bit_identical(self):
        config = rich_config()
        for seed in range(8):
            genome = make_evolved_genome(config, seed=seed, mutations=45)
            plan = compile_batched(genome, config)
            decoded = decode_batched_plan(encode_batched_plan(plan))
            obs = np.random.default_rng(seed).uniform(
                -3, 3, size=(16, config.num_inputs)
            )
            original_out = BatchedFeedForwardNetwork(plan).activate_batch(obs)
            decoded_out = BatchedFeedForwardNetwork(decoded).activate_batch(
                obs
            )
            # bit-identical, not merely close: same arrays, same op order
            np.testing.assert_array_equal(decoded_out, original_out)

    def test_minimal_unconnected_genome(self, small_config, rng):
        from repro.neat.genome import Genome

        genome = Genome(0)
        genome.configure_new(
            small_config.evolve_with(initial_connection="none"), rng
        )
        plan = compile_batched(genome, small_config)
        decoded = decode_batched_plan(encode_batched_plan(plan))
        assert_plans_equal(plan, decoded)
        obs = np.ones((2, small_config.num_inputs))
        np.testing.assert_array_equal(
            BatchedFeedForwardNetwork(decoded).activate_batch(obs),
            BatchedFeedForwardNetwork(plan).activate_batch(obs),
        )


class TestPlanBatchRoundTrip:
    def test_batch_round_trip(self):
        config = rich_config()
        plans = [
            compile_batched(
                make_evolved_genome(config, seed=s, mutations=25, key=s),
                config,
            )
            for s in range(5)
        ]
        decoded = decode_batched_plans(encode_batched_plans(plans))
        assert len(decoded) == len(plans)
        for got, want in zip(decoded, plans):
            assert_plans_equal(want, got)

    def test_empty_batch(self):
        assert decode_batched_plans(encode_batched_plans([])) == []


class TestPlanStreamValidation:
    def test_truncated_stream_rejected(self):
        config = rich_config()
        plan = compile_batched(
            make_evolved_genome(config, seed=0, mutations=20), config
        )
        data = encode_batched_plan(plan)
        with pytest.raises(ValueError):
            decode_batched_plan(data[:4])

    def test_bad_magic_rejected(self):
        config = rich_config()
        plan = compile_batched(
            make_evolved_genome(config, seed=0, mutations=20), config
        )
        data = bytearray(encode_batched_plan(plan))
        data[0] ^= 0xFF
        with pytest.raises(ValueError):
            decode_batched_plan(bytes(data))

    def test_trailing_bytes_rejected(self):
        config = rich_config()
        plan = compile_batched(
            make_evolved_genome(config, seed=0, mutations=20), config
        )
        with pytest.raises(ValueError):
            decode_batched_plan(encode_batched_plan(plan) + b"\x00")
