"""Equivalence of the batched NumPy engine with the scalar interpreter.

The batched backend must be a pure performance change: for any genome and
any observation, ``BatchedFeedForwardNetwork`` matches
``FeedForwardNetwork.activate`` within 1e-9 and picks the same greedy
action. The property-style sweeps below run seeded random genomes (all
activations and aggregations enabled) against random observation batches.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.neat.activations import ACTIVATIONS, BATCHED_ACTIVATIONS
from repro.neat.aggregations import (
    AGGREGATIONS,
    BATCHED_AGGREGATIONS,
    EMPTY_AGGREGATION,
)
from repro.neat.config import NEATConfig
from repro.neat.evaluation import GenomeEvaluator
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome
from repro.neat.network import (
    BatchedFeedForwardNetwork,
    FeedForwardNetwork,
    activate_population,
    compile_batched,
)

from tests.conftest import make_evolved_genome

TOLERANCE = 1e-9


def rich_config(**overrides) -> NEATConfig:
    """A config whose mutations explore every activation/aggregation."""
    params = dict(
        num_inputs=5,
        num_outputs=3,
        pop_size=20,
        node_add_prob=0.4,
        conn_add_prob=0.5,
        conn_delete_prob=0.15,
        activation_mutate_rate=0.3,
        aggregation_mutate_rate=0.3,
        allowed_activations=tuple(sorted(ACTIVATIONS)),
        allowed_aggregations=tuple(sorted(AGGREGATIONS)),
    )
    params.update(overrides)
    return NEATConfig(**params)


def assert_equivalent(genome, config, observations) -> None:
    scalar = FeedForwardNetwork.create(genome, config)
    batched = BatchedFeedForwardNetwork.create(genome, config)
    batch_out = batched.activate_batch(observations)
    for i, row in enumerate(observations):
        scalar_out = scalar.activate(list(row))
        np.testing.assert_allclose(
            batch_out[i], scalar_out, rtol=0.0, atol=TOLERANCE
        )
        assert scalar.policy(list(row)) == batched.policy(list(row))


class TestRegistryParity:
    def test_every_activation_has_a_batched_twin(self):
        assert set(BATCHED_ACTIVATIONS) == set(ACTIVATIONS)

    def test_every_aggregation_has_a_batched_twin(self):
        assert set(BATCHED_AGGREGATIONS) == set(AGGREGATIONS)
        assert set(EMPTY_AGGREGATION) == set(AGGREGATIONS)

    def test_batched_activations_match_scalar_pointwise(self):
        zs = np.linspace(-75.0, 75.0, 301)
        for name, scalar_fn in ACTIVATIONS.items():
            batched_out = BATCHED_ACTIVATIONS[name](zs.copy())
            for z, got in zip(zs, batched_out):
                assert got == pytest.approx(
                    scalar_fn(float(z)), abs=TOLERANCE
                ), name

    def test_empty_aggregation_matches_scalar(self):
        for name, scalar_fn in AGGREGATIONS.items():
            assert EMPTY_AGGREGATION[name] == scalar_fn([])


class TestEquivalenceSweep:
    def test_random_evolved_genomes_match(self):
        config = rich_config()
        for seed in range(25):
            genome = make_evolved_genome(
                config, seed=seed, mutations=40, key=seed
            )
            obs = np.random.default_rng(seed).uniform(
                -3.0, 3.0, size=(16, config.num_inputs)
            )
            assert_equivalent(genome, config, obs)

    def test_fresh_genomes_match(self, small_config, rng):
        for key in range(10):
            genome = Genome(key)
            genome.configure_new(small_config, rng)
            obs = np.random.default_rng(key).normal(
                size=(8, small_config.num_inputs)
            )
            assert_equivalent(genome, small_config, obs)

    def test_every_aggregation_in_a_hand_built_genome(self):
        config = NEATConfig(num_inputs=2, num_outputs=1, pop_size=2)
        for aggregation in sorted(AGGREGATIONS):
            genome = Genome(0)
            genome.nodes[0] = NodeGene(0, 0.3, 1.0, "identity", "sum")
            genome.nodes[5] = NodeGene(5, -0.2, 1.0, "tanh", aggregation)
            genome.connections[(-1, 5)] = ConnectionGene((-1, 5), 0.7, True)
            genome.connections[(-2, 5)] = ConnectionGene((-2, 5), -1.3, True)
            genome.connections[(5, 0)] = ConnectionGene((5, 0), 2.0, True)
            obs = np.random.default_rng(7).uniform(-2, 2, size=(12, 2))
            assert_equivalent(genome, config, obs)

    def test_zero_fan_in_output_matches(self):
        # an output with no incoming links: sum gives 0, product gives 1
        config = NEATConfig(num_inputs=2, num_outputs=2, pop_size=2)
        genome = Genome(0)
        genome.nodes[0] = NodeGene(0, 0.5, 1.0, "identity", "sum")
        genome.nodes[1] = NodeGene(1, 0.5, 1.0, "identity", "product")
        obs = np.zeros((3, 2))
        assert_equivalent(genome, config, obs)
        batched = BatchedFeedForwardNetwork.create(genome, config)
        out = batched.activate_batch(obs)
        np.testing.assert_allclose(out[0], [0.5, 1.5])


class TestBatchedNetworkApi:
    def test_rejects_wrong_observation_width(self, small_config, genome):
        network = BatchedFeedForwardNetwork.create(genome, small_config)
        with pytest.raises(ValueError):
            network.activate_batch(np.zeros((4, small_config.num_inputs + 1)))
        with pytest.raises(ValueError):
            network.activate([0.0])

    def test_rejects_flat_observations(self, small_config, genome):
        network = BatchedFeedForwardNetwork.create(genome, small_config)
        with pytest.raises(ValueError):
            network.activate_batch(np.zeros(small_config.num_inputs))

    def test_cycle_detection_matches_scalar(self):
        config = NEATConfig(num_inputs=1, num_outputs=1, pop_size=2)
        genome = Genome(0)
        genome.nodes[0] = NodeGene(0, 0.0, 1.0, "tanh", "sum")
        genome.nodes[3] = NodeGene(3, 0.0, 1.0, "tanh", "sum")
        genome.nodes[4] = NodeGene(4, 0.0, 1.0, "tanh", "sum")
        genome.connections[(3, 4)] = ConnectionGene((3, 4), 1.0, True)
        genome.connections[(4, 3)] = ConnectionGene((4, 3), 1.0, True)
        genome.connections[(4, 0)] = ConnectionGene((4, 0), 1.0, True)
        with pytest.raises(ValueError):
            compile_batched(genome, config)

    def test_policy_batch_matches_scalar_policy(self):
        config = rich_config()
        genome = make_evolved_genome(config, seed=3, mutations=40)
        scalar = FeedForwardNetwork.create(genome, config)
        batched = BatchedFeedForwardNetwork.create(genome, config)
        obs = np.random.default_rng(3).uniform(
            -2, 2, size=(32, config.num_inputs)
        )
        actions = batched.policy_batch(obs)
        assert actions.shape == (32,)
        for i, row in enumerate(obs):
            assert int(actions[i]) == scalar.policy(list(row))

    def test_activate_population_shared_observations(self):
        config = rich_config()
        networks = [
            BatchedFeedForwardNetwork.create(
                make_evolved_genome(config, seed=s, mutations=20, key=s),
                config,
            )
            for s in range(4)
        ]
        obs = np.random.default_rng(0).normal(size=(6, config.num_inputs))
        outputs = activate_population(networks, obs)
        assert len(outputs) == 4
        for out, network in zip(outputs, networks):
            assert out.shape == (6, config.num_outputs)
            np.testing.assert_array_equal(out, network.activate_batch(obs))

    def test_plan_layers_respect_topology(self):
        config = rich_config()
        genome = make_evolved_genome(config, seed=11, mutations=50)
        plan = compile_batched(genome, config)
        seen = set(range(len(config.input_keys)))
        for layer in plan.layers:
            for row, slot in enumerate(layer.node_slots):
                sources = set(np.nonzero(layer.weights[row])[0].tolist())
                for _r, _agg, src_slots, _w in layer.generic_nodes:
                    if _r == row:
                        sources |= set(src_slots.tolist())
                assert sources <= seen, "layer reads a not-yet-written slot"
            seen |= set(int(s) for s in layer.node_slots)
        assert len(seen) == plan.total_slots


class TestEvaluatorBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            GenomeEvaluator("CartPole-v0", backend="tpu")

    def test_with_backend_round_trip(self):
        evaluator = GenomeEvaluator("CartPole-v0", episodes=2, seed=5)
        batched = evaluator.with_backend("batched")
        assert batched.backend == "batched"
        assert batched.episodes == 2 and batched.seed == 5
        assert evaluator.with_backend("scalar") is evaluator

    @pytest.mark.parametrize("env_id", ["CartPole-v0", "MountainCar-v0"])
    @pytest.mark.parametrize("episodes", [1, 3])
    def test_fitness_results_identical(self, env_id, episodes):
        config = NEATConfig.for_env(env_id)
        scalar_eval = GenomeEvaluator(
            env_id, episodes=episodes, seed=9, backend="scalar"
        )
        batched_eval = GenomeEvaluator(
            env_id, episodes=episodes, seed=9, backend="batched"
        )
        for seed in range(4):
            genome = make_evolved_genome(
                config, seed=seed, mutations=25, key=seed
            )
            for generation in (0, 3):
                scalar_result = scalar_eval.evaluate(
                    genome, config, generation
                )
                batched_result = batched_eval.evaluate(
                    genome, config, generation
                )
                assert scalar_result == batched_result

    def test_max_steps_cap_identical(self):
        config = NEATConfig.for_env("CartPole-v0")
        genome = make_evolved_genome(config, seed=2, mutations=15)
        for max_steps in (1, 7):
            scalar_result = GenomeEvaluator(
                "CartPole-v0", max_steps=max_steps, seed=4
            ).evaluate(genome, config)
            batched_result = GenomeEvaluator(
                "CartPole-v0",
                max_steps=max_steps,
                seed=4,
                backend="batched",
            ).evaluate(genome, config)
            assert scalar_result == batched_result

    def test_evaluate_many_matches_evaluate(self):
        config = NEATConfig.for_env("CartPole-v0")
        genomes = [
            make_evolved_genome(config, seed=s, mutations=15, key=s)
            for s in range(3)
        ]
        evaluator = GenomeEvaluator(
            "CartPole-v0", episodes=2, seed=1, backend="batched"
        )
        many = evaluator.evaluate_many(genomes, config, generation=1)
        for genome in genomes:
            assert many[genome.key] == evaluator.evaluate(
                genome, config, 1
            )
