"""Edge-case tests for the protocol engines."""

import pytest

from repro.core.messages import MessageType
from repro.core.protocols import CLAN_DCS, CLAN_DDA, CLAN_DDS, SerialNEAT
from repro.neat.config import NEATConfig

ENV = "CartPole-v0"


@pytest.fixture
def tiny_config():
    return NEATConfig.for_env(ENV, pop_size=8)


class TestDegenerateClusters:
    def test_dcs_single_agent_still_communicates(self, tiny_config):
        # 1 agent + centre: genomes still cross the network (the paper's
        # "1 pi" CLAN points pay this, unlike true serial)
        engine = CLAN_DCS(ENV, n_agents=1, config=tiny_config, seed=0)
        result = engine.run(max_generations=2, fitness_threshold=1e9)
        assert all(record.messages for record in result.records)

    def test_dcs_more_agents_than_genomes(self, tiny_config):
        engine = CLAN_DCS(ENV, n_agents=20, config=tiny_config, seed=0)
        result = engine.run(max_generations=2, fitness_threshold=1e9)
        record = result.records[0]
        active = [
            load for load in record.agent_loads
            if load.genomes_evaluated > 0
        ]
        assert len(active) == tiny_config.pop_size  # 8 of 20 agents busy

    def test_dds_single_agent(self, tiny_config):
        engine = CLAN_DDS(ENV, n_agents=1, config=tiny_config, seed=0)
        result = engine.run(max_generations=3, fitness_threshold=1e9)
        # with one agent every parent is resident: no parent shipments
        for record in result.records:
            parent_payloads = [
                m
                for m in record.messages
                if m.msg_type is MessageType.SENDING_PARENT_GENOMES
            ]
            assert not parent_payloads

    def test_dda_maximum_clans(self, tiny_config):
        # pop 8 -> at most 4 clans of 2
        engine = CLAN_DDA(ENV, n_agents=4, config=tiny_config, seed=0)
        assert engine.clan_sizes == [2, 2, 2, 2]
        result = engine.run(max_generations=3, fitness_threshold=1e9)
        assert result.records[-1].population_size == 8

    def test_dda_single_clan_is_synchronous_speciation(self, tiny_config):
        engine = CLAN_DDA(ENV, n_agents=1, config=tiny_config, seed=0)
        result = engine.run(max_generations=3, fitness_threshold=1e9)
        assert result.records[-1].population_size == tiny_config.pop_size


class TestInvalidInputs:
    def test_zero_agents_rejected(self, tiny_config):
        for cls in (CLAN_DCS, CLAN_DDS, CLAN_DDA):
            with pytest.raises(ValueError):
                cls(ENV, n_agents=0, config=tiny_config)

    def test_unknown_env_rejected(self):
        with pytest.raises(KeyError):
            SerialNEAT("Pong-v0")


class TestDDSResidencyInvariants:
    def test_residency_covers_population_every_generation(self, tiny_config):
        engine = CLAN_DDS(ENV, n_agents=3, config=tiny_config, seed=1)
        for _ in range(4):
            engine.run_generation()
            assert set(engine.residency) == set(engine.population.genomes)

    def test_residency_agents_in_range(self, tiny_config):
        engine = CLAN_DDS(ENV, n_agents=3, config=tiny_config, seed=1)
        engine.run_generation()
        assert set(engine.residency.values()) <= {0, 1, 2}

    def test_parent_shipments_shrink_with_fewer_agents(self):
        config = NEATConfig.for_env(ENV, pop_size=30)

        def parent_floats(n_agents):
            engine = CLAN_DDS(ENV, n_agents=n_agents, config=config, seed=1)
            result = engine.run(max_generations=3, fitness_threshold=1e9)
            return sum(
                m.n_floats
                for record in result.records
                for m in record.messages
                if m.msg_type is MessageType.SENDING_PARENT_GENOMES
            )

        # with more agents, parents are less likely to be resident
        assert parent_floats(6) >= parent_floats(2)


class TestSingleStepMode:
    def test_single_step_reduces_inference_cost(self, tiny_config):
        multi = SerialNEAT(ENV, config=tiny_config, seed=0)
        multi_result = multi.run(max_generations=2, fitness_threshold=1e9)
        single = SerialNEAT(
            ENV, config=tiny_config, seed=0, max_steps=1
        )
        single_result = single.run(max_generations=2, fitness_threshold=1e9)
        assert (
            single_result.records[0].total_inference_gene_ops()
            < multi_result.records[0].total_inference_gene_ops()
        )

    def test_single_step_env_steps_equal_population(self, tiny_config):
        engine = SerialNEAT(ENV, config=tiny_config, seed=0, max_steps=1)
        result = engine.run(max_generations=1, fitness_threshold=1e9)
        assert result.records[0].total_env_steps() == tiny_config.pop_size


class TestEpisodeAveraging:
    def test_multi_episode_fitness_differs(self, tiny_config):
        one = SerialNEAT(ENV, config=tiny_config, seed=0, episodes=1)
        three = SerialNEAT(ENV, config=tiny_config, seed=0, episodes=3)
        r1 = one.run(max_generations=1, fitness_threshold=1e9)
        r3 = three.run(max_generations=1, fitness_threshold=1e9)
        # averaging over 3 episodes triples evaluation steps
        assert (
            r3.records[0].total_env_steps()
            > r1.records[0].total_env_steps()
        )
