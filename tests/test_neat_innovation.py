"""Tests for innovation (historical marking) bookkeeping."""

import pytest

from repro.neat.innovation import InnovationTracker


class TestBasicAllocation:
    def test_same_split_same_id_within_generation(self):
        tracker = InnovationTracker(next_node_id=2)
        a = tracker.get_split_node_id((-1, 0))
        b = tracker.get_split_node_id((-1, 0))
        assert a == b

    def test_different_splits_different_ids(self):
        tracker = InnovationTracker(next_node_id=2)
        a = tracker.get_split_node_id((-1, 0))
        b = tracker.get_split_node_id((-2, 0))
        assert a != b

    def test_generation_boundary_resets_alignment(self):
        tracker = InnovationTracker(next_node_id=2)
        a = tracker.get_split_node_id((-1, 0))
        tracker.advance_generation()
        b = tracker.get_split_node_id((-1, 0))
        assert a != b

    def test_ids_start_at_next_node_id(self):
        tracker = InnovationTracker(next_node_id=5)
        assert tracker.get_split_node_id((-1, 0)) == 5

    def test_observe_node_id_advances(self):
        tracker = InnovationTracker(next_node_id=2)
        tracker.observe_node_id(10)
        assert tracker.get_split_node_id((-1, 0)) == 11

    def test_observe_smaller_id_is_noop(self):
        tracker = InnovationTracker(next_node_id=7)
        tracker.observe_node_id(3)
        assert tracker.next_node_id == 7


class TestAgentStriding:
    def test_disjoint_ranges_across_agents(self):
        trackers = [
            InnovationTracker(next_node_id=2, agent_offset=i, agent_stride=4)
            for i in range(4)
        ]
        ids = []
        for tracker in trackers:
            for split in ((-1, 0), (-2, 0), (-3, 0)):
                ids.append(tracker.get_split_node_id(split))
        assert len(ids) == len(set(ids))

    def test_ids_congruent_to_offset(self):
        tracker = InnovationTracker(
            next_node_id=2, agent_offset=3, agent_stride=5
        )
        for split in ((-1, 0), (-2, 0), (-1, 1)):
            assert tracker.get_split_node_id(split) % 5 == 3

    def test_observe_keeps_congruence(self):
        tracker = InnovationTracker(
            next_node_id=2, agent_offset=1, agent_stride=4
        )
        tracker.observe_node_id(11)
        next_id = tracker.get_split_node_id((-1, 0))
        assert next_id > 11
        assert next_id % 4 == 1

    def test_invalid_offset_rejected(self):
        with pytest.raises(ValueError):
            InnovationTracker(next_node_id=0, agent_offset=4, agent_stride=4)

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            InnovationTracker(next_node_id=0, agent_stride=0)
