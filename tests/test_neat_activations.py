"""Tests for activation and aggregation registries."""

import math

import pytest

from repro.neat.activations import (
    ACTIVATIONS,
    get_activation,
    relu_activation,
    sigmoid_activation,
    tanh_activation,
)
from repro.neat.aggregations import (
    AGGREGATIONS,
    get_aggregation,
    max_aggregation,
    mean_aggregation,
    min_aggregation,
    product_aggregation,
    sum_aggregation,
)


class TestActivations:
    def test_sigmoid_range(self):
        for z in (-100, -1, 0, 1, 100):
            assert 0.0 <= sigmoid_activation(z) <= 1.0

    def test_sigmoid_midpoint(self):
        assert sigmoid_activation(0.0) == pytest.approx(0.5)

    def test_sigmoid_monotone(self):
        values = [sigmoid_activation(z) for z in (-2, -1, 0, 1, 2)]
        assert values == sorted(values)

    def test_tanh_range_and_sign(self):
        assert -1.0 <= tanh_activation(-50) < 0
        assert 0 < tanh_activation(50) <= 1.0
        assert tanh_activation(0.0) == 0.0

    def test_relu(self):
        assert relu_activation(-3.0) == 0.0
        assert relu_activation(3.0) == 3.0

    def test_no_overflow_at_extremes(self):
        for name, fn in ACTIVATIONS.items():
            for z in (-1e9, -60, 60, 1e9):
                value = fn(z)
                assert math.isfinite(value), f"{name}({z}) not finite"

    def test_get_activation_known(self):
        assert get_activation("tanh") is tanh_activation

    def test_get_activation_unknown_lists_known(self):
        with pytest.raises(ValueError, match="sigmoid"):
            get_activation("swish")

    def test_registry_has_classic_neat_set(self):
        for name in ("sigmoid", "tanh", "relu", "identity", "sin", "gauss"):
            assert name in ACTIVATIONS


class TestAggregations:
    def test_sum(self):
        assert sum_aggregation([1.0, 2.0, 3.0]) == 6.0

    def test_sum_empty(self):
        assert sum_aggregation([]) == 0.0

    def test_product(self):
        assert product_aggregation([2.0, 3.0]) == 6.0

    def test_product_empty_is_identity(self):
        assert product_aggregation([]) == 1.0

    def test_max_min(self):
        assert max_aggregation([1.0, 3.0, 2.0]) == 3.0
        assert min_aggregation([1.0, 3.0, 2.0]) == 1.0

    def test_max_min_empty(self):
        assert max_aggregation([]) == 0.0
        assert min_aggregation([]) == 0.0

    def test_mean(self):
        assert mean_aggregation([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        assert mean_aggregation([]) == 0.0

    def test_get_aggregation_unknown(self):
        with pytest.raises(ValueError, match="sum"):
            get_aggregation("median")

    def test_registry_complete(self):
        assert set(AGGREGATIONS) == {"sum", "product", "max", "min", "mean"}
