"""Tests for genome visualisation helpers."""

import pytest

from repro.neat.config import NEATConfig
from repro.neat.visualize import (
    describe_genome,
    describe_layers,
    genome_to_dot,
    node_role,
)

from tests.conftest import make_evolved_genome


@pytest.fixture
def config():
    return NEATConfig(num_inputs=3, num_outputs=2)


@pytest.fixture
def genome(config):
    return make_evolved_genome(config, seed=4, mutations=40)


class TestNodeRole:
    def test_roles(self, config):
        assert node_role(-1, config) == "input"
        assert node_role(0, config) == "output"
        assert node_role(57, config) == "hidden"


class TestDot:
    def test_valid_digraph_shape(self, genome, config):
        dot = genome_to_dot(genome, config)
        assert dot.startswith("digraph genome {")
        assert dot.rstrip().endswith("}")

    def test_all_inputs_and_outputs_present(self, genome, config):
        dot = genome_to_dot(genome, config)
        for key in config.input_keys + config.output_keys:
            assert f'"{key}"' in dot

    def test_enabled_edges_rendered(self, genome, config):
        dot = genome_to_dot(genome, config)
        enabled = [
            gene.key
            for gene in genome.connections.values()
            if gene.enabled
        ]
        for in_node, out_node in enabled:
            assert f'"{in_node}" -> "{out_node}"' in dot

    def test_disabled_edges_excluded_by_default(self, genome, config):
        disabled = [
            gene.key
            for gene in genome.connections.values()
            if not gene.enabled
        ]
        if not disabled:
            pytest.skip("no disabled connections in this genome")
        dot = genome_to_dot(genome, config)
        for in_node, out_node in disabled:
            assert f'"{in_node}" -> "{out_node}"' not in dot

    def test_disabled_edges_dashed_when_included(self, genome, config):
        dot = genome_to_dot(genome, config, include_disabled=True)
        if any(not g.enabled for g in genome.connections.values()):
            assert "dashed" in dot

    def test_custom_name(self, genome, config):
        assert genome_to_dot(genome, config, name="champ").startswith(
            "digraph champ"
        )


class TestDescribe:
    def test_summary_header(self, genome, config):
        text = describe_genome(genome, config)
        assert f"Genome {genome.key}" in text
        assert "fitness" in text

    def test_lists_every_node_and_connection(self, genome, config):
        text = describe_genome(genome, config)
        for key in genome.nodes:
            assert str(key) in text
        assert text.count("->") >= len(genome.connections)

    def test_layers_start_at_inputs(self, genome, config):
        text = describe_layers(genome, config)
        assert text.splitlines()[0].startswith("level 0 (inputs)")

    def test_layers_cover_outputs(self, genome, config):
        text = describe_layers(genome, config)
        assert "0" in text and "1" in text
