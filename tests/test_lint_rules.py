"""Fixture-snippet suites for the static rules of ``repro lint``.

Each rule gets true-positive snippets, the tricky near-miss patterns it
must NOT flag (the false-positive cases that were tuned against the real
tree), and the suppression grammar is exercised end to end. Snippets are
linted under virtual paths so the per-module scoping (wall-clock bans,
numeric modules) can be driven from the test.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import (
    LintConfig,
    RULES,
    UNSUPPRESSABLE,
    lint_source,
)

pytestmark = pytest.mark.lock_check

NEAT_PATH = "src/repro/neat/fake_module.py"
SERVE_PATH = "src/repro/serve/fake_module.py"
RNG_PATH = "src/repro/utils/rng.py"


def codes(text: str, path: str = SERVE_PATH, **config_kwargs):
    result = lint_source(
        textwrap.dedent(text), path, LintConfig(**config_kwargs)
    )
    return [f.code for f in result.findings]


# ---------------------------------------------------------------------------
# RPR001: unseeded global random
# ---------------------------------------------------------------------------


def test_rpr001_module_level_calls():
    snippet = """
    import random
    x = random.random()
    random.seed(7)
    random.shuffle([1, 2])
    """
    assert codes(snippet) == ["RPR001", "RPR001", "RPR001"]


def test_rpr001_from_import_and_aliases():
    snippet = """
    import random as rnd
    from random import choice
    a = rnd.randint(0, 3)
    b = choice([1, 2])
    """
    assert codes(snippet) == ["RPR001", "RPR001"]


def test_rpr001_unseeded_and_system_random():
    snippet = """
    import random
    a = random.Random()
    b = random.SystemRandom()
    """
    assert codes(snippet) == ["RPR001", "RPR001"]


def test_rpr001_seeded_instances_are_clean():
    snippet = """
    import random
    rng = random.Random(1234)
    value = rng.random()
    rng.shuffle([1, 2])
    """
    assert codes(snippet) == []


def test_rpr001_unrelated_module_named_random_is_clean():
    # a local object bound to a different import must not match
    snippet = """
    import secrets as random_like
    from mypkg import random  # not the stdlib module
    value = random.random()
    """
    assert codes(snippet) == []


# ---------------------------------------------------------------------------
# RPR002: numpy global RNG / stray Generator construction
# ---------------------------------------------------------------------------


def test_rpr002_global_state_calls():
    snippet = """
    import numpy as np
    np.random.seed(0)
    x = np.random.rand(3)
    y = np.random.normal(size=4)
    """
    assert codes(snippet) == ["RPR002", "RPR002", "RPR002"]


def test_rpr002_default_rng_outside_rng_module():
    snippet = """
    import numpy as np
    from numpy.random import default_rng
    g1 = np.random.default_rng(5)
    g2 = default_rng(5)
    """
    assert codes(snippet) == ["RPR002", "RPR002"]


def test_rpr002_default_rng_allowed_in_rng_module():
    snippet = """
    import numpy as np
    def spawn(seed):
        return np.random.default_rng(seed)
    """
    assert codes(snippet, path=RNG_PATH) == []


def test_rpr002_generator_method_draws_are_clean():
    # draws from an instance are fine anywhere; only construction and
    # global-state use are policed
    snippet = """
    def roll(gen):
        return gen.normal(size=3)
    """
    assert codes(snippet) == []


# ---------------------------------------------------------------------------
# RPR003: wall clock in simulated modules
# ---------------------------------------------------------------------------


def test_rpr003_wall_clock_in_neat_module():
    snippet = """
    import time
    from time import perf_counter
    import datetime

    def step():
        a = time.time()
        b = perf_counter()
        c = time.monotonic()
        d = datetime.datetime.now()
        return a, b, c, d
    """
    assert codes(snippet, path=NEAT_PATH) == ["RPR003"] * 4


def test_rpr003_wall_clock_banned_in_serving():
    # serving reads real time only through the injectable obs.clock
    # shim, so a direct time.* read there is a finding
    snippet = """
    import time

    def measure():
        return time.perf_counter()
    """
    assert codes(snippet, path=SERVE_PATH) == ["RPR003"]


def test_rpr003_clock_shim_is_the_exempt_constructor_site():
    snippet = """
    import time

    def perf():
        return time.perf_counter()
    """
    assert codes(snippet, path="src/repro/obs/clock.py") == []


def test_rpr003_sleep_is_not_a_clock_read():
    # time.sleep in sync code is a liveness question, not a determinism
    # one — RPR003 must not fire on it even in banned modules
    snippet = """
    import time

    def wait():
        time.sleep(0.01)
    """
    assert codes(snippet, path=NEAT_PATH) == []


# ---------------------------------------------------------------------------
# RPR004: unordered set iteration
# ---------------------------------------------------------------------------


def test_rpr004_direct_and_named_sets():
    snippet = """
    def run(items):
        seen = set(items)
        for value in seen:
            print(value)
        return [x for x in {1, 2, 3}]
    """
    assert codes(snippet) == ["RPR004", "RPR004"]


def test_rpr004_conversion_sinks():
    snippet = """
    def run():
        pending = {1, 2}
        ordered = list(pending)
        pairs = tuple({3, 4})
        return ordered, pairs
    """
    assert codes(snippet) == ["RPR004", "RPR004"]


def test_rpr004_annotated_and_operator_sets():
    snippet = """
    def run(a, b):
        union: set[int] = a | b
        combined = {1} | {2}
        for x in combined:
            pass
        for y in union:
            pass
    """
    assert codes(snippet) == ["RPR004", "RPR004"]


def test_rpr004_same_module_set_returning_function():
    snippet = """
    def required_for_output(keys) -> set[int]:
        return set(keys)

    def build(keys):
        required = required_for_output(keys)
        return {key: [] for key in required}
    """
    assert codes(snippet) == ["RPR004"]


def test_rpr004_sorted_and_membership_are_clean():
    snippet = """
    def run(items):
        seen = set(items)
        for value in sorted(seen):
            print(value)
        total = sum(1 for _ in sorted({1, 2}))
        if 3 in seen:
            total += len(seen)
        return min(seen), max(seen), total
    """
    assert codes(snippet) == []


def test_rpr004_rebound_name_is_forgotten():
    # a name reassigned to a list after holding a set must not flag
    snippet = """
    def run(items):
        values = set(items)
        values = sorted(values)
        for v in values:
            print(v)
    """
    assert codes(snippet) == []


def test_rpr004_dict_iteration_is_clean():
    # dicts preserve insertion order; only set-typed iterables flag
    snippet = """
    def run(mapping):
        for key in mapping:
            print(key)
        return list(mapping.values())
    """
    assert codes(snippet) == []


# ---------------------------------------------------------------------------
# RPR005: float equality in numeric modules
# ---------------------------------------------------------------------------


def test_rpr005_float_literal_comparison():
    snippet = """
    def check(x):
        if x == 0.5:
            return True
        return x != -1.5
    """
    assert codes(snippet, path=NEAT_PATH) == ["RPR005", "RPR005"]


def test_rpr005_scoped_to_numeric_modules():
    snippet = """
    def check(x):
        return x == 0.5
    """
    assert codes(snippet, path=SERVE_PATH) == []


def test_rpr005_int_and_ordering_comparisons_clean():
    snippet = """
    def check(x):
        return x == 1 or x >= 0.5 or x is None
    """
    assert codes(snippet, path=NEAT_PATH) == []


# ---------------------------------------------------------------------------
# RPR101: blocking calls in async functions
# ---------------------------------------------------------------------------


def test_rpr101_blocking_calls():
    snippet = """
    import time
    import subprocess

    async def handler(conn):
        time.sleep(0.1)
        subprocess.run(["ls"])
        subprocess.Popen(["ls"])
        msg = conn.recv()
        return msg
    """
    assert codes(snippet) == ["RPR101"] * 4


def test_rpr101_sync_def_nested_in_async_is_clean():
    # the fleet's reader-thread pattern: a sync closure defined inside
    # an async function runs on its own thread and may block
    snippet = """
    import threading

    async def serve(conn):
        def read_pipe():
            while True:
                msg = conn.recv()
                if msg is None:
                    return
        reader = threading.Thread(target=read_pipe)
        reader.start()
    """
    assert codes(snippet) == []


def test_rpr101_awaited_equivalents_clean():
    snippet = """
    import asyncio

    async def handler():
        await asyncio.sleep(0.1)
        proc = await asyncio.create_subprocess_exec("ls")
        return proc
    """
    assert codes(snippet) == []


def test_rpr101_str_join_is_not_blocking():
    snippet = """
    async def render(parts):
        return ", ".join(parts)
    """
    assert codes(snippet) == []


# ---------------------------------------------------------------------------
# RPR102: thread started before fork
# ---------------------------------------------------------------------------


def test_rpr102_thread_then_process():
    snippet = """
    import threading
    import multiprocessing as mp

    def start():
        t = threading.Thread(target=print)
        t.start()
        p = mp.Process(target=print)
        p.start()
    """
    assert codes(snippet) == ["RPR102"]


def test_rpr102_process_first_is_clean():
    snippet = """
    import threading
    import multiprocessing as mp

    def start():
        p = mp.Process(target=print)
        p.start()
        t = threading.Thread(target=print)
        t.start()
    """
    assert codes(snippet) == []


def test_rpr102_thread_start_alone_is_clean():
    snippet = """
    import threading

    def start():
        t = threading.Thread(target=print)
        t.start()
    """
    assert codes(snippet) == []


def test_rpr102_scoped_per_function():
    # a thread started in one function does not taint another
    snippet = """
    import threading
    import multiprocessing as mp

    def start_reader():
        threading.Thread(target=print).start()

    def start_workers():
        mp.Process(target=print).start()
    """
    assert codes(snippet) == []


# ---------------------------------------------------------------------------
# RPR103: guarded-by discipline
# ---------------------------------------------------------------------------

GUARDED_CLASS = """
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock
        #: count of installs — guarded-by: _lock
        self._count = 0

    def locked_write(self):
        with self._lock:
            self._items.append(1)
            self._count += 1

    def unlocked_write(self):
        self._items.append(1)

    def unlocked_assign(self):
        self._count = 5

    # holds-lock: _lock
    def caller_holds(self):
        self._count += 1

    def read_only(self):
        return len(self._items)
"""


def test_rpr103_flags_only_unguarded_writes():
    result = lint_source(GUARDED_CLASS, SERVE_PATH)
    flagged = [(f.code, f.line) for f in result.findings]
    assert [code for code, _ in flagged] == ["RPR103", "RPR103"]
    text = GUARDED_CLASS.splitlines()
    assert "unlocked_write" in text[flagged[0][1] - 2]
    assert "unlocked_assign" in text[flagged[1][1] - 2]


def test_rpr103_subscript_and_del_writes():
    snippet = """
    import threading

    class Table:
        def __init__(self):
            self._lock = threading.Lock()
            self._slots = {}  # guarded-by: _lock

        def bad_set(self, k, v):
            self._slots[k] = v

        def bad_del(self, k):
            del self._slots[k]

        def good(self, k, v):
            with self._lock:
                self._slots[k] = v
    """
    assert codes(snippet) == ["RPR103", "RPR103"]


def test_rpr103_unannotated_class_is_clean():
    snippet = """
    import threading

    class Plain:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def write(self):
            self._items.append(1)
    """
    assert codes(snippet) == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


def test_suppression_with_reason_silences():
    snippet = """
    import random
    x = random.random()  # repro-lint: disable=RPR001 -- demo fixture
    """
    result = lint_source(textwrap.dedent(snippet), SERVE_PATH)
    assert result.findings == []
    assert len(result.suppressed) == 1
    suppression, finding = result.suppressed[0]
    assert finding.code == "RPR001"
    assert suppression.reason == "demo fixture"


def test_suppression_multiple_codes():
    snippet = """
    import random
    import time

    async def demo():
        time.sleep(random.random())  \
# repro-lint: disable=RPR001,RPR101 -- jittered stall injection
    """
    result = lint_source(textwrap.dedent(snippet), SERVE_PATH)
    assert result.findings == []
    assert {f.code for _, f in result.suppressed} == {
        "RPR001",
        "RPR101",
    }


def test_suppression_on_comment_line_above():
    snippet = """
    import random
    # repro-lint: disable=RPR001 -- seeded by the harness
    x = random.random()
    """
    result = lint_source(textwrap.dedent(snippet), SERVE_PATH)
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_suppression_wrong_code_does_not_silence():
    snippet = """
    import random
    x = random.random()  # repro-lint: disable=RPR004 -- wrong code
    """
    assert codes(snippet) == ["RPR001"]


def test_suppression_without_reason_is_rpr900():
    snippet = """
    import random
    x = random.random()  # repro-lint: disable=RPR001
    """
    found = codes(snippet)
    assert "RPR900" in found and "RPR001" in found


def test_suppression_unknown_code_is_rpr900():
    snippet = """
    x = 1  # repro-lint: disable=RPR999 -- nonsense
    """
    assert codes(snippet) == ["RPR900"]


def test_rpr900_cannot_be_suppressed():
    snippet = """
    x = 1  # repro-lint: disable=RPR900 -- silencing the checker
    """
    assert codes(snippet) == ["RPR900"]


def test_unparsable_file_is_rpr901():
    result = lint_source("def broken(:\n", SERVE_PATH)
    assert [f.code for f in result.findings] == ["RPR901"]


def test_select_scopes_rules_but_not_rpr900():
    snippet = """
    import random
    x = random.random()
    y = 2  # repro-lint: disable=RPR001
    """
    found = codes(snippet, select=("RPR004",))
    assert found == ["RPR900"]


def test_catalogue_is_complete():
    assert set(UNSUPPRESSABLE) <= set(RULES)
    for rule in RULES.values():
        assert rule.code.startswith("RPR")
        assert rule.summary and rule.rationale
