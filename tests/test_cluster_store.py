"""CheckpointStore: atomic writes, checksums, manifest discipline."""

import json

import pytest

from repro.cluster.store import (
    MANIFEST_VERSION,
    CheckpointCorrupt,
    CheckpointStore,
)

pytestmark = pytest.mark.lock_check


class TestDocuments:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.write("state", {"generation": 3, "values": [1, 2, 3]})
        assert store.exists("state")
        loaded = store.read("state")
        assert loaded["generation"] == 3
        assert loaded["values"] == [1, 2, 3]

    def test_creates_root_directory(self, tmp_path):
        root = tmp_path / "a" / "b"
        CheckpointStore(root)
        assert root.is_dir()

    def test_rejects_path_separators_in_names(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.path("../escape")
        with pytest.raises(ValueError):
            store.path("nested\\name")

    def test_bit_flip_is_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("state", {"payload": "x" * 64})
        path = store.path("state")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x04
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorrupt):
            store.read("state")

    def test_missing_document_is_corrupt_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointCorrupt):
            store.read("never-written")

    def test_overwrite_leaves_no_tmp_file(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("state", {"generation": 1})
        store.write("state", {"generation": 2})
        assert store.read("state")["generation"] == 2
        leftovers = [
            p for p in store.root.iterdir() if p.suffix != ".json"
        ]
        assert leftovers == []


class TestManifest:
    def test_roundtrip_with_kind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert not store.has_manifest()
        store.write_manifest("learn", {"env_id": "CartPole-v0", "seed": 7})
        assert store.has_manifest()
        manifest = store.read_manifest("learn")
        assert manifest["env_id"] == "CartPole-v0"
        assert manifest["seed"] == 7
        assert manifest["manifest_version"] == MANIFEST_VERSION

    def test_missing_manifest_raises_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointCorrupt, match="nothing"):
            store.read_manifest()

    def test_kind_mismatch_raises_value_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_manifest("clan-run", {"seed": 0})
        with pytest.raises(ValueError, match="expected 'learn'"):
            store.read_manifest("learn")

    def test_unsupported_version_raises_value_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_manifest("learn", {"seed": 0})
        doc = json.loads(store.path("manifest").read_text())
        doc["manifest_version"] = 99
        # recompute the checksum so version checking (not corruption
        # detection) is what trips
        from repro.neat.checkpoint import atomic_write_json

        doc.pop("crc32", None)
        atomic_write_json(store.path("manifest"), doc)
        with pytest.raises(ValueError, match="manifest version"):
            store.read_manifest()


class TestClanCheckpoints:
    def test_put_get_and_ids(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put_clan(1, {"completed_generation": 4})
        store.put_clan(0, {"completed_generation": 2})
        assert store.clan_ids() == [0, 1]
        assert store.get_clan(1)["completed_generation"] == 4

    def test_latest_write_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put_clan(0, {"completed_generation": 1})
        store.put_clan(0, {"completed_generation": 2})
        assert store.get_clan(0)["completed_generation"] == 2
