"""Property-based tests for partitioning and spawn-count invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import assign_genomes, contiguous_blocks, round_robin
from repro.neat.reproduction import compute_spawn_counts


class TestPartitionProperties:
    @given(
        st.lists(st.integers(), max_size=200),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_robin_partitions(self, items, n):
        shards = round_robin(items, n)
        assert len(shards) == n
        flattened = [x for shard in shards for x in shard]
        assert sorted(flattened) == sorted(items)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    @given(
        st.lists(st.integers(), max_size=200),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_contiguous_blocks_partition(self, items, n):
        blocks = contiguous_blocks(items, n)
        assert len(blocks) == n
        assert [x for block in blocks for x in block] == items
        sizes = [len(b) for b in blocks]
        assert max(sizes) - min(sizes) <= 1

    @given(
        st.sets(st.integers(min_value=0, max_value=10_000), max_size=100),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_assignment_covers_all_keys(self, keys, n):
        mapping = assign_genomes(keys, n)
        assert set(mapping) == keys
        assert all(0 <= agent < n for agent in mapping.values())


class TestSpawnCountProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=50),
            st.floats(min_value=0.0, max_value=1.0),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=30, max_value=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_spawn_counts_sum_to_population(self, adjusted, pop_size):
        previous = {sid: 10 for sid in adjusted}
        min_size = 2
        if pop_size < min_size * len(adjusted):
            return  # infeasible request: covered by the overshoot test
        counts = compute_spawn_counts(adjusted, previous, pop_size, min_size)
        assert sum(counts.values()) == pop_size
        assert all(count >= min_size for count in counts.values())

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=30, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_fitness_near_uniform_spawns(self, n_species, pop_size):
        adjusted = {sid: 0.5 for sid in range(1, n_species + 1)}
        previous = {sid: pop_size // n_species for sid in adjusted}
        counts = compute_spawn_counts(adjusted, previous, pop_size, 2)
        sizes = sorted(counts.values())
        assert sizes[-1] - sizes[0] <= max(3, pop_size // n_species)
