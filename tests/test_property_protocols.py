"""Property-based tests over protocol engine invariants.

Hypothesis drives cluster sizes and seeds; every drawn configuration must
preserve CLAN's structural invariants (conservation of population, exact
work partitioning, message-accounting consistency).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import CENTER, MessageType
from repro.core.protocols import CLAN_DCS, CLAN_DDA, CLAN_DDS
from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult

POP = 20
_CONFIG = NEATConfig.for_env("CartPole-v0", pop_size=POP)


class _SyntheticEvaluator:
    """Deterministic arithmetic fitness: fast enough for hypothesis."""

    def evaluate(self, genome, config, generation):
        fitness = float((genome.gene_count() * 13 + generation * 7) % 101)
        return FitnessResult(genome.key, fitness, 3, fitness, False)


def engine_for(protocol_class, n_agents, seed):
    return protocol_class(
        "CartPole-v0",
        n_agents=n_agents,
        config=_CONFIG,
        seed=seed,
        evaluator=_SyntheticEvaluator(),
    )


agents = st.integers(min_value=1, max_value=10)
seeds = st.integers(min_value=0, max_value=10_000)


class TestProtocolInvariants:
    @given(st.sampled_from([CLAN_DCS, CLAN_DDS]), agents, seeds)
    @settings(max_examples=25, deadline=None)
    def test_population_conserved(self, protocol_class, n_agents, seed):
        engine = engine_for(protocol_class, n_agents, seed)
        result = engine.run(max_generations=2, fitness_threshold=1e9)
        for record in result.records:
            assert record.population_size == POP

    @given(agents, seeds)
    @settings(max_examples=25, deadline=None)
    def test_dcs_work_partition_exact(self, n_agents, seed):
        engine = engine_for(CLAN_DCS, n_agents, seed)
        result = engine.run(max_generations=2, fitness_threshold=1e9)
        for record in result.records:
            evaluated = sum(
                load.genomes_evaluated for load in record.agent_loads
            )
            assert evaluated == POP

    @given(st.integers(min_value=1, max_value=POP // 2), seeds)
    @settings(max_examples=25, deadline=None)
    def test_dda_clans_partition_population(self, n_clans, seed):
        engine = engine_for(CLAN_DDA, n_clans, seed)
        engine.run(max_generations=2, fitness_threshold=1e9)
        keys = [key for clan in engine._clans for key in clan.members]
        assert len(keys) == len(set(keys)) == POP

    @given(st.sampled_from([CLAN_DCS, CLAN_DDS, CLAN_DDA]), agents, seeds)
    @settings(max_examples=25, deadline=None)
    def test_message_endpoints_valid(self, protocol_class, n_agents, seed):
        if protocol_class is CLAN_DDA and POP < 2 * n_agents:
            return
        engine = engine_for(protocol_class, n_agents, seed)
        result = engine.run(max_generations=2, fitness_threshold=1e9)
        for record in result.records:
            for message in record.messages:
                endpoints = {message.src, message.dst}
                assert CENTER in endpoints
                other = (endpoints - {CENTER}).pop()
                assert 0 <= other < n_agents

    @given(agents, seeds)
    @settings(max_examples=20, deadline=None)
    def test_dda_steady_state_sends_no_genes(self, n_agents, seed):
        if POP < 2 * n_agents:
            return
        engine = engine_for(CLAN_DDA, n_agents, seed)
        result = engine.run(max_generations=3, fitness_threshold=1e9)
        for record in result.records[1:]:
            assert all(m.n_genes == 0 for m in record.messages)

    @given(agents, seeds)
    @settings(max_examples=20, deadline=None)
    def test_fitness_messages_cover_population(self, n_agents, seed):
        engine = engine_for(CLAN_DCS, n_agents, seed)
        result = engine.run(max_generations=1, fitness_threshold=1e9)
        record = result.records[0]
        reported = sum(
            m.n_units
            for m in record.messages
            if m.msg_type is MessageType.SENDING_FITNESS
        )
        assert reported == POP
