"""Tests for the physically parallel runtimes (processes)."""

import pytest

from repro.cluster.runtime import (
    DistributedClanRuntime,
    ParallelInferenceRuntime,
)
from repro.core.protocols import CLAN_DDA, SerialNEAT
from repro.neat.config import NEATConfig


@pytest.fixture(scope="module")
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=24)


class TestParallelInference:
    def test_reproduces_serial_trajectory(self, config):
        serial = SerialNEAT("CartPole-v0", config=config, seed=8)
        logical = serial.run(max_generations=3, fitness_threshold=1e9)
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=3, config=config, seed=8
        ) as runtime:
            real = runtime.run(max_generations=3, fitness_threshold=1e9)
        assert real.best_fitness_per_generation == [
            record.best_fitness for record in logical.records
        ]

    def test_stops_on_threshold(self, config):
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run(max_generations=20, fitness_threshold=30.0)
        assert stats.converged
        assert stats.generations < 20

    def test_wall_time_measured(self, config):
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run(max_generations=2, fitness_threshold=1e9)
        assert stats.wall_time_s > 0
        assert len(stats.per_generation_s) == 2

    def test_best_genome_available(self, config):
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=2, config=config, seed=8
        ) as runtime:
            runtime.run(max_generations=2, fitness_threshold=1e9)
            assert runtime.best_genome is not None


class TestDistributedClans:
    def test_reproduces_logical_dda(self, config):
        logical_engine = CLAN_DDA(
            "CartPole-v0", n_agents=3, config=config, seed=8
        )
        logical = logical_engine.run(max_generations=3, fitness_threshold=1e9)
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=3, config=config, seed=8
        ) as runtime:
            real = runtime.run(max_generations=3, fitness_threshold=1e9)
            champion = runtime.best_genome()
        assert real.best_fitness_per_generation == [
            record.best_fitness for record in logical.records
        ]
        assert champion.fitness == logical_engine.best_fitness

    def test_rejects_too_many_clans(self, config):
        with pytest.raises(ValueError):
            DistributedClanRuntime(
                "CartPole-v0", n_clans=config.pop_size, config=config
            )

    def test_convergence_detection(self, config):
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run(max_generations=20, fitness_threshold=30.0)
        assert stats.converged


class TestBarrierFreeClans:
    def test_run_async_converges(self, config):
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=3, config=config, seed=8
        ) as runtime:
            stats = runtime.run_async(
                max_generations=20, fitness_threshold=30.0
            )
            champion = runtime.best_genome()
        assert stats.converged
        assert stats.best_fitness >= 30.0
        assert champion.fitness >= 30.0

    def test_per_clan_generation_counts(self, config):
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=3, config=config, seed=8
        ) as runtime:
            stats = runtime.run_async(
                max_generations=2, fitness_threshold=1e9
            )
        assert len(stats.per_clan_generations) == 3
        # budget-bounded run: every clan free-runs its full budget
        assert stats.per_clan_generations == [2, 2, 2]
        assert stats.generations == 2
        # one best-so-far sample per received report
        assert len(stats.best_fitness_per_generation) == 6
        assert stats.best_fitness_per_generation == sorted(
            stats.best_fitness_per_generation
        )

    def test_reaches_same_best_as_barrier_run(self, config):
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=3, config=config, seed=8
        ) as barrier_runtime:
            barrier = barrier_runtime.run(
                max_generations=3, fitness_threshold=1e9
            )
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=3, config=config, seed=8
        ) as async_runtime:
            asynchronous = async_runtime.run_async(
                max_generations=3, fitness_threshold=1e9
            )
        # same clans, same streams: the same best fitness must be found
        assert asynchronous.best_fitness == barrier.best_fitness

    def test_shutdown_drains_free_running_workers(self, config):
        # regression: shutdown during an abandoned free-run used to read
        # a queued progress message as the stop ack, close the pipe under
        # the worker, and hang up to 5s per worker on the join
        import time

        runtime = DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        )
        payload = {
            "start_generation": 0,
            "max_generations": 50,
            "threshold": 1e18,
        }
        for worker in range(2):
            runtime.pool.send(worker, "clan_run", payload)
        time.sleep(0.2)  # let undrained progress messages queue up
        start = time.perf_counter()
        runtime.shutdown()
        assert time.perf_counter() - start < 5.0
        assert all(not p.is_alive() for p in runtime.pool._procs)

    def test_halts_stragglers_after_convergence(self, config):
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run_async(
                max_generations=50, fitness_threshold=30.0
            )
        assert stats.converged
        # nobody runs the full budget once a clan has converged
        assert all(g < 50 for g in stats.per_clan_generations)


class TestChampionStreaming:
    """run_async emits champion-changed events instead of only tracking
    best-so-far internally (serving hook + CLI summary both consume it)."""

    def test_events_fire_with_decoded_genomes(self, config):
        events = []
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run_async(
                max_generations=4,
                fitness_threshold=1e9,
                on_champion=events.append,
            )
        assert len(events) >= 1
        for event in events:
            assert event.genome.key == event.genome_key
            assert event.genome.fitness == event.fitness
            assert 0 <= event.clan_id < 2
            assert event.generation >= 0
        # the callback saw exactly what the stats collected
        assert stats.champions == events

    def test_event_fitness_is_strictly_increasing_and_global(
        self, config
    ):
        """Clans stream local improvements; the centre must dedupe to
        global ones, ending at the run's best fitness."""
        events = []
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=3, config=config, seed=8
        ) as runtime:
            stats = runtime.run_async(
                max_generations=5,
                fitness_threshold=1e9,
                on_champion=events.append,
            )
        fitnesses = [event.fitness for event in events]
        assert fitnesses == sorted(fitnesses)
        assert len(set(fitnesses)) == len(fitnesses)
        assert fitnesses[-1] == stats.best_fitness

    def test_no_streaming_without_callback(self, config):
        """Default runs ship no genome traffic and collect no events —
        the wire behaviour older callers rely on."""
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run_async(
                max_generations=2, fitness_threshold=1e9
            )
        assert stats.champions == []

    def test_external_stop_halts_clans_early(self, config):
        import threading

        stop = threading.Event()
        events = []

        def stop_after_first_champion(event):
            events.append(event)
            stop.set()

        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run_async(
                max_generations=10_000,
                fitness_threshold=1e9,
                on_champion=stop_after_first_champion,
                stop=stop,
            )
        assert events
        assert stats.generations < 10_000
