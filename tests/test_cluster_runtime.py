"""Tests for the physically parallel runtimes (processes)."""

import pytest

from repro.cluster.runtime import (
    DistributedClanRuntime,
    ParallelInferenceRuntime,
)
from repro.core.protocols import CLAN_DDA, SerialNEAT
from repro.neat.config import NEATConfig


@pytest.fixture(scope="module")
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=24)


class TestParallelInference:
    def test_reproduces_serial_trajectory(self, config):
        serial = SerialNEAT("CartPole-v0", config=config, seed=8)
        logical = serial.run(max_generations=3, fitness_threshold=1e9)
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=3, config=config, seed=8
        ) as runtime:
            real = runtime.run(max_generations=3, fitness_threshold=1e9)
        assert real.best_fitness_per_generation == [
            record.best_fitness for record in logical.records
        ]

    def test_stops_on_threshold(self, config):
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run(max_generations=20, fitness_threshold=30.0)
        assert stats.converged
        assert stats.generations < 20

    def test_wall_time_measured(self, config):
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run(max_generations=2, fitness_threshold=1e9)
        assert stats.wall_time_s > 0
        assert len(stats.per_generation_s) == 2

    def test_best_genome_available(self, config):
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=2, config=config, seed=8
        ) as runtime:
            runtime.run(max_generations=2, fitness_threshold=1e9)
            assert runtime.best_genome is not None


class TestDistributedClans:
    def test_reproduces_logical_dda(self, config):
        logical_engine = CLAN_DDA(
            "CartPole-v0", n_agents=3, config=config, seed=8
        )
        logical = logical_engine.run(max_generations=3, fitness_threshold=1e9)
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=3, config=config, seed=8
        ) as runtime:
            real = runtime.run(max_generations=3, fitness_threshold=1e9)
            champion = runtime.best_genome()
        assert real.best_fitness_per_generation == [
            record.best_fitness for record in logical.records
        ]
        assert champion.fitness == logical_engine.best_fitness

    def test_rejects_too_many_clans(self, config):
        with pytest.raises(ValueError):
            DistributedClanRuntime(
                "CartPole-v0", n_clans=config.pop_size, config=config
            )

    def test_convergence_detection(self, config):
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run(max_generations=20, fitness_threshold=30.0)
        assert stats.converged
