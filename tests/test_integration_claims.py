"""Integration: the paper's headline quantitative claims, at reduced scale.

Each test reruns one evaluation-section claim with small populations and
asserts the *shape* (who wins, orderings, monotonicity) rather than the
paper's absolute numbers; EXPERIMENTS.md records the full-scale values.
"""

import pytest

from repro.analysis.cache import RunCache
from repro.analysis.figures import (
    fig8_share,
    fig9_extrapolation,
    scaling_series,
)
from repro.cluster.analytic import ClusterSpec, mean_generation_time
from repro.cluster.netmodel import WiFiModel
from repro.cluster.profiles import pi_env_step_seconds
from repro.core.messages import MessageType
from repro.neat.config import NEATConfig

POP = 40
GENS = 4


@pytest.fixture(scope="module")
def airraid_cache():
    config = NEATConfig.for_env("Airraid-ram-v0", pop_size=POP)
    return RunCache("Airraid-ram-v0", config, seed=2)


@pytest.fixture(scope="module")
def airraid_single_step_cache():
    config = NEATConfig.for_env("Airraid-ram-v0", pop_size=POP)
    return RunCache("Airraid-ram-v0", config, seed=2, max_steps=1)


class TestCommunicationClaims:
    """Section IV-B / Fig 4: DDS pays the most, DDA the least."""

    def test_comm_ordering_dda_dcs_dds(self, airraid_cache):
        totals = {}
        for protocol in ("CLAN_DCS", "CLAN_DDS", "CLAN_DDA"):
            records = airraid_cache.records(protocol, 4, GENS)
            totals[protocol] = sum(r.comm_floats() for r in records)
        assert totals["CLAN_DDA"] < totals["CLAN_DCS"] < totals["CLAN_DDS"]

    def test_dda_comm_reduction_vs_dds_exceeds_3x(self, airraid_cache):
        # the paper: "reduce communication by up to 3.6x during learning"
        dds = sum(
            r.comm_floats()
            for r in airraid_cache.records("CLAN_DDS", 4, GENS)
        )
        dda = sum(
            r.comm_floats()
            for r in airraid_cache.records("CLAN_DDA", 4, GENS)
        )
        assert dds / dda > 3.0

    def test_dda_steady_state_genome_silence(self, airraid_cache):
        records = airraid_cache.records("CLAN_DDA", 4, GENS)
        for record in records[1:]:
            assert all(
                m.msg_type is MessageType.SENDING_FITNESS
                for m in record.messages
            )


class TestScalingClaims:
    """Fig 5-7: who scales, and where scaling stops."""

    def test_dcs_inference_scales_linearly_for_large_workload(
        self, airraid_cache
    ):
        series = scaling_series(
            "Airraid-ram-v0",
            "CLAN_DCS",
            (1, 2, 4, 8),
            POP,
            GENS,
            seed=2,
            cache=airraid_cache,
        )
        for n in (2, 4, 8):
            speedup = series[1].inference_s / series[n].inference_s
            assert speedup == pytest.approx(n, rel=0.35)

    def test_small_workload_total_stops_scaling(self):
        config = NEATConfig.for_env("CartPole-v0", pop_size=POP)
        cache = RunCache("CartPole-v0", config, seed=2)
        series = scaling_series(
            "CartPole-v0",
            "CLAN_DCS",
            (1, 5, 15),
            POP,
            GENS,
            seed=2,
            cache=cache,
        )
        # communication kills further scaling well before 15 nodes
        assert series[15].total_s > series[5].total_s * 0.8

    def test_dds_evolution_does_not_scale(self, airraid_cache):
        series = scaling_series(
            "Airraid-ram-v0",
            "CLAN_DDS",
            (2, 8),
            POP,
            GENS,
            seed=2,
            cache=airraid_cache,
        )
        evo_comm_2 = series[2].evolution_s + series[2].communication_s
        evo_comm_8 = series[8].evolution_s + series[8].communication_s
        assert evo_comm_8 > evo_comm_2 * 0.9  # no meaningful improvement

    def test_dda_beats_dds_at_every_size(self, airraid_cache):
        for n in (2, 4, 8):
            dds = scaling_series(
                "Airraid-ram-v0", "CLAN_DDS", (n,), POP, GENS, seed=2,
                cache=airraid_cache,
            )[n]
            dda = scaling_series(
                "Airraid-ram-v0", "CLAN_DDA", (n,), POP, GENS, seed=2,
                cache=airraid_cache,
            )[n]
            assert dda.total_s < dds.total_s


class TestFig8Claims:
    """Single-step inference shares at 2 nodes."""

    @pytest.fixture(scope="class")
    def shares(self):
        return fig8_share(
            ("CartPole-v0", "Airraid-ram-v0"), POP, GENS, seed=2
        )

    def test_small_workload_comm_above_90pct(self, shares):
        for share in shares["CartPole-v0"].values():
            assert share["communication"] > 0.85

    def test_large_workload_dda_comm_least(self, shares):
        airraid = shares["Airraid-ram-v0"]
        assert (
            airraid["CLAN_DDA"]["communication"]
            < airraid["CLAN_DCS"]["communication"]
        )
        assert (
            airraid["CLAN_DCS"]["communication"]
            < airraid["CLAN_DDS"]["communication"]
        )

    def test_large_workload_inference_visible(self, shares):
        airraid = shares["Airraid-ram-v0"]
        assert airraid["CLAN_DCS"]["inference"] > 0.2


class TestFig9Claims:
    """Extrapolation: crossovers against serial."""

    @pytest.fixture(scope="class")
    def single_step_study(self, airraid_single_step_cache):
        return fig9_extrapolation(
            "Airraid-ram-v0",
            (1, 2, 4, 6, 8, 10, 12, 15),
            POP,
            GENS,
            single_step=True,
            seed=2,
        )

    def test_dda_outlives_dcs(self, single_step_study):
        crossovers = single_step_study.crossovers()
        assert crossovers["CLAN_DCS"] is not None
        assert crossovers["CLAN_DDA"] is not None
        assert crossovers["CLAN_DDA"] > crossovers["CLAN_DCS"]

    def test_dda_faster_on_average(self, single_step_study):
        advantage = single_step_study.mean_advantage(
            "CLAN_DDA", "CLAN_DCS", up_to=40
        )
        assert advantage > 1.2

    def test_fit_residuals_small(self, single_step_study):
        for fit in single_step_study.fits.values():
            assert fit.residual < 0.25 * single_step_study.serial_time_s


class TestFig10Claims:
    """Better links stretch scaling; custom HW makes comm the wall."""

    def test_halved_comm_extends_stagnation_point(
        self, airraid_single_step_cache
    ):
        base = fig9_extrapolation(
            "Airraid-ram-v0", (1, 2, 4, 6, 8, 10, 12, 15), POP, GENS,
            single_step=True, seed=2,
        )
        fast = fig9_extrapolation(
            "Airraid-ram-v0", (1, 2, 4, 6, 8, 10, 12, 15), POP, GENS,
            single_step=True, seed=2, link=WiFiModel().scaled(0.5),
        )
        assert (
            fast.stagnation_points()["CLAN_DCS"]
            >= base.stagnation_points()["CLAN_DCS"]
        )

    def test_custom_hw_shrinks_inference_share(self, airraid_cache):
        records = airraid_cache.records("CLAN_DCS", 2, GENS)
        step_s = pi_env_step_seconds("Airraid-ram-v0")
        from repro.cluster.device import get_device

        pi_spec = ClusterSpec.of_pis(2)
        hw_spec = ClusterSpec(
            n_agents=2, agent_device=get_device("systolic_32x32")
        )
        pi_share = mean_generation_time(records, pi_spec, step_s).share()
        hw_share = mean_generation_time(records, hw_spec, step_s).share()
        assert hw_share["inference"] < pi_share["inference"]
        assert hw_share["communication"] > pi_share["communication"]
