"""Property-based tests for innovation tracking and striding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neat.innovation import InnovationTracker

split_keys = st.tuples(
    st.integers(min_value=-20, max_value=50),
    st.integers(min_value=0, max_value=50),
)


class TestInnovationProperties:
    @given(st.lists(split_keys, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_same_split_same_id_within_window(self, splits):
        tracker = InnovationTracker(next_node_id=5)
        first_pass = [tracker.get_split_node_id(key) for key in splits]
        second_pass = [tracker.get_split_node_id(key) for key in splits]
        assert first_pass == second_pass

    @given(st.lists(split_keys, min_size=1, max_size=30, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_distinct_splits_distinct_ids(self, splits):
        tracker = InnovationTracker(next_node_id=5)
        ids = [tracker.get_split_node_id(key) for key in splits]
        assert len(ids) == len(set(ids))

    @given(
        st.lists(split_keys, min_size=1, max_size=20, unique=True),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_striding_partitions_id_space(self, splits, stride):
        trackers = [
            InnovationTracker(
                next_node_id=3, agent_offset=i, agent_stride=stride
            )
            for i in range(stride)
        ]
        seen: set[int] = set()
        for offset, tracker in enumerate(trackers):
            for key in splits:
                node_id = tracker.get_split_node_id(key)
                assert node_id % stride == offset
                assert node_id not in seen
                seen.add(node_id)

    @given(
        st.lists(split_keys, min_size=1, max_size=15, unique=True),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_observe_never_reissues_seen_ids(self, splits, observed):
        tracker = InnovationTracker(next_node_id=3)
        tracker.observe_node_id(observed)
        for key in splits:
            assert tracker.get_split_node_id(key) > observed

    @given(st.lists(split_keys, min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_generation_advance_monotone(self, splits):
        tracker = InnovationTracker(next_node_id=3)
        first = [tracker.get_split_node_id(key) for key in splits]
        tracker.advance_generation()
        second = [tracker.get_split_node_id(key) for key in splits]
        assert min(second) > max(first)
