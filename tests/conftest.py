"""Shared fixtures: small, fast configurations used across the suite.

``--lock-check`` additionally wraps the whole session in the runtime
lock checker of :mod:`repro.lint.locks`: every ``threading`` lock
allocated from repro code is instrumented, and the session fails if the
accumulated acquisition graph contains an order-inversion cycle. Hazard
observations (sync lock on a loop thread, lock held across fork) are
printed as warnings — the serving path takes short metrics locks on the
loop deliberately. CI runs the ``lock_check``-marked subset with this
flag on.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker


def pytest_addoption(parser):
    parser.addoption(
        "--lock-check",
        action="store_true",
        default=False,
        help="instrument repro threading locks for the whole session "
        "and fail on lock-order-inversion cycles (see docs/linting.md)",
    )


@pytest.fixture(scope="session", autouse=True)
def _lock_check(request):
    """Session-wide runtime lock checking, enabled by ``--lock-check``."""
    if not request.config.getoption("--lock-check"):
        yield None
        return
    from repro.lint.locks import checked_locks

    with checked_locks() as monitor:
        yield monitor
    for hazard in monitor.hazards:
        warnings.warn(
            f"lock hazard [{hazard.kind}] {hazard.site}: {hazard.detail}",
            stacklevel=1,
        )
    cycles = monitor.cycles()
    assert not cycles, (
        "lock-order inversion(s) detected:\n" + monitor.report()
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def small_config() -> NEATConfig:
    """A 3-in / 2-out config small enough for exhaustive checks."""
    return NEATConfig(num_inputs=3, num_outputs=2, pop_size=20)


@pytest.fixture
def cartpole_config() -> NEATConfig:
    return NEATConfig.for_env("CartPole-v0", pop_size=24)


@pytest.fixture
def innovation(small_config) -> InnovationTracker:
    return InnovationTracker(next_node_id=small_config.num_outputs)


@pytest.fixture
def genome(small_config, rng) -> Genome:
    g = Genome(0)
    g.configure_new(small_config, rng)
    return g


@pytest.fixture
def genome_pair(small_config, rng):
    a = Genome(0)
    a.configure_new(small_config, rng)
    a.fitness = 2.0
    b = Genome(1)
    b.configure_new(small_config, rng)
    b.fitness = 1.0
    return a, b


def make_evolved_genome(
    config: NEATConfig,
    seed: int = 0,
    mutations: int = 30,
    key: int = 0,
) -> Genome:
    """A genome taken through a burst of structural mutations."""
    rng = random.Random(seed)
    tracker = InnovationTracker(next_node_id=config.num_outputs)
    genome = Genome(key)
    genome.configure_new(config, rng)
    for _ in range(mutations):
        genome.mutate(config, rng, tracker)
        tracker.advance_generation()
    return genome
