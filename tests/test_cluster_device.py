"""Tests for device models (Table IV platforms)."""

import pytest

from repro.cluster.device import (
    PI_GENE_OPS_PER_S,
    DeviceModel,
    available_devices,
    get_device,
)


class TestRegistry:
    def test_table_iv_platforms_present(self):
        for name in (
            "raspberry_pi",
            "jetson_cpu",
            "jetson_gpu",
            "hpc_cpu",
            "hpc_gpu",
        ):
            assert name in available_devices()

    def test_custom_hw_present(self):
        assert "systolic_32x32" in available_devices()

    def test_heterogeneous_fleet_profiles_present(self):
        for name in ("jetson_nano", "pi_zero", "raspberry_pi4"):
            assert name in available_devices()

    def test_fleet_profiles_bracket_the_pi(self):
        pi = get_device("raspberry_pi")
        assert get_device("pi_zero").evolution_speedup < pi.evolution_speedup
        assert (
            get_device("raspberry_pi4").evolution_speedup
            > pi.evolution_speedup
        )
        nano = get_device("jetson_nano")
        # Nano: GPU helps inference well beyond its CPU factor, and the
        # whole board stays below the Jetson TX2 dev kit
        assert nano.inference_speedup > nano.evolution_speedup
        assert nano.price_usd < get_device("jetson_cpu").price_usd

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError, match="raspberry_pi"):
            get_device("tpu")

    def test_table_iv_prices(self):
        # Table IV: Pi $40, Jetson $600, HPC $1500
        assert get_device("raspberry_pi").price_usd == 40.0
        assert get_device("jetson_cpu").price_usd == 600.0
        assert get_device("jetson_gpu").price_usd == 600.0
        assert get_device("hpc_cpu").price_usd == 1500.0
        assert get_device("hpc_gpu").price_usd == 1500.0

    def test_pi_is_reference(self):
        pi = get_device("raspberry_pi")
        assert pi.inference_speedup == 1.0
        assert pi.evolution_speedup == 1.0

    def test_platform_ordering(self):
        # HPC > Jetson > Pi on CPU throughput; GPUs above their CPUs
        assert (
            get_device("hpc_cpu").inference_speedup
            > get_device("jetson_cpu").inference_speedup
            > get_device("raspberry_pi").inference_speedup
        )
        assert (
            get_device("hpc_gpu").inference_speedup
            > get_device("hpc_cpu").inference_speedup
        )
        assert (
            get_device("jetson_gpu").inference_speedup
            > get_device("jetson_cpu").inference_speedup
        )

    def test_gpu_does_not_speed_up_evolution(self):
        assert (
            get_device("hpc_gpu").evolution_speedup
            == get_device("hpc_cpu").evolution_speedup
        )

    def test_systolic_accelerates_inference_only(self):
        systolic = get_device("systolic_32x32")
        assert systolic.inference_speedup >= 50
        assert systolic.evolution_speedup == 1.0


class TestTiming:
    def test_pi_inference_rate(self):
        pi = get_device("raspberry_pi")
        assert pi.inference_time(PI_GENE_OPS_PER_S) == pytest.approx(1.0)

    def test_speedup_scales_time(self):
        pi = get_device("raspberry_pi")
        hpc = get_device("hpc_cpu")
        work = 1e6
        assert hpc.inference_time(work) == pytest.approx(
            pi.inference_time(work) / hpc.inference_speedup
        )

    def test_env_step_scales_with_evolution_speed(self):
        jetson = get_device("jetson_cpu")
        assert jetson.env_step_time(1e-3) == pytest.approx(
            1e-3 / jetson.evolution_speedup
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceModel("bad", price_usd=0, inference_speedup=1,
                        evolution_speedup=1)
        with pytest.raises(ValueError):
            DeviceModel("bad", price_usd=1, inference_speedup=0,
                        evolution_speedup=1)


class TestProfiles:
    def test_all_envs_have_step_costs(self):
        from repro.cluster.profiles import pi_env_step_seconds
        from repro.envs.registry import available_env_ids

        for env_id in available_env_ids():
            assert pi_env_step_seconds(env_id) > 0

    def test_large_workloads_cost_more_per_step(self):
        from repro.cluster.profiles import pi_env_step_seconds

        assert pi_env_step_seconds("Airraid-ram-v0") > pi_env_step_seconds(
            "CartPole-v0"
        )
        assert pi_env_step_seconds("LunarLander-v2") > pi_env_step_seconds(
            "MountainCar-v0"
        )

    def test_unknown_env_raises(self):
        from repro.cluster.profiles import pi_env_step_seconds

        with pytest.raises(KeyError):
            pi_env_step_seconds("Pong-v0")
