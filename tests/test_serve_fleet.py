"""Fleet serving: balancing, monotone propagation, rollup, autotuning.

The invariants under test are the ISSUE's acceptance criteria: a
hot-swap propagates to every replica atomically and monotonically (no
replica ever serves an older deployment after acking a newer one —
including across rollbacks, where the *version* drops but the
deployment *seq* rises), per-request actions are scalar-exact under any
balancing, per-replica stats roll up through merged reservoirs, and
overload surfaces as backpressure at both the replica and fleet level.
"""

import asyncio
import random

import pytest

from repro.core.metrics import percentile
from repro.neat.config import NEATConfig
from repro.serve import (
    ChampionRegistry,
    InferenceGateway,
    LoadGenerator,
    Overloaded,
    ReplicaDied,
    ServingFleet,
    SLOBatchController,
    observation_sampler,
)

from tests.conftest import make_evolved_genome

pytestmark = pytest.mark.lock_check

CONFIG = NEATConfig.for_env("CartPole-v0", pop_size=8)
CHAMPIONS = [
    make_evolved_genome(CONFIG, seed=seed, mutations=25, key=seed)
    for seed in range(3)
]


def _observations(n, seed=11):
    rng = random.Random(seed)
    return [[rng.uniform(-1, 1) for _ in range(4)] for _ in range(n)]


async def _started_fleet(registry, **kwargs):
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("max_wait_s", 0.001)
    fleet = ServingFleet(registry, **kwargs)
    await fleet.start()
    registry.publish(CHAMPIONS[0], source="test")
    await fleet.wait_deployed()
    return fleet


class TestValidation:
    def test_rejects_bad_construction(self):
        registry = ChampionRegistry(CONFIG)
        with pytest.raises(ValueError):
            ServingFleet(registry, replicas=0)
        with pytest.raises(ValueError):
            ServingFleet(registry, max_inflight=0)
        with pytest.raises(ValueError):
            ServingFleet(registry, chunk_size=0)

    def test_reconfigure_validates_like_the_batcher(self):
        registry = ChampionRegistry(CONFIG)
        fleet = ServingFleet(registry)
        with pytest.raises(ValueError):
            fleet.reconfigure(max_batch=0)
        with pytest.raises(ValueError):
            fleet.reconfigure(max_wait_s=-1.0)

    def test_submit_before_start_raises(self):
        registry = ChampionRegistry(CONFIG)
        fleet = ServingFleet(registry)

        async def run():
            await fleet.submit([0.0] * 4)

        with pytest.raises(RuntimeError):
            asyncio.run(run())


class TestServing:
    def test_actions_match_scalar_reference(self):
        observations = _observations(60)

        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(registry)
            served = await asyncio.gather(
                *(fleet.submit(obs) for obs in observations)
            )
            await fleet.close()
            record = registry.record_for(1)
            registry.close()
            return served, record

        served, record = asyncio.run(run())
        scalar = record.scalar_network()
        for obs, response in zip(observations, served):
            assert response.action == scalar.policy(obs)
            assert response.champion_version == 1
            assert response.replica in (0, 1)

    def test_balancer_is_seeded_and_deterministic(self):
        observations = _observations(30)

        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(registry, seed=5)
            replicas = []
            for obs in observations:
                served = await fleet.submit(obs)
                replicas.append(served.replica)
            await fleet.close()
            registry.close()
            return replicas

        replicas = asyncio.run(run())
        # same seed, same submission order -> same assignment sequence
        # (uniform pick over live replica ids, sorted by id)
        expected_rng = random.Random(5)
        expected = [
            expected_rng.choice([0, 1]) for _ in observations
        ]
        assert replicas == expected

    def test_both_replicas_serve_under_concurrent_load(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(registry)
            await asyncio.gather(
                *(fleet.submit(obs) for obs in _observations(80))
            )
            stats = await fleet.scrape()
            per_replica = fleet.replica_stats()
            await fleet.close()
            registry.close()
            return stats, per_replica

        stats, per_replica = asyncio.run(run())
        assert stats.served == 80
        assert sum(s.served for s in per_replica.values()) == 80
        assert all(s.served > 0 for s in per_replica.values())


class TestPropagation:
    def test_hot_swap_reaches_every_replica(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(registry)
            registry.publish(CHAMPIONS[1], source="swap")
            await fleet.wait_deployed()
            served = await asyncio.gather(
                *(fleet.submit(obs) for obs in _observations(40))
            )
            traces = fleet.version_traces()
            await fleet.close()
            registry.close()
            return served, traces

        served, traces = asyncio.run(run())
        # after every replica acked the swap, nothing serves v1
        assert {r.champion_version for r in served} == {2}
        for trace in traces.values():
            assert trace == sorted(trace)

    def test_rollback_propagates_via_seq_not_version(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(registry)
            registry.publish(CHAMPIONS[1], source="bad")
            await fleet.wait_deployed()
            registry.rollback()  # version drops 2 -> 1, seq rises to 3
            await fleet.wait_deployed()
            served = await fleet.submit([0.1] * 4)
            await fleet.close()
            seq = registry.seq
            registry.close()
            return served, seq

        served, seq = asyncio.run(run())
        assert seq == 3
        # the monotone guard is on seq, so the *older version* of a
        # rollback still deploys everywhere
        assert served.champion_version == 1

    def test_late_subscriber_gets_current_deployment_replayed(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            # publish BEFORE the fleet exists: start() must replay the
            # live deployment into every replica
            registry.publish(CHAMPIONS[1], source="early")
            fleet = ServingFleet(
                registry, replicas=2, max_wait_s=0.001
            )
            await fleet.start()
            await fleet.wait_deployed()
            served = await fleet.submit([0.2] * 4)
            await fleet.close()
            registry.close()
            return served

        served = asyncio.run(run())
        assert served.champion_version == 1


class TestBackpressure:
    def test_fleet_inflight_cap_sheds_and_counts(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(registry, max_inflight=4)
            tasks = [
                asyncio.ensure_future(fleet.submit(obs))
                for obs in _observations(60)
            ]
            outcomes = await asyncio.gather(
                *tasks, return_exceptions=True
            )
            stats = await fleet.scrape()
            fleet_shed = fleet.fleet_shed
            await fleet.close()
            registry.close()
            return outcomes, stats, fleet_shed

        outcomes, stats, fleet_shed = asyncio.run(run())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        ok = [o for o in outcomes if not isinstance(o, Exception)]
        assert shed, "a 4-deep inflight window must shed a 60-burst"
        assert ok, "backpressure must not reject everything"
        assert fleet_shed == len(shed)
        # parent-side sheds are folded into the fleet rollup
        assert stats.shed == fleet_shed
        assert stats.requests == stats.served + fleet_shed
        assert stats.served == len(ok)


class TestReplicaDeath:
    def test_death_is_isolated_to_the_dead_replica(self):
        # healing off: the pre-healing containment contract must hold
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(
                registry, max_replica_respawns=0
            )
            victim = fleet._handles[0].proc
            victim.kill()
            # wait for the reader thread to notice the EOF
            for _ in range(100):
                if fleet.live_replicas == [1]:
                    break
                await asyncio.sleep(0.01)
            served = await asyncio.gather(
                *(fleet.submit(obs) for obs in _observations(20))
            )
            # deployments keep working on the survivors
            registry.publish(CHAMPIONS[1], source="after-death")
            await fleet.wait_deployed()
            live = fleet.live_replicas
            await fleet.close()
            registry.close()
            return served, live

        served, live = asyncio.run(run())
        assert live == [1]
        assert {r.replica for r in served} == {1}

    def test_total_fleet_loss_raises_replica_died(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(
                registry, replicas=1, max_replica_respawns=0
            )
            fleet._handles[0].proc.kill()
            for _ in range(100):
                if not fleet.live_replicas:
                    break
                await asyncio.sleep(0.01)
            with pytest.raises(ReplicaDied):
                await fleet.submit([0.0] * 4)
            with pytest.raises(ReplicaDied):
                await fleet.wait_deployed(registry.seq + 1)
            await fleet.close()
            registry.close()

        asyncio.run(run())


class TestSelfHealing:
    """PR 10's serving-tier healing: in-flight deaths become transparent
    retries, dead replicas respawn and catch up to the current
    deployment seq before taking traffic again, and a flapping replica
    is held out by its circuit breaker."""

    def test_inflight_death_is_retried_not_errored(self):
        observations = _observations(40)

        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(registry)
            tasks = [
                asyncio.ensure_future(fleet.submit(obs))
                for obs in observations
            ]
            # kill replica 0 with those requests in flight: its share
            # must be re-dispatched to replica 1, not errored
            fleet._handles[0].proc.kill()
            outcomes = await asyncio.gather(
                *tasks, return_exceptions=True
            )
            stats = await fleet.scrape()
            retried = fleet.requests_retried
            await fleet.close()
            registry.close()
            return outcomes, stats, retried

        outcomes, stats, retried = asyncio.run(run())
        errors = [o for o in outcomes if isinstance(o, Exception)]
        assert not errors, f"healing must absorb the death: {errors!r}"
        assert retried > 0
        # no double-counting: the dead replica never answered the
        # retried requests, so the rollup counts each exactly once
        assert stats.served == len(observations)

    def test_respawned_replica_catches_up_to_current_seq(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(
                registry, respawn_backoff_s=0.01
            )
            registry.publish(CHAMPIONS[1], source="pre-death")
            await fleet.wait_deployed()
            fleet._handles[0].proc.kill()
            # the respawned replica is only admitted once it acks the
            # current deployment seq
            for _ in range(500):
                if (
                    fleet.live_replicas == [0, 1]
                    and fleet.replica_respawns == 1
                ):
                    break
                await asyncio.sleep(0.01)
            live = fleet.live_replicas
            acked = fleet._handles[0].acked_seq
            seq = registry.seq
            # force traffic onto the respawned replica: it must serve
            # the *current* champion, never a stale one
            served = []
            while len(served) < 5:
                response = await fleet.submit([0.1] * 4)
                if response.replica == 0:
                    served.append(response)
            respawns = fleet.replica_respawns
            await fleet.close()
            registry.close()
            return live, acked, seq, served, respawns

        live, acked, seq, served, respawns = asyncio.run(run())
        assert live == [0, 1]
        assert respawns == 1
        assert acked >= seq
        assert {r.champion_version for r in served} == {2}

    def test_single_replica_fleet_heals_parked_requests(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(
                registry, replicas=1, respawn_backoff_s=0.01
            )
            fleet._handles[0].proc.kill()
            for _ in range(200):
                if not fleet.live_replicas:
                    break
                await asyncio.sleep(0.01)
            # whole fleet down but a respawn is in flight: the request
            # parks and is answered by the respawned replica
            served = await asyncio.wait_for(
                fleet.submit([0.2] * 4), timeout=10.0
            )
            respawns = fleet.replica_respawns
            await fleet.close()
            registry.close()
            return served, respawns

        served, respawns = asyncio.run(run())
        assert served.replica == 0
        assert served.champion_version == 1
        assert respawns == 1

    def test_breaker_opens_after_repeated_deaths(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(
                registry,
                breaker_threshold=1,
                breaker_reset_s=30.0,
                respawn_backoff_s=0.01,
            )
            fleet._handles[0].proc.kill()
            for _ in range(500):
                if fleet.replica_respawns == 1 and fleet._handles[
                    0
                ].alive:
                    break
                await asyncio.sleep(0.01)
            # respawned but breaker open: held out of the rotation
            states = fleet.breaker_states()
            live = fleet.live_replicas
            served = await asyncio.gather(
                *(fleet.submit(obs) for obs in _observations(10))
            )
            await fleet.close()
            registry.close()
            return states, live, served

        states, live, served = asyncio.run(run())
        assert states[0] == 1.0
        assert states[1] == 0.0
        assert live == [1]
        assert {r.replica for r in served} == {1}

    def test_health_surface_reports_counters(self):
        async def run():
            registry = ChampionRegistry(CONFIG)
            fleet = await _started_fleet(registry)
            health = fleet.health()
            await fleet.close()
            registry.close()
            return health

        health = asyncio.run(run())
        assert health["replica_respawns"] == 0
        assert health["requests_retried"] == 0
        assert health["breaker_states"] == {0: 0.0, 1: 0.0}
        assert health["live_replicas"] == [0, 1]
        assert health["faults_injected"] == {}


class TestSLOBatchController:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            SLOBatchController(0.0)
        with pytest.raises(ValueError):
            SLOBatchController(0.01, shrink_factor=1.0)
        with pytest.raises(ValueError):
            SLOBatchController(0.01, headroom=0.0)

    def test_violation_shrinks_multiplicatively(self):
        controller = SLOBatchController(
            0.010, max_batch=32, max_wait_s=0.004
        )
        changed = controller.update(0.020)
        assert changed
        assert controller.violations == 1
        assert controller.max_wait_s == pytest.approx(0.002)
        assert controller.max_batch == 16

    def test_headroom_widens_additively(self):
        controller = SLOBatchController(
            0.010, max_batch=32, max_wait_s=0.004, batch_step=4
        )
        changed = controller.update(0.002)  # well under 0.8 * target
        assert changed
        assert controller.widenings == 1
        assert controller.max_batch == 36
        assert controller.max_wait_s == pytest.approx(
            0.004 + 0.010 / 20
        )

    def test_dead_band_holds_the_knobs(self):
        controller = SLOBatchController(
            0.010, max_batch=32, max_wait_s=0.004
        )
        # between headroom (0.8x) and the target: no change
        assert not controller.update(0.009)
        assert controller.max_batch == 32
        assert controller.max_wait_s == 0.004
        assert controller.violations == 0
        assert controller.widenings == 0

    def test_idle_window_is_a_hold(self):
        controller = SLOBatchController(0.010)
        assert not controller.update(0.0)
        assert controller.history == []

    def test_shrink_respects_floors(self):
        controller = SLOBatchController(
            0.010,
            max_batch=8,
            max_wait_s=0.004,
            min_batch=2,
            min_wait_s=0.001,
        )
        for _ in range(10):
            controller.update(1.0)
        assert controller.max_batch == 2
        assert controller.max_wait_s == 0.001

    def test_widen_respects_caps(self):
        controller = SLOBatchController(
            0.010,
            max_batch=500,
            max_wait_s=0.009,
            batch_cap=512,
        )
        for _ in range(10):
            controller.update(0.001)
        assert controller.max_batch == 512
        # default wait cap is the SLO target itself
        assert controller.max_wait_s == pytest.approx(0.010)

    def test_history_records_every_observation(self):
        controller = SLOBatchController(0.010)
        controller.update(0.001)
        controller.update(0.020)
        assert len(controller.history) == 2
        p95s = [p95 for p95, _, _ in controller.history]
        assert p95s == [0.001, 0.020]


class TestAutotuneAgainstLoadGenerator:
    """The controller drives a *live* gateway under seeded Poisson
    load — the loop-safety of mid-traffic reconfigure plus the AIMD
    direction both checked against real latency samples."""

    def _drive(self, slo_p95_s):
        async def run():
            registry = ChampionRegistry(CONFIG)
            registry.publish(CHAMPIONS[0], source="test")
            gateway = InferenceGateway(
                registry,
                max_batch=8,
                max_wait_s=0.002,
                close_registry=True,
            )
            await gateway.start()
            controller = SLOBatchController(
                slo_p95_s, max_batch=8, max_wait_s=0.002
            )

            async def autotune():
                while True:
                    await asyncio.sleep(0.02)
                    window = gateway.stats().latency_window[-256:]
                    if controller.update(percentile(window, 95)):
                        gateway.reconfigure(
                            max_batch=controller.max_batch,
                            max_wait_s=controller.max_wait_s,
                        )

            tuner = asyncio.get_running_loop().create_task(autotune())
            generator = LoadGenerator(
                gateway.submit,
                observation_sampler("CartPole-v0"),
                rate_hz=800.0,
                n_requests=240,
                seed=3,
            )
            report = await generator.run()
            tuner.cancel()
            await gateway.close()
            return report, controller, gateway

        return asyncio.run(run())

    def test_impossible_slo_backs_off_to_the_floors(self):
        # 50us p95 is unreachable: every window violates, so AIMD
        # must shrink the batching knobs monotonically to their floors
        report, controller, gateway = self._drive(50e-6)
        assert report.served == 240
        assert controller.violations > 0
        assert controller.widenings == 0
        # multiplicative decrease: the knobs only ever move down
        assert gateway.max_batch < 8
        assert gateway.max_wait_s < 0.002

    def test_loose_slo_widens_the_batching_window(self):
        # 500ms p95 leaves huge headroom: the controller probes wider
        # batching for throughput, never violating
        report, controller, gateway = self._drive(0.5)
        assert report.served == 240
        assert controller.violations == 0
        assert controller.widenings > 0
        assert gateway.max_batch > 8
        assert gateway.max_wait_s > 0.002
