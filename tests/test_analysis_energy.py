"""Tests for the energy extension."""

import pytest

from repro.analysis.energy import EnergyPoint, energy_ratio, energy_study


class TestEnergyPoint:
    def test_energy_is_power_times_time(self):
        point = EnergyPoint("x", 1, 10.0, 5.0)
        assert point.energy_per_generation_j == 50.0

    def test_edp(self):
        point = EnergyPoint("x", 1, 10.0, 5.0)
        assert point.energy_delay_product == 250.0


class TestEnergyStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return energy_study(
            "Airraid-ram-v0", (1, 4), pop_size=24, generations=2, seed=0
        )

    def test_all_platforms_present(self, points):
        labels = {p.label for p in points}
        assert {"HPC CPU", "HPC GPU", "Jetson CPU", "Jetson GPU",
                "1 pi", "4 pi"} <= labels

    def test_fleet_power_scales_with_pis(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["4 pi"].fleet_power_w == pytest.approx(
            4 * by_label["1 pi"].fleet_power_w
        )

    def test_pi_swarm_beats_hpc_on_energy(self, points):
        # 4 W nodes vs a 90 W desktop: the swarm wins on joules even after
        # paying communication time
        assert energy_ratio(points, "4 pi", "HPC CPU") > 1.0

    def test_ratio_inverts(self, points):
        ratio = energy_ratio(points, "4 pi", "HPC CPU")
        inverse = energy_ratio(points, "HPC CPU", "4 pi")
        assert ratio * inverse == pytest.approx(1.0)
