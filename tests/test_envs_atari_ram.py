"""Tests for the Atari-RAM surrogate games."""

import random

import pytest

from repro.envs.atari_ram import (
    ACTION_DOWN,
    ACTION_FIRE,
    ACTION_LEFT,
    ACTION_NOOP,
    ACTION_RIGHT,
    ACTION_UP,
    RAM_SIZE,
    AirRaidRamEnv,
    AlienRamEnv,
    AmidarRamEnv,
)
from repro.envs.base import rollout

ALL_GAMES = [AirRaidRamEnv, AmidarRamEnv, AlienRamEnv]


@pytest.mark.parametrize("game_class", ALL_GAMES)
class TestRamConvention:
    def test_observation_is_128_dim(self, game_class):
        env = game_class(seed=0)
        obs = env.reset()
        assert len(obs) == RAM_SIZE

    def test_observation_values_in_unit_range(self, game_class):
        env = game_class(seed=0)
        env.reset()
        rng = random.Random(1)
        for _ in range(30):
            obs, _r, done, _i = env.step(rng.randrange(6))
            assert all(0.0 <= v <= 1.0 for v in obs)
            if done:
                break

    def test_six_actions(self, game_class):
        env = game_class(seed=0)
        assert env.action_space.n == 6

    def test_three_lives(self, game_class):
        env = game_class(seed=0)
        env.reset()
        assert env._lives == 3

    def test_deterministic_under_seed(self, game_class):
        def run():
            env = game_class()
            rng = random.Random(5)
            return rollout(
                env, lambda obs: rng.randrange(6), seed=11
            ).total_reward

        assert run() == run()

    def test_frame_counter_encoded(self, game_class):
        env = game_class(seed=0)
        env.reset()
        obs1, _r, _d, _i = env.step(ACTION_NOOP)
        obs2, _r, _d, _i = env.step(ACTION_NOOP)
        # byte 0 is the low byte of the frame counter
        assert obs2[0] != obs1[0] or obs2[1] != obs1[1]

    def test_score_accumulates_in_info(self, game_class):
        env = game_class(seed=0)
        env.reset()
        rng = random.Random(2)
        last_score = 0
        for _ in range(60):
            _obs, _r, done, info = env.step(rng.randrange(6))
            assert info["score"] >= last_score
            last_score = info["score"]
            if done:
                break


class TestAirRaid:
    def test_player_moves_left_and_right(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        x0 = env._player_x
        env.step(ACTION_RIGHT)
        assert env._player_x == x0 + 1
        env.step(ACTION_LEFT)
        assert env._player_x == x0

    def test_player_clamped_to_screen(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        for _ in range(40):
            env.step(ACTION_LEFT)
            if env._done:
                break
        assert env._player_x == 0

    def test_fire_spawns_bullet(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        env.step(ACTION_FIRE)
        assert len(env._bullets) == 1

    def test_fire_cooldown_limits_rate(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        env.step(ACTION_FIRE)
        env.step(ACTION_FIRE)  # cooldown still active
        assert len(env._bullets) == 1

    def test_bombers_spawn_over_time(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        for _ in range(12):
            env.step(ACTION_NOOP)
        assert env._bombers

    def test_hitting_bomber_scores(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        env._bombers = [[env._player_x, 2]]
        env._bullets = [[env._player_x, 4]]
        reward = 0.0
        for _ in range(3):
            _obs, r, done, _i = env.step(ACTION_NOOP)
            reward += r
            if done or reward:
                break
        assert reward == env.HIT_SCORE

    def test_bomber_landing_costs_life(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        env._bombers = [[3, env.HEIGHT - 2]]
        lives0 = env._lives
        for _ in range(3):
            env.step(ACTION_NOOP)
            if env._lives < lives0:
                break
        assert env._lives == lives0 - 1


class TestAmidar:
    def test_painting_scores(self):
        env = AmidarRamEnv(seed=0)
        env.reset()
        _obs, reward, _d, _i = env.step(ACTION_RIGHT)
        assert reward == env.PAINT_SCORE

    def test_repainting_scores_nothing(self):
        env = AmidarRamEnv(seed=0)
        env.reset()
        env.step(ACTION_RIGHT)
        env.step(ACTION_LEFT)  # back onto painted start cell
        _obs, reward, _d, _i = env.step(ACTION_RIGHT)  # painted already
        assert reward == 0.0

    def test_row_completion_bonus(self):
        env = AmidarRamEnv(seed=0)
        env.reset()
        total = 0.0
        for _ in range(env.WIDTH - 1):
            _obs, r, _d, _i = env.step(ACTION_RIGHT)
            total += r
        # row 0 complete: (WIDTH-1) paints + bonus
        assert total == (env.WIDTH - 1) * env.PAINT_SCORE + env.ROW_BONUS

    def test_patroller_contact_costs_life(self):
        env = AmidarRamEnv(seed=0)
        env.reset()
        env._patrollers[0][:2] = [env._px, env._py]
        lives0 = env._lives
        env.step(ACTION_NOOP)
        assert env._lives <= lives0  # may have stepped off, but never gains
        env._patrollers[0][:2] = [env._px, env._py]
        env._frame = 1  # patrollers move on even frames only
        env.step(ACTION_NOOP)
        assert env._lives < lives0


class TestAlien:
    def test_dot_collection_scores(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        env._dots = {(env._px + 1, env._py)}
        _obs, reward, _d, _i = env.step(ACTION_RIGHT)
        assert reward >= env.DOT_SCORE

    def test_clearing_board_gives_bonus_and_respawns(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        env._dots = {(env._px + 1, env._py)}
        _obs, reward, _d, _i = env.step(ACTION_RIGHT)
        assert reward == env.DOT_SCORE + env.CLEAR_BONUS
        assert env._dots  # respawned

    def test_aliens_pursue_player(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        alien = env._aliens[0]
        d0 = abs(alien[0] - env._px) + abs(alien[1] - env._py)
        for _ in range(4):
            env.step(ACTION_NOOP)
        d1 = abs(alien[0] - env._px) + abs(alien[1] - env._py)
        assert d1 < d0

    def test_alien_contact_costs_life_and_respawns(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        env._aliens[0][:] = [env._px, env._py]
        lives0 = env._lives
        env._frame = 0  # aliens don't move this frame; contact check runs
        env.step(ACTION_NOOP)
        assert env._lives == lives0 - 1
        assert (env._px, env._py) == (env.SIZE // 2, env.SIZE // 2)

    def test_player_movement(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        x, y = env._px, env._py
        env.step(ACTION_UP)
        assert (env._px, env._py) == (x, y - 1)
        env.step(ACTION_DOWN)
        assert (env._px, env._py) == (x, y)
