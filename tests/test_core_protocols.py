"""Tests for the CLAN protocol engines — the heart of the reproduction."""

import pytest

from repro.cluster.serialization import encode_genome
from repro.core.messages import MessageType
from repro.core.protocols import (
    CLAN_DCS,
    CLAN_DDA,
    CLAN_DDS,
    SerialNEAT,
    available_protocols,
    make_protocol,
)
from repro.neat.config import NEATConfig

ENV = "CartPole-v0"
GENS = 3


@pytest.fixture(scope="module")
def config():
    return NEATConfig.for_env(ENV, pop_size=32)


def population_bytes(population):
    return b"".join(
        encode_genome(population[key]) for key in sorted(population)
    )


@pytest.fixture(scope="module")
def runs(config):
    """One short run of every protocol with a shared seed."""
    out = {}
    for name, n in (
        ("Serial", 1),
        ("CLAN_DCS", 4),
        ("CLAN_DDS", 4),
        ("CLAN_DDA", 4),
    ):
        engine = make_protocol(name, ENV, n_agents=n, config=config, seed=21)
        result = engine.run(max_generations=GENS, fitness_threshold=1e9)
        out[name] = (engine, result)
    return out


class TestEquivalence:
    """Distribution changes placement, not the algorithm."""

    def test_dcs_population_identical_to_serial(self, runs):
        serial, _ = runs["Serial"]
        dcs, _ = runs["CLAN_DCS"]
        assert population_bytes(serial.population.genomes) == (
            population_bytes(dcs.population.genomes)
        )

    def test_dds_population_identical_to_serial(self, runs):
        serial, _ = runs["Serial"]
        dds, _ = runs["CLAN_DDS"]
        assert population_bytes(serial.population.genomes) == (
            population_bytes(dds.population.genomes)
        )

    def test_fitness_trajectories_identical(self, runs):
        fitness = {
            name: [r.best_fitness for r in result.records]
            for name, (_e, result) in runs.items()
        }
        assert fitness["Serial"] == fitness["CLAN_DCS"] == fitness["CLAN_DDS"]

    def test_dcs_identical_across_cluster_sizes(self, config):
        populations = []
        for n in (2, 5):
            engine = CLAN_DCS(ENV, n_agents=n, config=config, seed=21)
            engine.run(max_generations=2, fitness_threshold=1e9)
            populations.append(population_bytes(engine.population.genomes))
        assert populations[0] == populations[1]


class TestSerial:
    def test_no_messages(self, runs):
        _, result = runs["Serial"]
        assert all(not record.messages for record in result.records)

    def test_all_compute_on_single_agent(self, runs):
        _, result = runs["Serial"]
        for record in result.records:
            assert len(record.agent_loads) == 1
            load = record.agent_loads[0]
            assert load.inference_gene_ops > 0
            assert load.speciation_gene_ops > 0
            assert load.reproduction_gene_ops > 0

    def test_rejects_multiple_agents(self, config):
        with pytest.raises(ValueError):
            SerialNEAT(ENV, config=config, n_agents=2)


class TestDCS:
    def test_inference_distributed_across_agents(self, runs):
        _, result = runs["CLAN_DCS"]
        for record in result.records:
            active = [
                load for load in record.agent_loads
                if load.inference_gene_ops > 0
            ]
            assert len(active) == record.n_agents

    def test_evolution_stays_central(self, runs):
        _, result = runs["CLAN_DCS"]
        for record in result.records:
            assert record.center_speciation_gene_ops > 0
            assert record.center_reproduction_gene_ops > 0
            for load in record.agent_loads:
                assert load.reproduction_gene_ops == 0
                assert load.speciation_gene_ops == 0

    def test_messages_are_genomes_down_fitness_up(self, runs):
        _, result = runs["CLAN_DCS"]
        for record in result.records:
            types = {m.msg_type for m in record.messages}
            assert types == {
                MessageType.SENDING_GENOMES,
                MessageType.SENDING_FITNESS,
            }

    def test_genomes_shipped_every_generation(self, runs):
        _, result = runs["CLAN_DCS"]
        for record in result.records:
            genome_floats = sum(
                m.n_genes
                for m in record.messages
                if m.msg_type is MessageType.SENDING_GENOMES
            )
            assert genome_floats > 0

    def test_load_balanced_within_one_genome(self, runs, config):
        _, result = runs["CLAN_DCS"]
        for record in result.records:
            counts = [
                load.genomes_evaluated for load in record.agent_loads
            ]
            assert max(counts) - min(counts) <= 1
            assert sum(counts) == config.pop_size


class TestDDS:
    def test_children_formed_on_agents(self, runs):
        _, result = runs["CLAN_DDS"]
        for record in result.records:
            distributed = sum(
                load.reproduction_gene_ops for load in record.agent_loads
            )
            assert distributed > 0
            assert record.center_reproduction_gene_ops == 0

    def test_speciation_stays_central(self, runs):
        _, result = runs["CLAN_DDS"]
        for record in result.records:
            assert record.center_speciation_gene_ops > 0
            for load in record.agent_loads:
                assert load.speciation_gene_ops == 0

    def test_children_shipped_back_for_speciation(self, runs):
        _, result = runs["CLAN_DDS"]
        for record in result.records:
            children = sum(
                m.n_genes
                for m in record.messages
                if m.msg_type is MessageType.SENDING_CHILDREN
            )
            assert children > 0

    def test_plan_messages_present(self, runs):
        _, result = runs["CLAN_DDS"]
        for record in result.records:
            types = {m.msg_type for m in record.messages}
            assert MessageType.SENDING_SPAWN_COUNT in types
            assert MessageType.SENDING_PARENT_LIST in types

    def test_initial_distribution_only_once(self, runs):
        _, result = runs["CLAN_DDS"]
        first = result.records[0]
        genome_msgs = [
            m
            for m in first.messages
            if m.msg_type is MessageType.SENDING_GENOMES
        ]
        assert genome_msgs
        for record in result.records[1:]:
            assert not any(
                m.msg_type is MessageType.SENDING_GENOMES
                for m in record.messages
            )

    def test_comm_cost_exceeds_dcs(self, runs):
        # the paper's key DDS observation (Fig 4): naive distribution of
        # reproduction *increases* communication
        _, dcs = runs["CLAN_DCS"]
        _, dds = runs["CLAN_DDS"]
        assert (
            dds.mean_comm_floats_per_generation()
            > dcs.mean_comm_floats_per_generation()
        )


class TestDDA:
    def test_genomes_cross_network_only_at_init(self, runs):
        _, result = runs["CLAN_DDA"]
        for record in result.records[1:]:
            for message in record.messages:
                assert message.n_genes == 0, (
                    "genome payload after generation 0"
                )

    def test_only_fitness_after_init(self, runs):
        _, result = runs["CLAN_DDA"]
        for record in result.records[1:]:
            types = {m.msg_type for m in record.messages}
            assert types == {MessageType.SENDING_FITNESS}

    def test_lowest_communication(self, runs):
        _, dcs = runs["CLAN_DCS"]
        _, dds = runs["CLAN_DDS"]
        _, dda = runs["CLAN_DDA"]
        assert (
            dda.mean_comm_floats_per_generation()
            < dcs.mean_comm_floats_per_generation()
            < dds.mean_comm_floats_per_generation()
        )

    def test_clans_partition_population(self, config):
        engine = CLAN_DDA(ENV, n_agents=4, config=config, seed=21)
        assert sum(engine.clan_sizes) == config.pop_size
        assert max(engine.clan_sizes) - min(engine.clan_sizes) <= 1

    def test_all_evolution_on_agents(self, runs):
        _, result = runs["CLAN_DDA"]
        for record in result.records:
            assert record.center_speciation_gene_ops == 0
            assert record.center_reproduction_gene_ops == 0
            assert any(
                load.speciation_gene_ops > 0 for load in record.agent_loads
            )

    def test_genome_keys_never_collide_across_clans(self, config):
        engine = CLAN_DDA(ENV, n_agents=4, config=config, seed=21)
        engine.run(max_generations=4, fitness_threshold=1e9)
        all_keys = [
            key for clan in engine._clans for key in clan.members
        ]
        assert len(all_keys) == len(set(all_keys))

    def test_node_ids_never_collide_across_clans(self, config):
        engine = CLAN_DDA(ENV, n_agents=3, config=config, seed=21)
        engine.run(max_generations=5, fitness_threshold=1e9)
        hidden_owner = {}
        for clan in engine._clans:
            for genome in clan.members.values():
                for node_id in genome.nodes:
                    if node_id < config.num_outputs:
                        continue  # outputs shared by construction
                    owner = hidden_owner.setdefault(node_id, clan.clan_id)
                    assert owner == clan.clan_id

    def test_rejects_too_many_clans(self, config):
        with pytest.raises(ValueError):
            CLAN_DDA(ENV, n_agents=config.pop_size, config=config)


class TestDDAResync:
    def test_resync_ships_genomes_again(self, config):
        engine = CLAN_DDA(
            ENV, n_agents=4, config=config, seed=21, resync_period=2
        )
        result = engine.run(max_generations=4, fitness_threshold=1e9)
        resync_record = result.records[2]
        types = {m.msg_type for m in resync_record.messages}
        assert MessageType.SENDING_CHILDREN in types  # gather
        assert MessageType.SENDING_GENOMES in types  # redistribute

    def test_resync_preserves_population_size(self, config):
        engine = CLAN_DDA(
            ENV, n_agents=4, config=config, seed=21, resync_period=2
        )
        engine.run(max_generations=5, fitness_threshold=1e9)
        assert sum(engine.clan_sizes) == config.pop_size

    def test_invalid_period_rejected(self, config):
        with pytest.raises(ValueError):
            CLAN_DDA(ENV, n_agents=2, config=config, resync_period=0)


class TestRunControl:
    def test_convergence_stops_run(self, config):
        engine = SerialNEAT(ENV, config=config, seed=21)
        result = engine.run(max_generations=50, fitness_threshold=20.0)
        assert result.converged
        assert result.generations_to_converge == result.generations

    def test_default_threshold_is_gym_criterion(self, config):
        engine = SerialNEAT(ENV, config=config, seed=21)
        assert engine.solved_threshold == 195.0

    def test_records_accumulate_on_engine(self, runs):
        engine, result = runs["CLAN_DCS"]
        assert len(engine.records) == len(result.records)

    def test_best_genome_tracked(self, runs):
        engine, result = runs["CLAN_DDA"]
        assert engine.best_genome is not None
        assert engine.best_genome.fitness == result.best_fitness


class TestCostCounters:
    """Fig 3c counters surfaced on records and the run summary."""

    def test_records_carry_speciation_comparisons(self, runs):
        for name, (_engine, result) in runs.items():
            for record in result.records:
                assert record.speciation_comparisons > 0, name

    def test_run_result_aggregates(self, runs):
        _, result = runs["Serial"]
        assert result.total_speciation_comparisons() == sum(
            r.speciation_comparisons for r in result.records
        )
        assert result.total_speciation_gene_ops() == sum(
            r.total_speciation_gene_ops() for r in result.records
        )
        assert result.final_n_species() == result.records[-1].n_species

    def test_scalar_run_reports_no_plan_cache_traffic(self, runs):
        _, result = runs["Serial"]
        assert result.plan_cache_hits == 0
        assert result.plan_cache_misses == 0
        assert result.plan_cache_hit_rate() == 0.0

    def test_batched_run_reports_plan_cache_traffic(self, config):
        engine = SerialNEAT(ENV, config=config, seed=21, backend="batched")
        result = engine.run(max_generations=2, fitness_threshold=1e9)
        assert result.plan_cache_misses > 0
        assert (
            result.plan_cache_hits + result.plan_cache_misses
            >= 2 * config.pop_size
        )
        assert 0.0 <= result.plan_cache_hit_rate() <= 1.0

    def test_dda_sums_comparisons_over_clans(self, config):
        engine = CLAN_DDA(ENV, n_agents=4, config=config, seed=21)
        record = engine.run_generation()
        assert record.speciation_comparisons > 0


class TestVectorizedGeneticsEquivalence:
    """The engine switch changes execution, not the speciation result."""

    def test_generation_zero_partition_matches_scalar(self, config):
        scalar = SerialNEAT(ENV, config=config, seed=21)
        vectorized = SerialNEAT(
            ENV,
            config=config.evolve_with(genetics="vectorized"),
            seed=21,
        )
        record_s = scalar.run_generation()
        record_v = vectorized.run_generation()
        # identical initial population -> identical fitness, species
        # partition and comparison counts; broods diverge only in
        # attribute draws afterwards
        assert record_v.best_fitness == record_s.best_fitness
        assert record_v.n_species == record_s.n_species
        assert (
            record_v.speciation_comparisons
            == record_s.speciation_comparisons
        )
        assert (
            scalar.population.species_set.genome_to_species
            == vectorized.population.species_set.genome_to_species
        )


class TestFactory:
    def test_available_protocols(self):
        assert set(available_protocols()) == {
            "Serial",
            "CLAN_DCS",
            "CLAN_DDS",
            "CLAN_DDA",
        }

    def test_unknown_protocol(self):
        with pytest.raises(KeyError, match="CLAN_DCS"):
            make_protocol("CLAN_XXX", ENV)

    def test_factory_builds_each(self, config):
        for name in available_protocols():
            engine = make_protocol(
                name, ENV, n_agents=2, config=config, seed=0
            )
            assert engine.name == name
