"""Tests for the WiFi link model."""

import pytest

from repro.cluster.netmodel import (
    PAPER_64B_LATENCY_S,
    PAPER_BANDWIDTH_BPS,
    WiFiModel,
)


class TestPaperCalibration:
    def test_64_byte_transfer_matches_measurement(self):
        # paper section IV-A: 8.83 ms peer-to-peer latency for 64 B
        link = WiFiModel(channel_setup_s=0.0)
        assert link.transfer_time(64) == pytest.approx(
            PAPER_64B_LATENCY_S, rel=1e-6
        )

    def test_bandwidth_constant(self):
        assert PAPER_BANDWIDTH_BPS == pytest.approx(62.24e6)


class TestTransferTime:
    def test_monotone_in_size(self):
        link = WiFiModel()
        times = [link.transfer_time(n) for n in (0, 100, 10_000, 1_000_000)]
        assert times == sorted(times)

    def test_large_transfer_dominated_by_bandwidth(self):
        link = WiFiModel()
        ten_mb = 10 * 1024 * 1024
        expected_stream = ten_mb * 8 / link.bandwidth_bps
        assert link.transfer_time(ten_mb) == pytest.approx(
            expected_stream, rel=0.05
        )

    def test_small_transfer_dominated_by_latency(self):
        link = WiFiModel()
        assert link.transfer_time(8) == pytest.approx(
            link.channel_setup_s + link.base_latency_s, rel=0.01
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WiFiModel().transfer_time(-1)

    def test_sender_occupancy_excludes_latency(self):
        link = WiFiModel()
        assert link.sender_occupancy(1000) < link.transfer_time(1000)


class TestScaled:
    def test_half_cost_link(self):
        link = WiFiModel()
        fast = link.scaled(0.5)
        for size in (64, 10_000, 1_000_000):
            assert fast.transfer_time(size) == pytest.approx(
                link.transfer_time(size) / 2
            )

    def test_identity_scale(self):
        link = WiFiModel()
        same = link.scaled(1.0)
        assert same.transfer_time(500) == pytest.approx(
            link.transfer_time(500)
        )

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            WiFiModel().scaled(0.0)

    def test_original_unchanged(self):
        link = WiFiModel()
        before = link.transfer_time(64)
        link.scaled(0.25)
        assert link.transfer_time(64) == before


class TestValidation:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            WiFiModel(bandwidth_bps=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            WiFiModel(base_latency_s=-1.0)
