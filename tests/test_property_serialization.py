"""Property-based tests for the wire format."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.serialization import (
    decode_genome,
    decode_genomes,
    encode_genome,
    encode_genomes,
    genome_stream_bytes,
    genome_wire_floats,
)
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker

CONFIG = NEATConfig(num_inputs=4, num_outputs=3, pop_size=10)


@st.composite
def genome_strategy(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    mutations = draw(st.integers(min_value=0, max_value=30))
    fitness_code = draw(st.integers(min_value=-1, max_value=1000))
    rng = random.Random(seed)
    tracker = InnovationTracker(next_node_id=CONFIG.num_outputs)
    genome = Genome(draw(st.integers(min_value=0, max_value=2**20)))
    genome.configure_new(CONFIG, rng)
    for _ in range(mutations):
        genome.mutate(CONFIG, rng, tracker)
    genome.fitness = None if fitness_code < 0 else fitness_code / 7.0
    return genome


class TestRoundTripProperties:
    @given(genome_strategy())
    @settings(max_examples=50, deadline=None)
    def test_decode_inverts_encode(self, genome):
        decoded = decode_genome(encode_genome(genome))
        assert decoded.key == genome.key
        assert decoded.fitness == genome.fitness
        assert decoded.nodes == genome.nodes
        assert set(decoded.connections) == set(genome.connections)
        for key in genome.connections:
            assert decoded.connections[key] == genome.connections[key]

    @given(genome_strategy())
    @settings(max_examples=50, deadline=None)
    def test_stream_length_matches_prediction(self, genome):
        assert len(encode_genome(genome)) == genome_stream_bytes(genome)

    @given(genome_strategy())
    @settings(max_examples=50, deadline=None)
    def test_double_round_trip_is_fixed_point(self, genome):
        once = encode_genome(genome)
        twice = encode_genome(decode_genome(once))
        assert once == twice

    @given(genome_strategy())
    @settings(max_examples=50, deadline=None)
    def test_wire_floats_counts_genes(self, genome):
        # 4 header words + 5 per node + 4 per connection
        expected = (
            4 + 5 * len(genome.nodes) + 4 * len(genome.connections)
        )
        assert genome_wire_floats(genome) == expected

    @given(st.lists(genome_strategy(), max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_batch_round_trip(self, batch):
        decoded = decode_genomes(encode_genomes(batch))
        assert len(decoded) == len(batch)
        for original, copy in zip(batch, decoded):
            assert encode_genome(original) == encode_genome(copy)
