"""Tests for the multiprocess worker pool (real transport)."""

import pytest

from repro.cluster.transport import WorkerPool
from repro.core.partition import round_robin
from repro.core.protocols import ProtocolBase
from repro.neat.config import NEATConfig
from repro.neat.population import Population

pytestmark = pytest.mark.lock_check


@pytest.fixture(scope="module")
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=12)


@pytest.fixture(scope="module")
def pool(config):
    with WorkerPool(
        3,
        "CartPole-v0",
        config,
        evaluator_seed=ProtocolBase.default_evaluator("CartPole-v0", 4).seed,
    ) as pool:
        yield pool


class TestWorkerPool:
    def test_evaluate_shards_covers_all_genomes(self, pool, config):
        population = Population(config, seed=4)
        genomes = sorted(population.genomes.values(), key=lambda g: g.key)
        shards = round_robin(genomes, pool.n_workers)
        replies = pool.evaluate_shards(shards, generation=0)
        merged = {}
        for reply in replies:
            merged.update(reply)
        assert set(merged) == set(population.genomes)

    def test_results_match_in_process_evaluation(self, pool, config):
        population = Population(config, seed=4)
        genomes = sorted(population.genomes.values(), key=lambda g: g.key)
        shards = round_robin(genomes, pool.n_workers)
        replies = pool.evaluate_shards(shards, generation=2)
        merged = {}
        for reply in replies:
            merged.update(reply)

        evaluator = ProtocolBase.default_evaluator("CartPole-v0", 4)
        for genome in genomes:
            local = evaluator.evaluate(genome, config, 2)
            remote = merged[genome.key]
            assert remote.fitness == local.fitness
            assert remote.steps == local.steps

    def test_empty_shards_skipped(self, pool, config):
        population = Population(config, seed=4)
        genomes = sorted(population.genomes.values(), key=lambda g: g.key)
        shards = [genomes, [], []]
        replies = pool.evaluate_shards(shards, generation=0)
        assert len(replies) == 1
        assert len(replies[0]) == len(genomes)

    def test_too_many_shards_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.evaluate_shards([[], [], [], []], generation=0)

    def test_broadcast_requires_payload_per_worker(self, pool):
        with pytest.raises(ValueError):
            pool.broadcast("clan_step", [0])


class TestLifecycle:
    def test_shutdown_is_idempotent(self, config):
        pool = WorkerPool(2, "CartPole-v0", config)
        pool.shutdown()
        pool.shutdown()

    def test_rejects_zero_workers(self, config):
        with pytest.raises(ValueError):
            WorkerPool(0, "CartPole-v0", config)

    def test_context_manager_cleans_up(self, config):
        with WorkerPool(2, "CartPole-v0", config) as pool:
            procs = list(pool._procs)
        for proc in procs:
            assert not proc.is_alive()
