"""Tests for species stagnation."""

import random

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.species import SpeciesSet
from repro.neat.stagnation import update_stagnation


def speciated_population(config, fitness_by_key, generation=0):
    rng = random.Random(0)
    population = {}
    for key, fitness in fitness_by_key.items():
        genome = Genome(key)
        genome.configure_new(config, rng)
        genome.fitness = fitness
        population[key] = genome
    species_set = SpeciesSet()
    species_set.speciate(population, generation, config, rng)
    return species_set


class TestStagnation:
    def config(self, **overrides):
        params = dict(num_inputs=2, num_outputs=1, max_stagnation=3,
                      species_elitism=0)
        params.update(overrides)
        return NEATConfig(**params)

    def test_fresh_species_not_stagnant(self):
        config = self.config()
        species_set = speciated_population(config, {0: 1.0, 1: 2.0})
        result = update_stagnation(species_set, 0, config)
        assert all(not stagnant for _sid, stagnant in result)

    def test_species_fitness_is_member_max(self):
        config = self.config()
        species_set = speciated_population(config, {0: 1.0, 1: 5.0})
        update_stagnation(species_set, 0, config)
        best = max(s.fitness for s in species_set.iter_species())
        assert best == 5.0

    def test_stagnant_after_no_improvement(self):
        config = self.config(max_stagnation=2, species_elitism=0)
        species_set = speciated_population(config, {0: 1.0, 1: 1.5})
        for generation in range(4):
            result = update_stagnation(species_set, generation, config)
        # fitness never improved after generation 0 -> stagnant
        assert any(stagnant for _sid, stagnant in result)

    def test_improvement_resets_clock(self):
        config = self.config(max_stagnation=2, species_elitism=0)
        species_set = speciated_population(config, {0: 1.0})
        update_stagnation(species_set, 0, config)
        species = next(species_set.iter_species())
        for generation in range(1, 5):
            # keep improving the species every generation
            for genome in species.members.values():
                genome.fitness += 1.0
            result = update_stagnation(species_set, generation, config)
            assert all(not stagnant for _sid, stagnant in result)

    def test_species_elitism_protects_best(self):
        config = self.config(max_stagnation=1, species_elitism=2)
        species_set = speciated_population(config, {0: 1.0, 1: 2.0})
        last = []
        for generation in range(5):
            last = update_stagnation(species_set, generation, config)
        if len(species_set.species) <= config.species_elitism:
            assert all(not stagnant for _sid, stagnant in last)

    def test_history_appended(self):
        config = self.config()
        species_set = speciated_population(config, {0: 1.0})
        update_stagnation(species_set, 0, config)
        update_stagnation(species_set, 1, config)
        species = next(species_set.iter_species())
        assert len(species.fitness_history) == 2
