"""Tests for the discrete-event primitives."""

import pytest

from repro.cluster.events import EventQueue, Resource


class TestEventQueue:
    def test_processes_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("b"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(3.0, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: order.append(1))
        queue.schedule(1.0, lambda: order.append(2))
        queue.run()
        assert order == [1, 2]

    def test_run_returns_final_clock(self):
        queue = EventQueue()
        queue.schedule(5.5, lambda: None)
        assert queue.run() == 5.5

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def first():
            queue.schedule(queue.now + 1.0, lambda: seen.append("second"))

        queue.schedule(1.0, first)
        final = queue.run()
        assert seen == ["second"]
        assert final == 2.0

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()

        def bad():
            queue.schedule(queue.now - 1.0, lambda: None)

        queue.schedule(5.0, bad)
        with pytest.raises(ValueError):
            queue.run()

    def test_processed_count(self):
        queue = EventQueue()
        for t in range(5):
            queue.schedule(float(t), lambda: None)
        queue.run()
        assert queue.processed == 5


class TestResource:
    def test_serialises_bookings(self):
        resource = Resource("radio")
        s1, e1 = resource.acquire(0.0, 2.0)
        s2, e2 = resource.acquire(0.0, 3.0)
        assert (s1, e1) == (0.0, 2.0)
        assert (s2, e2) == (2.0, 5.0)

    def test_waits_for_earliest(self):
        resource = Resource("radio")
        start, end = resource.acquire(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_busy_time_accumulates(self):
        resource = Resource("radio")
        resource.acquire(0.0, 2.0)
        resource.acquire(0.0, 3.0)
        assert resource.busy_time == 5.0

    def test_zero_duration_allowed(self):
        resource = Resource("marker")
        start, end = resource.acquire(1.0, 0.0)
        assert start == end == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Resource("x").acquire(0.0, -1.0)

    def test_utilisation(self):
        resource = Resource("radio")
        resource.acquire(0.0, 5.0)
        assert resource.utilisation(10.0) == 0.5
        assert resource.utilisation(0.0) == 0.0

    def test_utilisation_reports_overbooking(self):
        # regression: the ratio used to clamp at 1.0, hiding horizons
        # shorter than the booked busy time (a double-booking signal)
        resource = Resource("radio")
        resource.acquire(0.0, 5.0)
        resource.acquire(0.0, 5.0)
        assert resource.utilisation(10.0) == 1.0
        assert resource.utilisation(5.0) == 2.0
        assert resource.utilisation(8.0) == pytest.approx(1.25)
