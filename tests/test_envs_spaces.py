"""Tests for repro.envs.spaces."""

import random

import pytest

from repro.envs.spaces import Box, Discrete


class TestDiscrete:
    def test_contains_valid(self):
        space = Discrete(3)
        assert all(space.contains(i) for i in range(3))

    def test_excludes_out_of_range(self):
        space = Discrete(3)
        assert not space.contains(3)
        assert not space.contains(-1)

    def test_excludes_non_integers(self):
        space = Discrete(3)
        assert not space.contains(1.5)
        assert not space.contains("1")
        assert not space.contains(None)

    def test_excludes_bool(self):
        assert not Discrete(3).contains(True)

    def test_accepts_integral_float(self):
        assert Discrete(3).contains(2.0)

    def test_accepts_numpy_integers(self):
        # regression: a batched argmax emits np.int64 actions, which are
        # numbers.Integral but not Python int
        import numbers

        import numpy as np

        space = Discrete(3)
        for dtype in (np.int8, np.int16, np.int32, np.int64, np.uint8):
            assert space.contains(dtype(2))
            assert not space.contains(dtype(3))
        assert isinstance(np.int64(1), numbers.Integral)
        assert space.contains(np.asarray([0, 1, 2])[1])

    def test_excludes_numpy_bool(self):
        import numpy as np

        assert not Discrete(3).contains(np.bool_(True))

    def test_sample_in_range(self):
        space = Discrete(5)
        rng = random.Random(0)
        assert all(space.contains(space.sample(rng)) for _ in range(50))

    def test_flat_dim(self):
        assert Discrete(4).flat_dim == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_equality(self):
        assert Discrete(3) == Discrete(3)
        assert Discrete(3) != Discrete(4)

    def test_hashable(self):
        assert len({Discrete(2), Discrete(2), Discrete(3)}) == 2


class TestBox:
    def test_contains_inside(self):
        space = Box([-1, -1], [1, 1])
        assert space.contains((0.0, 0.5))

    def test_contains_boundary(self):
        space = Box([-1, -1], [1, 1])
        assert space.contains((1.0, -1.0))

    def test_excludes_outside(self):
        space = Box([-1, -1], [1, 1])
        assert not space.contains((1.1, 0.0))

    def test_excludes_wrong_dimension(self):
        space = Box([-1, -1], [1, 1])
        assert not space.contains((0.0,))
        assert not space.contains((0.0, 0.0, 0.0))

    def test_excludes_non_numeric(self):
        assert not Box([-1], [1]).contains(("a",))

    def test_sample_contained(self):
        space = Box([-2, 0], [2, 5])
        rng = random.Random(3)
        assert all(space.contains(space.sample(rng)) for _ in range(50))

    def test_uniform_constructor(self):
        space = Box.uniform(2.0, 3)
        assert space.low == (-2.0, -2.0, -2.0)
        assert space.high == (2.0, 2.0, 2.0)

    def test_flat_dim_and_shape(self):
        space = Box([-1] * 4, [1] * 4)
        assert space.flat_dim == 4
        assert space.shape == (4,)

    def test_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Box([-1, -1], [1])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Box([2], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Box([], [])

    def test_equality(self):
        assert Box([-1], [1]) == Box([-1], [1])
        assert Box([-1], [1]) != Box([-2], [1])
