"""Tests for the versioned champion registry (hot-swap + rollback)."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neat.config import NEATConfig
from repro.neat.population import Population
from repro.serve import ChampionRegistry, RegistryClosed

from tests.conftest import make_evolved_genome

pytestmark = pytest.mark.lock_check


@pytest.fixture
def config() -> NEATConfig:
    return NEATConfig.for_env("CartPole-v0", pop_size=8)


@pytest.fixture
def genomes(config):
    return [
        make_evolved_genome(config, seed=seed, mutations=25, key=seed)
        for seed in range(4)
    ]


class TestPublish:
    def test_versions_increment_from_one(self, config, genomes):
        registry = ChampionRegistry(config)
        assert registry.version == 0
        for i, genome in enumerate(genomes):
            record = registry.publish(genome)
            assert record.version == i + 1
        assert registry.version == len(genomes)

    def test_current_raises_before_first_publish(self, config):
        with pytest.raises(LookupError):
            ChampionRegistry(config).current()

    def test_publish_swaps_current(self, config, genomes):
        registry = ChampionRegistry(config)
        registry.publish(genomes[0])
        first = registry.current()
        registry.publish(genomes[1])
        assert registry.current().version == first.version + 1

    def test_record_is_precompiled_and_matches_scalar(
        self, config, genomes
    ):
        registry = ChampionRegistry(config)
        record = registry.publish(genomes[0])
        scalar = record.scalar_network()
        observations = [
            [0.1, -0.2, 0.3, -0.4],
            [1.0, 1.0, -1.0, 0.5],
        ]
        actions = record.network.policy_batch(observations)
        for i, obs in enumerate(observations):
            assert int(actions[i]) == scalar.policy(obs)

    def test_published_genome_is_decoupled_from_source(
        self, config, genomes
    ):
        registry = ChampionRegistry(config)
        source = genomes[0]
        record = registry.publish(source)
        assert record.genome is not source
        before = record.genome.gene_count()
        source.fitness = 123.0
        for gene in source.connections.values():
            gene.weight = 0.0
        assert record.genome.gene_count() == before
        assert any(
            gene.weight != 0.0
            for gene in record.genome.connections.values()
        )

    def test_fitness_defaults_to_genome_fitness(self, config, genomes):
        registry = ChampionRegistry(config)
        genomes[0].fitness = 17.5
        assert registry.publish(genomes[0]).fitness == 17.5

    def test_publish_from_background_threads(self, config):
        """Swaps are atomic: readers always see a complete record."""
        population = Population(config, seed=0)
        pool = list(population.genomes.values())
        registry = ChampionRegistry(config)
        registry.publish(pool[0])
        errors = []

        def writer(genome):
            try:
                registry.publish(genome)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(g,)) for g in pool[1:]
        ]
        for thread in threads:
            thread.start()
        for _ in range(100):
            record = registry.current()
            assert record.network.plan is record.plan
        for thread in threads:
            thread.join()
        assert not errors
        assert registry.version == len(pool)


class TestRollback:
    def test_rollback_restores_previous(self, config, genomes):
        registry = ChampionRegistry(config)
        registry.publish(genomes[0])
        registry.publish(genomes[1])
        restored = registry.rollback()
        assert restored.version == 1
        assert registry.current().version == 1

    def test_rolled_back_version_stays_resolvable(self, config, genomes):
        registry = ChampionRegistry(config)
        registry.publish(genomes[0])
        bad = registry.publish(genomes[1])
        registry.rollback()
        assert registry.record_for(bad.version).version == bad.version

    def test_rollback_without_history_raises(self, config, genomes):
        registry = ChampionRegistry(config)
        with pytest.raises(LookupError):
            registry.rollback()
        registry.publish(genomes[0])
        with pytest.raises(LookupError):
            registry.rollback()

    def test_rollback_depth_bounds_the_stack(self, config):
        population = Population(config, seed=0)
        registry = ChampionRegistry(config, rollback_depth=2)
        for genome in population.genomes.values():
            registry.publish(genome)
        registry.rollback()
        registry.rollback()
        with pytest.raises(LookupError):
            registry.rollback()

    def test_swaps_counts_promotions_and_rollbacks(self, config, genomes):
        registry = ChampionRegistry(config)
        assert registry.swaps == 0
        registry.publish(genomes[0])
        assert registry.swaps == 0  # first deploy is not a swap
        registry.publish(genomes[1])
        assert registry.swaps == 1
        registry.rollback()
        assert registry.swaps == 2


class TestClose:
    def test_publish_and_reads_refused_after_close(self, config, genomes):
        registry = ChampionRegistry(config)
        registry.publish(genomes[0])
        registry.close()
        assert registry.closed
        with pytest.raises(RegistryClosed):
            registry.publish(genomes[1])
        with pytest.raises(RegistryClosed):
            registry.current()
        with pytest.raises(RegistryClosed):
            registry.rollback()

    def test_record_for_survives_close_for_parity_checks(
        self, config, genomes
    ):
        registry = ChampionRegistry(config)
        record = registry.publish(genomes[0])
        registry.close()
        assert registry.record_for(record.version) is record

    def test_record_for_unknown_version_raises(self, config):
        with pytest.raises(LookupError):
            ChampionRegistry(config).record_for(1)


# -- deployment pub/sub -------------------------------------------------------

_SUB_CONFIG = NEATConfig.for_env("CartPole-v0", pop_size=8)
_SUB_GENOMES = [
    make_evolved_genome(_SUB_CONFIG, seed=seed, mutations=10, key=seed)
    for seed in range(3)
]


class TestSubscribe:
    def test_replays_current_deployment_on_subscribe(self, config, genomes):
        registry = ChampionRegistry(config)
        registry.publish(genomes[0])
        seen = []
        registry.subscribe(lambda seq, rec: seen.append((seq, rec.version)))
        assert seen == [(1, 1)]

    def test_no_replay_before_first_publish(self, config):
        registry = ChampionRegistry(config)
        seen = []
        registry.subscribe(lambda seq, rec: seen.append(seq))
        assert seen == []

    def test_replay_can_be_disabled(self, config, genomes):
        registry = ChampionRegistry(config)
        registry.publish(genomes[0])
        seen = []
        registry.subscribe(
            lambda seq, rec: seen.append(seq), replay_current=False
        )
        registry.publish(genomes[1])
        assert seen == [2]

    def test_rollback_raises_seq_but_lowers_version(self, config, genomes):
        registry = ChampionRegistry(config)
        seen = []
        registry.subscribe(lambda seq, rec: seen.append((seq, rec.version)))
        registry.publish(genomes[0])
        registry.publish(genomes[1])
        registry.rollback()
        assert seen == [(1, 1), (2, 2), (3, 1)]
        assert registry.seq == 3
        assert registry.version == 1

    def test_unsubscribe_stops_deliveries(self, config, genomes):
        registry = ChampionRegistry(config)
        seen = []
        subscription = registry.subscribe(
            lambda seq, rec: seen.append(seq), replay_current=False
        )
        registry.publish(genomes[0])
        registry.unsubscribe(subscription)
        registry.unsubscribe(subscription)  # idempotent
        registry.publish(genomes[1])
        assert seen == [1]

    def test_subscribe_after_close_raises(self, config):
        registry = ChampionRegistry(config)
        registry.close()
        with pytest.raises(RegistryClosed):
            registry.subscribe(lambda seq, rec: None)


class TestSubscriberOrderingProperty:
    """ISSUE acceptance: interleaved publish/rollback/subscribe
    sequences never deliver deployments out of order to any
    subscriber."""

    @given(
        ops=st.lists(
            st.sampled_from(["publish", "rollback", "subscribe"]),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_every_subscriber_sees_its_suffix_in_seq_order(self, ops):
        registry = ChampionRegistry(_SUB_CONFIG)
        log = []  # every deployment, as (seq, version)
        subscribers = []  # (seq at subscribe, delivered list)
        current_version = None
        for index, op in enumerate(ops):
            if op == "publish":
                record = registry.publish(
                    _SUB_GENOMES[index % len(_SUB_GENOMES)]
                )
                current_version = record.version
                log.append((registry.seq, record.version))
            elif op == "rollback":
                try:
                    record = registry.rollback()
                except LookupError:
                    continue  # nothing deployed before the current one
                current_version = record.version
                log.append((registry.seq, record.version))
            else:
                delivered = []
                subscribers.append(
                    (registry.seq, current_version, delivered)
                )
                registry.subscribe(
                    lambda seq, rec, d=delivered: d.append(
                        (seq, rec.version)
                    )
                )
        for at_seq, version_at_subscribe, delivered in subscribers:
            seqs = [seq for seq, _ in delivered]
            # strictly increasing: never out of order, never duplicated
            assert seqs == sorted(set(seqs))
            replay = (
                [(at_seq, version_at_subscribe)]
                if version_at_subscribe is not None
                else []
            )
            expected = replay + [
                (seq, version) for seq, version in log if seq > at_seq
            ]
            assert delivered == expected


class TestSubscriberOrderingThreaded:
    def test_concurrent_publishers_deliver_in_one_global_order(
        self, config
    ):
        registry = ChampionRegistry(config)
        genomes = [
            make_evolved_genome(config, seed=seed, mutations=5, key=seed)
            for seed in range(8)
        ]
        delivered = []
        registry.subscribe(
            lambda seq, rec: delivered.append((seq, rec.version))
        )

        def publisher(worker_genomes):
            for genome in worker_genomes:
                registry.publish(genome)

        threads = [
            threading.Thread(target=publisher, args=(genomes[:4],)),
            threading.Thread(target=publisher, args=(genomes[4:],)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = [seq for seq, _ in delivered]
        # one global order: every deployment delivered exactly once,
        # in strictly increasing seq order, regardless of which
        # publisher thread drained the queue
        assert seqs == list(range(1, 9))
        versions = sorted(version for _, version in delivered)
        assert versions == list(range(1, 9))
