"""Tests for genome evaluation against environments."""

import pytest

from repro.neat.config import NEATConfig
from repro.neat.evaluation import GenomeEvaluator
from repro.neat.population import Population


@pytest.fixture
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=10)


@pytest.fixture
def genome(config):
    return next(iter(Population(config, seed=0).genomes.values()))


class TestGenomeEvaluator:
    def test_deterministic_per_generation(self, config, genome):
        evaluator = GenomeEvaluator("CartPole-v0", seed=5)
        a = evaluator.evaluate(genome, config, generation=3)
        b = evaluator.evaluate(genome, config, generation=3)
        assert a.fitness == b.fitness
        assert a.steps == b.steps

    def test_generations_use_different_episodes(self, config, genome):
        evaluator = GenomeEvaluator("CartPole-v0", seed=5)
        seeds = {
            evaluator.episode_seed(generation, 0) for generation in range(10)
        }
        assert len(seeds) == 10

    def test_steps_positive(self, config, genome):
        evaluator = GenomeEvaluator("CartPole-v0", seed=5)
        result = evaluator.evaluate(genome, config, 0)
        assert result.steps >= 1

    def test_single_step_mode(self, config, genome):
        evaluator = GenomeEvaluator("CartPole-v0", max_steps=1, seed=5)
        result = evaluator.evaluate(genome, config, 0)
        assert result.steps == 1

    def test_multiple_episodes_average(self, config, genome):
        one = GenomeEvaluator("CartPole-v0", episodes=1, seed=5)
        three = GenomeEvaluator("CartPole-v0", episodes=3, seed=5)
        r1 = one.evaluate(genome, config, 0)
        r3 = three.evaluate(genome, config, 0)
        assert r3.steps >= r1.steps  # steps accumulate over episodes

    def test_solved_flag_uses_reward_not_shaping(self, config):
        evaluator = GenomeEvaluator("MountainCar-v0", seed=5)
        mc_config = NEATConfig.for_env("MountainCar-v0", pop_size=10)
        genome = next(
            iter(Population(mc_config, seed=0).genomes.values())
        )
        result = evaluator.evaluate(genome, mc_config, 0)
        # a random initial genome never solves MountainCar
        assert not result.solved

    def test_invalid_episode_count(self):
        with pytest.raises(ValueError):
            GenomeEvaluator("CartPole-v0", episodes=0)

    def test_result_carries_genome_key(self, config, genome):
        evaluator = GenomeEvaluator("CartPole-v0", seed=5)
        assert evaluator.evaluate(genome, config, 0).genome_key == genome.key
