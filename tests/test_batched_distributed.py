"""The batched backend through the distributed stack.

Backend choice must never change results — only wall-clock. These tests run
the real multiprocess pool and runtimes with ``backend="batched"`` (workers
evaluating shipped pre-compiled plans) and assert trajectories identical to
the scalar backend.
"""

from __future__ import annotations

import pytest

from repro.cluster.runtime import (
    DistributedClanRuntime,
    ParallelInferenceRuntime,
)
from repro.cluster.transport import WorkerPool
from repro.core.protocols import SerialNEAT
from repro.neat.config import NEATConfig
from repro.neat.network import compile_batched

from tests.conftest import make_evolved_genome


@pytest.fixture
def config() -> NEATConfig:
    return NEATConfig.for_env("CartPole-v0", pop_size=24)


class TestWorkerPoolBatched:
    def test_shipped_plans_match_scalar_results(self, config):
        genomes = [
            make_evolved_genome(config, seed=s, mutations=20, key=s)
            for s in range(6)
        ]
        shards = [genomes[:3], genomes[3:]]
        with WorkerPool(
            2, "CartPole-v0", config, evaluator_seed=7, backend="scalar"
        ) as pool:
            scalar_replies = pool.evaluate_shards(shards, generation=1)
        plans = [
            [compile_batched(g, config) for g in shard] for shard in shards
        ]
        with WorkerPool(
            2, "CartPole-v0", config, evaluator_seed=7, backend="batched"
        ) as pool:
            batched_replies = pool.evaluate_shards(
                shards, generation=1, plans=plans
            )
        assert scalar_replies == batched_replies

    def test_plan_shard_count_mismatch_rejected(self, config):
        genomes = [
            make_evolved_genome(config, seed=s, mutations=10, key=s)
            for s in range(2)
        ]
        with WorkerPool(2, "CartPole-v0", config) as pool:
            with pytest.raises(ValueError):
                pool.evaluate_shards(
                    [genomes, []],
                    generation=0,
                    plans=[[compile_batched(genomes[0], config)]],
                )


class TestRuntimesBatched:
    def test_parallel_inference_matches_serial_protocol(self, config):
        serial = SerialNEAT("CartPole-v0", config=config, seed=3)
        expected = [serial.run_generation().best_fitness for _ in range(2)]
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=2, config=config, seed=3,
            backend="batched",
        ) as runtime:
            stats = runtime.run(max_generations=2, fitness_threshold=1e9)
        assert stats.best_fitness_per_generation == expected

    def test_distributed_clans_batched_matches_scalar(self, config):
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=5,
            backend="scalar",
        ) as runtime:
            scalar_stats = runtime.run(
                max_generations=2, fitness_threshold=1e9
            )
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=5,
            backend="batched",
        ) as runtime:
            batched_stats = runtime.run(
                max_generations=2, fitness_threshold=1e9
            )
        assert (
            scalar_stats.best_fitness_per_generation
            == batched_stats.best_fitness_per_generation
        )
