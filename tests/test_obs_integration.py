"""Integration tests for tracing: engines, processes, CLI, determinism."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.cli import main
from repro.cluster.runtime import DistributedClanRuntime
from repro.core.protocols import make_protocol
from repro.neat.config import NEATConfig
from repro.obs import tracer as obs
from repro.obs.export import to_chrome_trace
from repro.obs.tracer import Tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.deactivate()
    yield
    obs.deactivate()


@pytest.fixture(scope="module")
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=24)


class TestLogicalEngineSpans:
    def test_dda_run_records_one_track_per_clan(self, config):
        tracer = Tracer(track="driver")
        obs.activate(tracer)
        engine = make_protocol(
            "CLAN_DDA", "CartPole-v0", n_agents=3, config=config,
            seed=8, resync_period=2,
        )
        engine.run(max_generations=3, fitness_threshold=1e9)
        events = tracer.events()
        tracks = {e.track for e in events}
        assert {"driver", "clan:0", "clan:1", "clan:2"} <= tracks
        names = {e.name for e in events}
        assert {
            "generation", "evaluate", "speciate", "reproduce", "resync"
        } <= names
        # every clan records the full phase cycle for every generation
        for clan in range(3):
            track = f"clan:{clan}"
            for phase in ("evaluate", "speciate", "reproduce"):
                gens = [
                    e.args["gen"]
                    for e in events
                    if e.track == track and e.name == phase
                ]
                assert gens == [0, 1, 2]

    def test_phases_nest_under_generation(self, config):
        tracer = Tracer(track="driver")
        obs.activate(tracer)
        engine = make_protocol(
            "CLAN_DDA", "CartPole-v0", n_agents=2, config=config, seed=8
        )
        engine.run(max_generations=1, fitness_threshold=1e9)
        phases = [
            e for e in tracer.events()
            if e.name in ("evaluate", "speciate", "reproduce")
        ]
        assert phases
        assert all(e.parent == "generation" for e in phases)
        assert all(e.depth == 1 for e in phases)


class TestDeterminism:
    def test_tracing_leaves_results_byte_identical(self, config):
        """Recording spans must not touch any RNG stream."""

        def run_once():
            engine = make_protocol(
                "CLAN_DDA", "CartPole-v0", n_agents=3, config=config,
                seed=8, resync_period=2,
            )
            result = engine.run(
                max_generations=3, fitness_threshold=1e9
            )
            return pickle.dumps(
                (result.records, engine.best_fitness)
            )

        untraced = run_once()
        obs.activate(Tracer(track="driver"))
        traced = run_once()
        obs.deactivate()
        assert traced == untraced

    def test_disabled_tracer_is_also_byte_identical(self, config):
        def run_once():
            engine = make_protocol(
                "Serial", "CartPole-v0", config=config, seed=8
            )
            result = engine.run(max_generations=2, fitness_threshold=1e9)
            return pickle.dumps(result.records)

        baseline = run_once()
        obs.activate(Tracer(track="driver", enabled=False))
        disabled = run_once()
        obs.deactivate()
        assert disabled == baseline


class TestCrossProcessMerge:
    def test_run_async_merges_worker_spans_in_order(self, config):
        """Worker clans ship span batches over their pipes; the merged
        trace keeps each clan's generations in arrival (FIFO) order."""
        tracer = Tracer(track="driver")
        obs.activate(tracer)
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        ) as runtime:
            runtime.run_async(max_generations=3, fitness_threshold=1e9)
        events = tracer.events()
        tracks = {e.track for e in events}
        # barrier-free clans never synchronise on the driver, so the
        # merged trace is purely worker-produced: one track per clan
        assert {"clan:0", "clan:1"} <= tracks
        for clan in range(2):
            for phase in ("evaluate", "speciate", "reproduce"):
                gens = [
                    e.args["gen"]
                    for e in events
                    if e.track == f"clan:{clan}" and e.name == phase
                ]
                assert gens == [0, 1, 2]

    def test_untraced_run_ships_no_spans(self, config):
        assert obs.current() is None
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8
        ) as runtime:
            stats = runtime.run_async(
                max_generations=1, fitness_threshold=1e9
            )
        assert stats.generations == 1


class TestCliFlags:
    def test_learn_writes_all_three_sinks(self, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        code = main([
            "learn", "CartPole-v0", "--protocol", "CLAN_DDA",
            "--agents", "4",
            "--devices", "jetson_nano,raspberry_pi,pi_zero,raspberry_pi",
            "--pop", "32", "--generations", "2", "--sim-mode", "async",
            "--trace-out", str(jsonl),
            "--chrome-trace", str(chrome),
            "--metrics-out", str(prom),
        ])
        assert code == 0
        # one JSONL line per event
        lines = jsonl.read_text().strip().splitlines()
        assert lines
        assert all("name" in json.loads(line) for line in lines)
        # the chrome trace has one named track per clan plus the driver
        doc = json.loads(chrome.read_text())
        track_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert {
            "driver", "clan:0", "clan:1", "clan:2", "clan:3"
        } <= track_names
        # prometheus text exposition with evolve metrics
        text = prom.read_text()
        assert "# TYPE repro_evolve_generations_total counter" in text
        assert "repro_plan_cache_hit_rate" in text
        out = capsys.readouterr().out
        assert "chrome trace saved" in out
        # the CLI deactivated its tracer on the way out
        assert obs.current() is None

    def test_learn_without_flags_stays_untraced(self, tmp_path, capsys):
        code = main([
            "learn", "CartPole-v0", "--protocol", "Serial",
            "--pop", "24", "--generations", "1",
        ])
        assert code == 0
        assert obs.current() is None
        assert "trace" not in capsys.readouterr().out


class TestChromeExportOfRealRun:
    def test_engine_trace_renders_to_valid_chrome_json(self, config):
        tracer = Tracer(track="driver")
        obs.activate(tracer)
        engine = make_protocol(
            "CLAN_DDA", "CartPole-v0", n_agents=2, config=config, seed=8
        )
        engine.run(max_generations=2, fitness_threshold=1e9)
        doc = to_chrome_trace(tracer.events(), dropped=tracer.dropped)
        json.dumps(doc)  # serialisable end to end
        complete = [
            e for e in doc["traceEvents"] if e["ph"] == "X"
        ]
        assert complete
        assert all(e["dur"] >= 0 for e in complete)
        assert min(e["ts"] for e in complete) == 0.0
