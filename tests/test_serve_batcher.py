"""Micro-batch parity and coalescing behaviour.

The core invariant (an ISSUE acceptance criterion): for *any*
interleaving of requests, the actions a :class:`MicroBatcher` returns are
identical to running each request alone through the champion's scalar
``FeedForwardNetwork.activate`` — micro-batching is invisible to callers.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neat.config import NEATConfig
from repro.neat.network import (
    BatchedFeedForwardNetwork,
    FeedForwardNetwork,
)
from repro.serve import MicroBatcher, Overloaded, ServiceClosed

from tests.conftest import make_evolved_genome

pytestmark = pytest.mark.lock_check

CONFIG = NEATConfig.for_env("CartPole-v0")
CHAMPION = make_evolved_genome(CONFIG, seed=5, mutations=40, key=1)
BATCHED = BatchedFeedForwardNetwork.create(CHAMPION, CONFIG)

#: the batcher's execution hook: one registry-snapshot-like closure
_INFER = lambda observations: (1, BATCHED.policy_batch(observations))


def _scalar_actions(observations):
    """Per-request reference: a fresh interpreter per call site."""
    scalar = FeedForwardNetwork.create(CHAMPION, CONFIG)
    return [scalar.policy(obs) for obs in observations]


observation = st.lists(
    st.floats(
        min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
    ),
    min_size=4,
    max_size=4,
)
#: an interleaving: bursts of concurrent submits separated by loop yields
interleaving = st.lists(
    st.lists(observation, min_size=1, max_size=5),
    min_size=1,
    max_size=6,
)


async def _drive(rounds, max_batch, max_wait_s):
    batcher = MicroBatcher(
        _INFER, max_batch=max_batch, max_wait_s=max_wait_s
    )
    await batcher.start()
    tasks = []
    for burst in rounds:
        for obs in burst:
            tasks.append(asyncio.ensure_future(batcher.submit(obs)))
        # yield between bursts so flushes interleave with arrivals
        await asyncio.sleep(0)
    results = await asyncio.gather(*tasks)
    await batcher.close()
    return results, batcher


class TestParityProperty:
    @given(
        rounds=interleaving,
        max_batch=st.integers(min_value=1, max_value=8),
        max_wait_s=st.sampled_from([0.0, 0.0005, 0.003]),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_any_interleaving_matches_scalar_inference(
        self, rounds, max_batch, max_wait_s
    ):
        results, _ = asyncio.run(_drive(rounds, max_batch, max_wait_s))
        flat = [obs for burst in rounds for obs in burst]
        expected = _scalar_actions(flat)
        assert [served.action for served in results] == expected

    @given(rounds=interleaving)
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_every_request_is_answered_exactly_once(self, rounds):
        results, batcher = asyncio.run(_drive(rounds, 4, 0.0005))
        n = sum(len(burst) for burst in rounds)
        assert len(results) == n
        assert batcher.served == n
        assert sum(
            size * count
            for size, count in batcher.batch_size_histogram.items()
        ) == n


class TestCoalescing:
    def test_concurrent_burst_coalesces_into_one_batch(self):
        async def run():
            batcher = MicroBatcher(_INFER, max_batch=16, max_wait_s=0.05)
            await batcher.start()
            observations = [[0.1 * i, 0.0, 0.0, 0.0] for i in range(10)]
            results = await asyncio.gather(
                *(batcher.submit(obs) for obs in observations)
            )
            await batcher.close()
            return results, batcher

        results, batcher = asyncio.run(run())
        assert batcher.batch_size_histogram == {10: 1}
        assert all(served.batch_size == 10 for served in results)

    def test_max_batch_caps_flush_size(self):
        async def run():
            batcher = MicroBatcher(_INFER, max_batch=4, max_wait_s=0.05)
            await batcher.start()
            observations = [[0.0, 0.0, 0.0, 0.0]] * 10
            await asyncio.gather(
                *(batcher.submit(obs) for obs in observations)
            )
            await batcher.close()
            return batcher

        batcher = asyncio.run(run())
        assert max(batcher.batch_size_histogram) <= 4

    def test_zero_wait_still_batches_queued_requests(self):
        """max_wait_s=0 flushes whatever is already queued — latency
        floor without losing burst coalescing."""

        async def run():
            batcher = MicroBatcher(_INFER, max_batch=32, max_wait_s=0.0)
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.submit([0.0] * 4) for _ in range(8))
            )
            await batcher.close()
            return results

        results = asyncio.run(run())
        assert len(results) == 8

    def test_latency_is_recorded_per_request(self):
        async def run():
            batcher = MicroBatcher(_INFER, max_batch=8, max_wait_s=0.001)
            await batcher.start()
            await asyncio.gather(
                *(batcher.submit([0.0] * 4) for _ in range(6))
            )
            await batcher.close()
            return batcher

        batcher = asyncio.run(run())
        assert len(batcher.latencies_s) == 6
        assert all(latency >= 0 for latency in batcher.latencies_s)


class TestBackpressure:
    def test_overflow_is_shed_and_counted(self):
        async def run():
            batcher = MicroBatcher(
                _INFER, max_batch=4, max_wait_s=0.01, max_pending=3
            )
            await batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit([0.0] * 4))
                for _ in range(10)
            ]
            outcomes = await asyncio.gather(
                *tasks, return_exceptions=True
            )
            await batcher.close()
            return outcomes, batcher

        outcomes, batcher = asyncio.run(run())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert batcher.shed == len(shed) > 0
        assert batcher.served == len(served) > 0
        assert len(shed) + len(served) == 10

    def test_submit_after_close_raises(self):
        async def run():
            batcher = MicroBatcher(_INFER)
            await batcher.start()
            await batcher.close()
            with pytest.raises(ServiceClosed):
                await batcher.submit([0.0] * 4)

        asyncio.run(run())

    def test_infer_failure_propagates_to_every_request(self):
        def broken(observations):
            raise RuntimeError("backend exploded")

        async def run():
            batcher = MicroBatcher(broken, max_batch=4, max_wait_s=0.01)
            await batcher.start()
            outcomes = await asyncio.gather(
                *(batcher.submit([0.0] * 4) for _ in range(3)),
                return_exceptions=True,
            )
            await batcher.close()
            return outcomes

        outcomes = asyncio.run(run())
        assert len(outcomes) == 3
        assert all(isinstance(o, RuntimeError) for o in outcomes)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(_INFER, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(_INFER, max_wait_s=-1.0)

    def test_malformed_observation_fails_only_its_batch(self):
        """Regression: a ragged observation must not kill the collector
        task (which would hang every other in-flight request forever)."""

        async def run():
            batcher = MicroBatcher(_INFER, max_batch=8, max_wait_s=0.01)
            await batcher.start()
            outcomes = await asyncio.gather(
                batcher.submit([0.1, 0.2, 0.3, 0.4]),
                batcher.submit([0.1, 0.2]),  # wrong arity
                return_exceptions=True,
            )
            # the collector survived: later requests still get answers
            later = await batcher.submit([0.5, 0.5, 0.5, 0.5])
            await batcher.close()
            return outcomes, later

        outcomes, later = asyncio.run(run())
        assert any(isinstance(o, Exception) for o in outcomes)
        assert later.action in (0, 1)


class TestReconfigure:
    def test_rejects_invalid_values(self):
        batcher = MicroBatcher(_INFER, max_batch=8, max_wait_s=0.001)
        with pytest.raises(ValueError):
            batcher.reconfigure(max_batch=0)
        with pytest.raises(ValueError):
            batcher.reconfigure(max_wait_s=-0.001)

    def test_invalid_pair_leaves_knobs_untouched(self):
        # both values are validated before either is applied: a good
        # max_wait_s riding along with a bad max_batch must not land
        batcher = MicroBatcher(_INFER, max_batch=8, max_wait_s=0.001)
        with pytest.raises(ValueError):
            batcher.reconfigure(max_batch=0, max_wait_s=0.5)
        assert batcher.max_batch == 8
        assert batcher.max_wait_s == 0.001

    def test_partial_update_keeps_other_knob(self):
        batcher = MicroBatcher(_INFER, max_batch=8, max_wait_s=0.001)
        batcher.reconfigure(max_batch=32)
        assert batcher.max_batch == 32
        assert batcher.max_wait_s == 0.001
        batcher.reconfigure(max_wait_s=0.002)
        assert batcher.max_batch == 32
        assert batcher.max_wait_s == 0.002

    def test_zero_wait_is_a_valid_live_value(self):
        batcher = MicroBatcher(_INFER, max_batch=8, max_wait_s=0.001)
        batcher.reconfigure(max_wait_s=0.0)
        assert batcher.max_wait_s == 0.0

    def test_live_shrink_caps_subsequent_batches(self):
        async def run():
            batcher = MicroBatcher(
                _INFER, max_batch=64, max_wait_s=0.002
            )
            await batcher.start()
            first = [
                asyncio.ensure_future(batcher.submit([0.1] * 4))
                for _ in range(32)
            ]
            await asyncio.gather(*first)
            # shrink mid-traffic: takes effect from the next batch
            batcher.reconfigure(max_batch=4, max_wait_s=0.001)
            second = [
                asyncio.ensure_future(batcher.submit([0.2] * 4))
                for _ in range(32)
            ]
            results = await asyncio.gather(*second)
            await batcher.close()
            return results, batcher

        results, batcher = asyncio.run(run())
        assert all(r.batch_size <= 4 for r in results)
        assert batcher.served == 64

    def test_reconfigured_traffic_keeps_scalar_parity(self):
        async def run():
            batcher = MicroBatcher(
                _INFER, max_batch=2, max_wait_s=0.0005
            )
            await batcher.start()
            observations = [
                [0.1 * i, -0.2, 0.3, 0.05 * i] for i in range(40)
            ]
            tasks = []
            for i, obs in enumerate(observations):
                if i == 20:  # widen mid-stream
                    batcher.reconfigure(max_batch=16, max_wait_s=0.002)
                tasks.append(
                    asyncio.ensure_future(batcher.submit(obs))
                )
            results = await asyncio.gather(*tasks)
            await batcher.close()
            return observations, results

        observations, results = asyncio.run(run())
        expected = _scalar_actions(observations)
        assert [r.action for r in results] == expected
