"""Tests for population/agent partitioning helpers."""

import pytest

from repro.core.partition import assign_genomes, contiguous_blocks, round_robin


class TestRoundRobin:
    def test_deals_in_order(self):
        assert round_robin([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_balanced_within_one(self):
        shards = round_robin(list(range(17)), 5)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard(self):
        assert round_robin([1, 2], 1) == [[1, 2]]

    def test_more_shards_than_items(self):
        shards = round_robin([1], 3)
        assert shards == [[1], [], []]

    def test_empty_items(self):
        assert round_robin([], 2) == [[], []]

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            round_robin([1], 0)

    def test_preserves_all_items(self):
        items = list(range(23))
        shards = round_robin(items, 4)
        assert sorted(x for s in shards for x in s) == items


class TestContiguousBlocks:
    def test_contiguity(self):
        blocks = contiguous_blocks(list(range(10)), 3)
        assert blocks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_sizes_within_one(self):
        blocks = contiguous_blocks(list(range(150)), 16)
        sizes = [len(b) for b in blocks]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 150

    def test_exact_division(self):
        blocks = contiguous_blocks(list(range(8)), 4)
        assert all(len(b) == 2 for b in blocks)

    def test_single_block(self):
        assert contiguous_blocks([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            contiguous_blocks([1], 0)


class TestAssignGenomes:
    def test_round_robin_over_sorted_keys(self):
        mapping = assign_genomes([5, 3, 1, 4, 2], 2)
        assert mapping == {1: 0, 2: 1, 3: 0, 4: 1, 5: 0}

    def test_insensitive_to_input_order(self):
        a = assign_genomes([3, 1, 2], 2)
        b = assign_genomes([1, 2, 3], 2)
        assert a == b

    def test_all_agents_used(self):
        mapping = assign_genomes(range(10), 3)
        assert set(mapping.values()) == {0, 1, 2}
