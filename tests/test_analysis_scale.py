"""Tests for benchmark scale presets."""

import pytest

from repro.analysis.scale import bench_scale


class TestBenchScale:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_scale().name == "quick"

    def test_paper_preset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        scale = bench_scale()
        assert scale.name == "paper"
        assert scale.pop_size == 150  # the paper's population
        assert scale.fig7b_env == "LunarLander-v2"
        assert scale.fig7b_runs == 10

    def test_unknown_preset_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError, match="quick"):
            bench_scale()

    def test_quick_grids_match_paper_axes(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        scale = bench_scale()
        # Fig 7b x-axis: 1, 2, 4, 8, 16 clans
        assert scale.fig7b_clans == (1, 2, 4, 8, 16)
        # Fig 9 extrapolation reaches 100 units
        assert max(scale.fig9_plot_grid_single) == 100

    def test_workloads_omit_amidar(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert "Amidar-ram-v0" not in bench_scale().workloads
