"""Tests for speciation."""

import random

import pytest

from repro.neat.genome import Genome
from repro.neat.species import DistanceCache, SpeciesSet

from tests.conftest import make_evolved_genome


def make_population(config, n, seed=0):
    rng = random.Random(seed)
    population = {}
    for key in range(n):
        genome = Genome(key)
        genome.configure_new(config, rng)
        genome.fitness = float(key)
        population[key] = genome
    return population


class TestDistanceCache:
    def test_caches_symmetric_pairs(self, small_config):
        population = make_population(small_config, 2)
        cache = DistanceCache(small_config)
        d1 = cache(population[0], population[1])
        d2 = cache(population[1], population[0])
        assert d1 == d2
        assert cache.stats.comparisons == 1

    def test_counts_genes_compared(self, small_config):
        population = make_population(small_config, 2)
        cache = DistanceCache(small_config)
        cache(population[0], population[1])
        expected = population[0].gene_count() + population[1].gene_count()
        assert cache.stats.genes_compared == expected

    def test_pair_stored_once_under_normalised_key(self, small_config):
        """Regression: each pair used to be stored under both (a, b)
        and (b, a), doubling the memo footprint per speciation pass."""
        population = make_population(small_config, 3)
        cache = DistanceCache(small_config)
        cache(population[0], population[1])
        assert len(cache.distances) == 1
        assert (0, 1) in cache.distances
        cache(population[2], population[1])
        assert len(cache.distances) == 2
        assert (1, 2) in cache.distances

    def test_hit_accounting(self, small_config):
        population = make_population(small_config, 2)
        cache = DistanceCache(small_config)
        cache(population[0], population[1])
        assert cache.stats.cache_hits == 0
        cache(population[0], population[1])
        cache(population[1], population[0])
        assert cache.stats.cache_hits == 2
        assert cache.stats.comparisons == 1

    def test_batch_computes_anchor_first_and_memoises(self, small_config):
        """batch() keeps the historical anchor-first operand order and
        answers repeated pairs from the memo."""
        population = make_population(small_config, 4)
        cache = DistanceCache(small_config)
        genomes = [population[1], population[2], population[3]]
        forward = cache.batch(population[0], genomes)
        assert forward == [
            population[0].distance(g, small_config) for g in genomes
        ]
        assert cache.stats.comparisons == 3
        again = cache.batch(population[0], genomes)
        assert again == forward
        assert cache.stats.comparisons == 3
        assert cache.stats.cache_hits == 3


class TestSpeciation:
    def test_partitions_whole_population(self, small_config):
        population = make_population(small_config, 12)
        species_set = SpeciesSet()
        species_set.speciate(
            population, 0, small_config, random.Random(0)
        )
        assert species_set.total_members() == 12
        assert set(species_set.genome_to_species) == set(population)

    def test_similar_genomes_one_species(self, small_config):
        population = make_population(small_config, 10)
        species_set = SpeciesSet()
        stats = species_set.speciate(
            population, 0, small_config, random.Random(0)
        )
        # identical topology + similar weights: few species
        assert stats.n_species <= 3

    def test_divergent_genomes_split_species(self, small_config):
        population = make_population(small_config, 4)
        # make two genomes structurally alien
        for key in (2, 3):
            population[key] = make_evolved_genome(
                small_config, seed=key, mutations=60, key=key
            )
            population[key].fitness = float(key)
        config = small_config.evolve_with(compatibility_threshold=1.0)
        species_set = SpeciesSet()
        stats = species_set.speciate(population, 0, config, random.Random(0))
        assert stats.n_species >= 2

    def test_species_membership_consistent(self, small_config):
        population = make_population(small_config, 8)
        species_set = SpeciesSet()
        species_set.speciate(population, 0, small_config, random.Random(0))
        for species_id, species in species_set.species.items():
            for key in species.members:
                assert species_set.species_of(key) == species_id

    def test_representatives_are_members(self, small_config):
        population = make_population(small_config, 8)
        species_set = SpeciesSet()
        species_set.speciate(population, 0, small_config, random.Random(0))
        for species in species_set.iter_species():
            assert species.representative.key in species.members

    def test_respeciation_keeps_species_ids_stable(self, small_config):
        population = make_population(small_config, 8)
        species_set = SpeciesSet()
        species_set.speciate(population, 0, small_config, random.Random(0))
        ids_before = set(species_set.species)
        # same population next generation: species survive under same ids
        species_set.speciate(population, 1, small_config, random.Random(1))
        assert set(species_set.species) == ids_before

    def test_empty_population_rejected(self, small_config):
        with pytest.raises(ValueError):
            SpeciesSet().speciate({}, 0, small_config, random.Random(0))

    def test_remove_species(self, small_config):
        population = make_population(small_config, 8)
        species_set = SpeciesSet()
        species_set.speciate(population, 0, small_config, random.Random(0))
        target = next(iter(species_set.species))
        members = set(species_set.species[target].members)
        species_set.remove_species(target)
        assert target not in species_set.species
        for key in members:
            assert species_set.species_of(key) is None

    def test_get_fitnesses_requires_evaluation(self, small_config):
        population = make_population(small_config, 4)
        population[0].fitness = None
        species_set = SpeciesSet()
        species_set.speciate(population, 0, small_config, random.Random(0))
        species = species_set.species[
            species_set.species_of(0)
        ]
        with pytest.raises(ValueError):
            species.get_fitnesses()


class TestSpeciesIdStriding:
    def test_clan_species_ids_disjoint(self, small_config):
        populations = [
            make_population(small_config, 6, seed=i) for i in range(3)
        ]
        all_ids = set()
        for clan_id, population in enumerate(populations):
            species_set = SpeciesSet(
                species_id_offset=clan_id, species_id_stride=3
            )
            species_set.speciate(
                population, 0, small_config, random.Random(clan_id)
            )
            ids = set(species_set.species)
            assert not ids & all_ids
            all_ids |= ids

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            SpeciesSet(species_id_stride=0)
