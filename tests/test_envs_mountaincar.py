"""Physics tests for MountainCar-v0."""

import pytest

from repro.envs.base import rollout
from repro.envs.mountaincar import MountainCarEnv


class TestMountainCarPhysics:
    def test_starts_in_valley(self):
        env = MountainCarEnv(seed=4)
        position, velocity = env.reset()
        assert -0.6 <= position <= -0.4
        assert velocity == 0.0

    def test_velocity_clamped(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        for _ in range(100):
            obs, _r, done, _i = env.step(2)
            assert abs(obs[1]) <= env.MAX_SPEED + 1e-12
            if done:
                break

    def test_position_clamped_left(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        for _ in range(200):
            obs, _r, done, _i = env.step(0)
            assert obs[0] >= env.MIN_POSITION
            if done:
                break

    def test_reward_is_minus_one_per_step(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        _obs, reward, _d, _i = env.step(1)
        assert reward == -1.0

    def test_constant_push_fails_to_reach_goal(self):
        # the car is under-powered: pushing right alone cannot summit
        env = MountainCarEnv(seed=0)
        result = rollout(env, lambda obs: 2, seed=1)
        assert not result.terminated
        assert result.total_reward == -200.0

    def test_oscillation_policy_reaches_goal(self):
        # push in the direction of motion: the textbook solution
        env = MountainCarEnv(seed=0)

        def policy(obs):
            return 2 if obs[1] >= 0 else 0

        result = rollout(env, policy, seed=1)
        assert result.terminated
        assert result.steps < 200

    def test_shaping_rewards_progress(self):
        env = MountainCarEnv(seed=0)
        lazy = rollout(env, lambda obs: 1, seed=1)

        def energetic(obs):
            return 2 if obs[1] >= 0 else 0

        env2 = MountainCarEnv(seed=0)
        driven = rollout(env2, energetic, seed=1)
        assert driven.fitness > lazy.fitness

    def test_shaping_bounded_by_ten(self):
        env = MountainCarEnv(seed=0)
        result = rollout(env, lambda obs: 1, seed=1)
        assert result.fitness - result.total_reward <= 10.0
        assert result.fitness - result.total_reward >= 0.0

    def test_solved_threshold(self):
        assert MountainCarEnv.solved_threshold == pytest.approx(-110.0)
