"""Tests for the top-level ClanDriver API."""

import pytest

from repro.cluster.analytic import ClusterSpec
from repro.core.driver import ClanDriver
from repro.neat.config import NEATConfig


class TestDriver:
    def test_learn_returns_timed_run(self):
        driver = ClanDriver(
            "CartPole-v0",
            ClusterSpec.of_pis(4),
            protocol="CLAN_DDA",
            pop_size=32,
            seed=1,
        )
        run = driver.learn(max_generations=3, fitness_threshold=1e9)
        assert run.generations == 3
        assert run.timing_total.total_s > 0
        assert run.timing_per_generation.total_s == pytest.approx(
            run.timing_total.total_s / 3
        )

    def test_converged_run_has_best_genome(self):
        driver = ClanDriver(
            "CartPole-v0",
            ClusterSpec.of_pis(2),
            protocol="CLAN_DCS",
            pop_size=32,
            seed=1,
        )
        run = driver.learn(max_generations=30, fitness_threshold=30.0)
        assert run.converged
        assert run.best_genome is not None
        assert run.best_genome.fitness >= 30.0

    def test_protocol_selection(self):
        for protocol in ("Serial", "CLAN_DCS", "CLAN_DDS", "CLAN_DDA"):
            n = 1 if protocol == "Serial" else 3
            driver = ClanDriver(
                "CartPole-v0",
                ClusterSpec.of_pis(n),
                protocol=protocol,
                pop_size=16,
                seed=0,
            )
            assert driver.engine.name == protocol

    def test_config_and_pop_size_conflict_rejected(self):
        config = NEATConfig.for_env("CartPole-v0", pop_size=30)
        with pytest.raises(ValueError):
            ClanDriver(
                "CartPole-v0",
                ClusterSpec.of_pis(2),
                config=config,
                pop_size=40,
            )

    def test_explicit_config_used(self):
        config = NEATConfig.for_env("CartPole-v0", pop_size=26)
        driver = ClanDriver(
            "CartPole-v0", ClusterSpec.of_pis(2), config=config
        )
        assert driver.config.pop_size == 26

    def test_serial_runs_have_zero_communication(self):
        driver = ClanDriver(
            "CartPole-v0",
            ClusterSpec.of_pis(1),
            protocol="Serial",
            pop_size=16,
            seed=0,
        )
        run = driver.learn(max_generations=2, fitness_threshold=1e9)
        assert run.timing_total.communication_s == 0.0
