"""Scalar <-> vector environment equivalence and lane semantics.

The vectorized kernels must reproduce the scalar environments
*bit-for-bit* per lane: same observations, rewards, done flags and
truncation steps under the same seeds. These tests drive both through
identical scripted action sequences and assert exact equality — no
tolerances.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs.registry import available_env_ids, make, make_vector
from repro.envs.vector import VectorEnvironment

env_ids = st.sampled_from(available_env_ids())
seeds = st.integers(min_value=0, max_value=100_000)


def drive_pair(env_id, lane_seeds, action_rng_seed, max_steps=200):
    """Step scalar envs and the vector env in lockstep; compare exactly."""
    n = len(lane_seeds)
    scalars = [make(env_id) for _ in range(n)]
    for env, seed in zip(scalars, lane_seeds):
        env.seed(seed)
    scalar_obs = [env.reset() for env in scalars]

    vec = make_vector(env_id, n)
    vec_obs = vec.reset_batch(lane_seeds)
    for lane in range(n):
        assert tuple(vec_obs[lane]) == scalar_obs[lane]

    arng = random.Random(action_rng_seed)
    scripts = [
        [arng.randrange(vec.n_actions) for _ in range(max_steps)]
        for _ in range(n)
    ]
    scalar_done = [False] * n
    for t in range(max_steps):
        actions = np.asarray(
            [scripts[lane][t] for lane in range(n)], dtype=np.int64
        )
        vec_obs, vec_rew, vec_done, vec_trunc = vec.step_batch(actions)
        for lane in range(n):
            if scalar_done[lane]:
                # finished lanes stay latched and silent
                assert vec_done[lane]
                assert vec_rew[lane] == 0.0
                continue
            obs, reward, done, info = scalars[lane].step(
                int(actions[lane])
            )
            assert tuple(vec_obs[lane]) == obs
            assert vec_rew[lane] == reward
            assert bool(vec_done[lane]) == done
            assert bool(vec_trunc[lane]) == bool(
                info.get("truncated", False)
            )
            scalar_done[lane] = done
        if all(scalar_done):
            break
    return vec, scalars


class TestLaneEquivalence:
    @pytest.mark.parametrize("env_id", available_env_ids())
    def test_seeded_lanes_match_scalar_bit_for_bit(self, env_id):
        for trial in range(3):
            lane_seeds = [1000 * trial + 17 * i + 3 for i in range(6)]
            drive_pair(env_id, lane_seeds, action_rng_seed=42 + trial)

    @given(env_ids, seeds)
    @settings(max_examples=20, deadline=None)
    def test_property_random_seeds_match(self, env_id, seed):
        lane_seeds = [seed + i for i in range(4)]
        drive_pair(env_id, lane_seeds, action_rng_seed=seed ^ 0x5A5A)

    @pytest.mark.parametrize("env_id", available_env_ids())
    def test_shaped_fitness_matches_scalar_rollout(self, env_id):
        """Per-lane shaped fitness equals Environment.shaped_fitness."""
        from repro.envs.base import rollout

        n = 4
        lane_seeds = [97 * i + 5 for i in range(n)]
        results = []
        for seed in lane_seeds:
            env = make(env_id)
            arng = random.Random(seed + 1)
            results.append(
                rollout(
                    env,
                    lambda obs: env.action_space.sample(arng),
                    seed=seed,
                )
            )
        vec = make_vector(env_id, n)
        obs = vec.reset_batch(lane_seeds)
        arngs = [random.Random(seed + 1) for seed in lane_seeds]
        totals = np.zeros(n)
        done = np.zeros(n, dtype=bool)
        trunc = np.zeros(n, dtype=bool)
        for _ in range(vec.max_episode_steps):
            actions = [
                vec.action_space.sample(arngs[lane]) if not done[lane]
                else 0
                for lane in range(n)
            ]
            obs, rew, done, trunc = vec.step_batch(actions)
            totals += rew
            if done.all():
                break
        steps = vec.lane_steps
        fitness = vec.shaped_fitness_batch(totals, steps, done & ~trunc)
        for lane, result in enumerate(results):
            assert totals[lane] == result.total_reward
            assert int(steps[lane]) == result.steps
            assert fitness[lane] == result.fitness


class TestLaneSemantics:
    def test_step_before_reset_raises(self):
        vec = make_vector("CartPole-v0", 2)
        with pytest.raises(RuntimeError, match="finished"):
            vec.step_batch([0, 0])

    def test_step_after_all_done_raises(self):
        vec = make_vector("CartPole-v0", 2)
        vec.reset_batch([0, 1])
        for _ in range(vec.max_episode_steps):
            _obs, _r, done, _t = vec.step_batch([0, 0])
            if done.all():
                break
        with pytest.raises(RuntimeError, match="finished"):
            vec.step_batch([0, 0])

    def test_out_of_range_action_on_live_lane_raises(self):
        vec = make_vector("CartPole-v0", 2)
        vec.reset_batch([0, 1])
        with pytest.raises(ValueError, match="not in"):
            vec.step_batch([0, 7])

    def test_non_integral_actions_rejected(self):
        vec = make_vector("CartPole-v0", 2)
        vec.reset_batch([0, 1])
        with pytest.raises(ValueError, match="non-integral"):
            vec.step_batch(np.asarray([0.5, 0.0]))
        # integral floats are fine (scalar Discrete accepts 1.0)
        vec.step_batch(np.asarray([1.0, 0.0]))

    def test_wrong_lane_count_raises(self):
        vec = make_vector("CartPole-v0", 3)
        with pytest.raises(ValueError, match="seeds"):
            vec.reset_batch([1, 2])
        vec.reset_batch([1, 2, 3])
        with pytest.raises(ValueError, match="actions"):
            vec.step_batch([0, 0])

    def test_truncation_flag_set_at_cap(self):
        vec = make_vector("MountainCar-v0", 2)
        vec.reset_batch([5, 6])
        trunc = None
        for _ in range(vec.max_episode_steps):
            _obs, _r, done, trunc = vec.step_batch([1, 1])
        assert done.all()
        assert trunc.all()

    def test_finished_lane_observation_freezes(self):
        # lane 0 pushes right constantly and tips over within ~10 steps;
        # lane 1 alternates directions and survives much longer, so the
        # frozen lane is observed across many subsequent steps
        vec = make_vector("CartPole-v0", 2)
        vec.reset_batch([0, 1])
        frozen = {}
        checked = False
        for t in range(vec.max_episode_steps):
            obs, _r, done, _t = vec.step_batch([1, t % 2])
            for lane in range(2):
                if done[lane] and lane not in frozen:
                    frozen[lane] = obs[lane].copy()
                elif lane in frozen:
                    assert tuple(obs[lane]) == tuple(frozen[lane])
                    checked = True
            if done.all():
                break
        assert frozen and checked

    def test_reset_batch_reuses_instance(self):
        vec = make_vector("CartPole-v0", 2)
        first = vec.reset_batch([3, 4]).copy()
        vec.step_batch([0, 1])
        again = vec.reset_batch([3, 4])
        assert np.array_equal(first, again)


class TestExtractLanes:
    @pytest.mark.parametrize(
        "env_id", ("CartPole-v0", "MountainCar-v0", "LunarLander-v2",
                   "Airraid-ram-v0")
    )
    def test_extracted_lanes_continue_identically(self, env_id):
        n = 6
        lane_seeds = [31 * i + 7 for i in range(n)]
        ref = make_vector(env_id, n)
        ref.reset_batch(lane_seeds)
        vec = make_vector(env_id, n)
        vec.reset_batch(lane_seeds)
        arng = random.Random(9)
        script = [
            [arng.randrange(ref.n_actions) for _ in range(60)]
            for _ in range(n)
        ]
        for t in range(30):
            acts = [script[lane][t] for lane in range(n)]
            ref.step_batch(acts)
            vec.step_batch(acts)
        keep = [0, 2, 5]
        small = vec.extract_lanes(keep)
        for t in range(30, 60):
            ref_obs, ref_rew, ref_done, ref_tr = ref.step_batch(
                [script[lane][t] for lane in range(n)]
            )
            if ref_done.all():
                break
            if small.done_lanes.all():
                break
            obs, rew, done, tr = small.step_batch(
                [script[lane][t] for lane in keep]
            )
            for i, lane in enumerate(keep):
                assert tuple(obs[i]) == tuple(ref_obs[lane])
                assert rew[i] == ref_rew[lane]
                assert bool(done[i]) == bool(ref_done[lane])


class TestVectorRegistry:
    def test_every_workload_has_a_vector_twin(self):
        for env_id in available_env_ids():
            vec = make_vector(env_id, 2)
            assert isinstance(vec, VectorEnvironment)
            scalar = make(env_id)
            assert vec.env_id == scalar.env_id
            assert vec.obs_dim == scalar.observation_space.flat_dim
            assert vec.n_actions == scalar.action_space.n
            assert vec.max_episode_steps == scalar.max_episode_steps
            assert vec.solved_threshold == scalar.solved_threshold

    def test_unknown_env_raises(self):
        with pytest.raises(KeyError, match="unknown env id"):
            make_vector("Pong-v0", 4)

    def test_n_lanes_validated(self):
        with pytest.raises(ValueError, match="n_lanes"):
            make_vector("CartPole-v0", 0)
