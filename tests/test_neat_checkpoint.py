"""Tests for population checkpointing: resume must be bit-exact."""

import pytest

from repro.cluster.serialization import encode_genome
from repro.neat.checkpoint import load_population, save_population
from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult
from repro.neat.population import Population


def fake_evaluate(genomes, generation):
    return {
        g.key: FitnessResult(
            genome_key=g.key,
            fitness=float((g.key * 7 + generation) % 23),
            steps=2,
            total_reward=0.0,
            solved=False,
        )
        for g in genomes
    }


def population_bytes(population):
    return b"".join(
        encode_genome(population.genomes[key])
        for key in sorted(population.genomes)
    )


@pytest.fixture
def config():
    return NEATConfig(num_inputs=3, num_outputs=2, pop_size=20)


class TestRoundTrip:
    def test_fresh_population(self, config, tmp_path):
        population = Population(config, seed=4)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        assert population_bytes(restored) == population_bytes(population)
        assert restored.generation == 0
        assert restored.config == config

    def test_evolved_population(self, config, tmp_path):
        population = Population(config, seed=4)
        for _ in range(4):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        assert population_bytes(restored) == population_bytes(population)
        assert restored.generation == population.generation
        assert set(restored.species_set.species) == set(
            population.species_set.species
        )

    def test_best_genome_preserved(self, config, tmp_path):
        population = Population(config, seed=4)
        population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        assert encode_genome(restored.best_genome) == encode_genome(
            population.best_genome
        )

    def test_species_history_preserved(self, config, tmp_path):
        population = Population(config, seed=4)
        for _ in range(3):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        for key, species in population.species_set.species.items():
            twin = restored.species_set.species[key]
            assert twin.fitness_history == species.fitness_history
            assert twin.last_improved == species.last_improved


class TestResumeExactness:
    def test_resumed_run_identical_to_uninterrupted(self, config, tmp_path):
        # 6 straight generations ...
        straight = Population(config, seed=9)
        for _ in range(6):
            straight.run_generation(fake_evaluate)
        # ... versus 3 + checkpoint + 3
        interrupted = Population(config, seed=9)
        for _ in range(3):
            interrupted.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(interrupted, path)
        resumed = load_population(path)
        for _ in range(3):
            resumed.run_generation(fake_evaluate)
        assert population_bytes(resumed) == population_bytes(straight)
        assert resumed.generation == straight.generation

    def test_resume_twice_from_same_checkpoint(self, config, tmp_path):
        population = Population(config, seed=9)
        population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        a = load_population(path)
        b = load_population(path)
        a.run_generation(fake_evaluate)
        b.run_generation(fake_evaluate)
        assert population_bytes(a) == population_bytes(b)


class TestValidation:
    def test_version_checked(self, config, tmp_path):
        import json

        population = Population(config, seed=1)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        doc = json.loads(path.read_text())
        doc["version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_population(path)
