"""Tests for population checkpointing: resume must be bit-exact."""

import pytest

from repro.cluster.serialization import encode_genome
from repro.neat.checkpoint import (
    CheckpointCorrupt,
    document_checksum,
    load_population,
    save_population,
)
from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult
from repro.neat.population import Population


def fake_evaluate(genomes, generation):
    return {
        g.key: FitnessResult(
            genome_key=g.key,
            fitness=float((g.key * 7 + generation) % 23),
            steps=2,
            total_reward=0.0,
            solved=False,
        )
        for g in genomes
    }


def population_bytes(population):
    return b"".join(
        encode_genome(population.genomes[key])
        for key in sorted(population.genomes)
    )


@pytest.fixture
def config():
    return NEATConfig(num_inputs=3, num_outputs=2, pop_size=20)


class TestRoundTrip:
    def test_fresh_population(self, config, tmp_path):
        population = Population(config, seed=4)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        assert population_bytes(restored) == population_bytes(population)
        assert restored.generation == 0
        assert restored.config == config

    def test_evolved_population(self, config, tmp_path):
        population = Population(config, seed=4)
        for _ in range(4):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        assert population_bytes(restored) == population_bytes(population)
        assert restored.generation == population.generation
        assert set(restored.species_set.species) == set(
            population.species_set.species
        )

    def test_best_genome_preserved(self, config, tmp_path):
        population = Population(config, seed=4)
        population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        assert encode_genome(restored.best_genome) == encode_genome(
            population.best_genome
        )

    def test_species_history_preserved(self, config, tmp_path):
        population = Population(config, seed=4)
        for _ in range(3):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        for key, species in population.species_set.species.items():
            twin = restored.species_set.species[key]
            assert twin.fitness_history == species.fitness_history
            assert twin.last_improved == species.last_improved


class TestSpeciesMembership:
    """Regression: a restored population must be state-identical, not just
    trajectory-identical — membership used to come back empty."""

    def test_membership_restored(self, config, tmp_path):
        population = Population(config, seed=4)
        for _ in range(3):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        for key, species in population.species_set.species.items():
            twin = restored.species_set.species[key]
            assert sorted(twin.members) == sorted(species.members)
            for member_key, member in species.members.items():
                assert encode_genome(twin.members[member_key]) == (
                    encode_genome(member)
                )

    def test_genome_to_species_restored(self, config, tmp_path):
        population = Population(config, seed=4)
        for _ in range(2):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        assert restored.species_set.genome_to_species == (
            population.species_set.genome_to_species
        )

    def test_species_fitness_restored(self, config, tmp_path):
        population = Population(config, seed=4)
        for _ in range(2):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        for key, species in population.species_set.species.items():
            twin = restored.species_set.species[key]
            assert twin.fitness == species.fitness
            assert twin.adjusted_fitness == species.adjusted_fitness

    def test_live_members_alias_population_genomes(self, config, tmp_path):
        # elites survive reproduction: a restored species must point at
        # the *same* genome objects as the restored population, exactly
        # like a live Population does
        population = Population(config, seed=4)
        for _ in range(3):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        restored = load_population(path)
        shared = [
            (species.key, member_key)
            for species in restored.species_set.iter_species()
            for member_key in species.members
            if member_key in restored.genomes
        ]
        assert shared  # elites guarantee at least one
        for species_key, member_key in shared:
            species = restored.species_set.species[species_key]
            assert species.members[member_key] is restored.genomes[
                member_key
            ]


class TestResumeExactness:
    def test_resumed_run_identical_to_uninterrupted(self, config, tmp_path):
        # 6 straight generations ...
        straight = Population(config, seed=9)
        for _ in range(6):
            straight.run_generation(fake_evaluate)
        # ... versus 3 + checkpoint + 3
        interrupted = Population(config, seed=9)
        for _ in range(3):
            interrupted.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(interrupted, path)
        resumed = load_population(path)
        for _ in range(3):
            resumed.run_generation(fake_evaluate)
        assert population_bytes(resumed) == population_bytes(straight)
        assert resumed.generation == straight.generation

    def test_resumed_species_state_then_trajectory_parity(
        self, config, tmp_path
    ):
        # interleave: species state identical at the checkpoint AND the
        # continued runs stay bit-exact through run_generation
        straight = Population(config, seed=12)
        interrupted = Population(config, seed=12)
        for _ in range(3):
            straight.run_generation(fake_evaluate)
            interrupted.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(interrupted, path)
        resumed = load_population(path)
        for key, species in straight.species_set.species.items():
            twin = resumed.species_set.species[key]
            assert sorted(twin.members) == sorted(species.members)
            assert twin.fitness == species.fitness
        for _ in range(3):
            straight.run_generation(fake_evaluate)
            resumed.run_generation(fake_evaluate)
        assert population_bytes(resumed) == population_bytes(straight)
        assert resumed.species_set.genome_to_species == (
            straight.species_set.genome_to_species
        )

    def test_resume_twice_from_same_checkpoint(self, config, tmp_path):
        population = Population(config, seed=9)
        population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        a = load_population(path)
        b = load_population(path)
        a.run_generation(fake_evaluate)
        b.run_generation(fake_evaluate)
        assert population_bytes(a) == population_bytes(b)


class TestValidation:
    def test_version_checked(self, config, tmp_path):
        import json

        population = Population(config, seed=1)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        doc = json.loads(path.read_text())
        doc["version"] = 99
        doc["crc32"] = document_checksum(doc)
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_population(path)

    def test_legacy_v1_loads_with_empty_membership(self, config, tmp_path):
        import json

        population = Population(config, seed=1)
        for _ in range(2):
            population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        doc = json.loads(path.read_text())
        doc["version"] = 1
        # v1 files predate the checksum field too — drop it entirely
        doc.pop("crc32", None)
        for blob in doc["species"]:
            for field in (
                "member_keys", "stale_members", "fitness",
                "adjusted_fitness",
            ):
                blob.pop(field, None)
        path.write_text(json.dumps(doc))
        restored = load_population(path)
        assert population_bytes(restored) == population_bytes(population)
        for species in restored.species_set.iter_species():
            assert species.members == {}


class TestCorruptionDetection:
    """Damaged checkpoint files must raise CheckpointCorrupt, not leak
    json/decoding internals — and writes must be atomic."""

    def _checkpoint(self, config, tmp_path):
        population = Population(config, seed=3)
        population.run_generation(fake_evaluate)
        path = tmp_path / "ckpt.json"
        save_population(population, path)
        return path

    def test_bit_flip_detected(self, config, tmp_path):
        path = self._checkpoint(config, tmp_path)
        raw = bytearray(path.read_bytes())
        # flip one bit in the middle of the document (genome payload
        # territory — past the header fields, before the final brace)
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorrupt):
            load_population(path)

    def test_truncated_file_detected(self, config, tmp_path):
        path = self._checkpoint(config, tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorrupt, match="JSON"):
            load_population(path)

    def test_empty_file_detected(self, config, tmp_path):
        path = self._checkpoint(config, tmp_path)
        path.write_bytes(b"")
        with pytest.raises(CheckpointCorrupt):
            load_population(path)

    def test_missing_file_is_corrupt_error(self, config, tmp_path):
        with pytest.raises(CheckpointCorrupt):
            load_population(tmp_path / "never-written.json")

    def test_save_leaves_no_tmp_file_behind(self, config, tmp_path):
        path = self._checkpoint(config, tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_checksum_survives_reload_cycle(self, config, tmp_path):
        import json

        path = self._checkpoint(config, tmp_path)
        doc = json.loads(path.read_text())
        assert doc["crc32"] == document_checksum(doc)
        # loading and re-saving an untouched checkpoint stays valid
        save_population(load_population(path), path)
        load_population(path)
