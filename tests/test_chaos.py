"""The chaos plane: plans, the injector, and end-to-end determinism.

The determinism contract under test (docs/chaos.md):

- a plan with no faults perturbs nothing — running with an empty plan
  is byte-identical to running without the chaos plane at all;
- the same plan against the same workload seed fires the same faults at
  the same protocol events, and the healing machinery recovers to a
  byte-identical champion (supervision replays are exact).
"""

import pytest

from repro.chaos import ChaosInjector, Fault, FaultPlan, parse_fault_spec
from repro.chaos.injector import PASS
from repro.chaos.runner import run_learn_plan, run_serve_plan
from repro.cluster.runtime import DistributedClanRuntime
from repro.cluster.serialization import encode_genome
from repro.neat.config import NEATConfig

pytestmark = pytest.mark.lock_check


class TestFault:
    def test_rejects_unknown_action_and_scope(self):
        with pytest.raises(ValueError, match="action"):
            Fault(action="explode", scope="worker")
        with pytest.raises(ValueError, match="scope"):
            Fault(action="kill", scope="moon")

    def test_at_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            Fault(action="kill", scope="worker", at=0)

    def test_unsupported_combo_rejected(self):
        # corrupt only makes sense for publish payloads
        with pytest.raises(ValueError, match="not supported"):
            Fault(action="corrupt", scope="worker")
        with pytest.raises(ValueError, match="not supported"):
            Fault(action="duplicate", scope="registry", kind="publish")

    def test_stall_and_delay_need_a_duration(self):
        with pytest.raises(ValueError, match="duration"):
            Fault(action="stall", scope="worker")
        Fault(action="stall", scope="worker", value=0.5)  # fine

    def test_matching(self):
        fault = Fault(
            action="drop", scope="replica", target=1, kind="publish"
        )
        assert fault.matches("replica", 1, "publish")
        assert not fault.matches("replica", 0, "publish")
        assert not fault.matches("replica", 1, "infer")
        assert not fault.matches("worker", 1, "publish")
        anywhere = Fault(action="kill", scope="worker")
        assert anywhere.matches("worker", 3, "clan_step")

    def test_dict_roundtrip_rejects_unknown_fields(self):
        fault = Fault(action="kill", scope="worker", target=2, at=3)
        assert Fault.from_dict(fault.to_dict()) == fault
        with pytest.raises(ValueError, match="unknown fault fields"):
            Fault.from_dict({"action": "kill", "scope": "worker", "x": 1})


class TestFaultPlan:
    def test_file_roundtrip(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            faults=(
                Fault(action="kill", scope="worker", target=1, at=2),
                Fault(action="delay", scope="registry", value=0.05),
            ),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.from_file(path) == plan

    def test_version_checked(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"version": 99, "seed": 0, "faults": []}')
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_file(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="JSON"):
            FaultPlan.from_file(path)


class TestParseFaultSpec:
    def test_full_spec(self):
        fault = parse_fault_spec(
            "kill,scope=worker,target=1,kind=clan_step,at=3"
        )
        assert fault == Fault(
            action="kill", scope="worker", target=1, kind="clan_step", at=3
        )

    def test_value_field(self):
        fault = parse_fault_spec("delay,scope=registry,value=0.05")
        assert fault.value == pytest.approx(0.05)

    def test_requires_scope(self):
        with pytest.raises(ValueError, match="scope"):
            parse_fault_spec("kill,target=1")

    def test_malformed_fields_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault_spec("kill,scope=worker,oops")
        with pytest.raises(ValueError, match="unknown fault field"):
            parse_fault_spec("kill,scope=worker,when=3")


class TestChaosInjector:
    def test_unmatched_events_return_the_shared_pass(self):
        injector = ChaosInjector(
            FaultPlan(faults=(Fault(action="kill", scope="worker"),))
        )
        assert injector.on_event("replica", 0, "infer") is PASS
        assert injector.faults_fired == 0

    def test_fires_at_the_nth_matching_event_once(self):
        plan = FaultPlan(
            faults=(
                Fault(
                    action="drop",
                    scope="worker",
                    target=1,
                    kind="clan_step",
                    at=2,
                ),
            )
        )
        injector = ChaosInjector(plan)
        # first matching event passes; events for other targets/kinds
        # are not counted at all
        assert injector.on_event("worker", 1, "clan_step") is PASS
        assert injector.on_event("worker", 0, "clan_step") is PASS
        assert injector.on_event("worker", 1, "clan_init") is PASS
        decision = injector.on_event("worker", 1, "clan_step")
        assert decision.deliveries == 0
        # one-shot: the third matching event passes again
        assert injector.on_event("worker", 1, "clan_step") is PASS
        assert injector.injected_counts() == {"drop": 1}
        assert injector.faults_fired == 1
        assert injector.faults_pending == 0

    def test_coinciding_faults_combine_into_one_decision(self):
        plan = FaultPlan(
            faults=(
                Fault(action="kill", scope="replica", kind="publish"),
                Fault(
                    action="delay",
                    scope="replica",
                    kind="publish",
                    value=0.01,
                ),
            )
        )
        injector = ChaosInjector(plan)
        decision = injector.on_event("replica", 0, "publish")
        assert decision.kill
        assert decision.delay_s == pytest.approx(0.01)

    def test_no_fault_plan_draws_no_randomness(self):
        injector = ChaosInjector(FaultPlan(seed=5))
        for index in range(20):
            assert injector.on_event("worker", index % 3, "x") is PASS
        # the payload RNG is untouched: its first draw equals a fresh
        # generator's first draw
        import random

        assert injector._rng.random() == random.Random(5).random()

    def test_corrupt_bytes_flips_exactly_one_bit_seeded(self):
        injector = ChaosInjector(FaultPlan(seed=3))
        data = bytes(range(64))
        mutated = injector.corrupt_bytes(data)
        diff = [
            (a ^ b) for a, b in zip(data, mutated) if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1
        # same seed, fresh injector -> same flip
        again = ChaosInjector(FaultPlan(seed=3)).corrupt_bytes(data)
        assert again == mutated
        assert injector.corrupt_bytes(b"") == b""


CHAOS_CONFIG = NEATConfig.for_env("CartPole-v0", pop_size=24)


def _learn(chaos=None):
    with DistributedClanRuntime(
        "CartPole-v0",
        n_clans=3,
        config=CHAOS_CONFIG,
        seed=8,
        respawn_backoff_s=0.0,
        chaos=chaos,
    ) as runtime:
        stats = runtime.run(max_generations=3, fitness_threshold=1e9)
        best = runtime.best_genome()
    return stats, best


class TestLearnDeterminism:
    """Chaos against the real distributed runtime (spawns processes)."""

    def test_empty_plan_is_byte_identical_to_no_chaos(self):
        baseline, baseline_best = _learn(chaos=None)
        injector = ChaosInjector(FaultPlan(seed=9))
        stats, best = _learn(chaos=injector)
        assert injector.faults_fired == 0
        assert not stats.churn
        assert stats.best_fitness == baseline.best_fitness
        assert (
            stats.best_fitness_per_generation
            == baseline.best_fitness_per_generation
        )
        assert encode_genome(best) == encode_genome(baseline_best)

    def test_worker_kill_heals_to_identical_champion(self):
        baseline, baseline_best = _learn(chaos=None)
        plan = FaultPlan(
            faults=(
                Fault(
                    action="kill",
                    scope="worker",
                    target=1,
                    kind="clan_step",
                    at=2,
                ),
            )
        )
        first = ChaosInjector(plan)
        stats, best = _learn(chaos=first)
        assert first.faults_fired == 1
        assert stats.churn.deaths == 1
        assert stats.churn.respawns == 1
        # recovery replays are bit-identical: the chaotic run ends
        # exactly where the undisturbed run does
        assert stats.best_fitness == baseline.best_fitness
        assert encode_genome(best) == encode_genome(baseline_best)
        # and the whole scenario replays: same plan, same outcome
        second = ChaosInjector(plan)
        stats2, best2 = _learn(chaos=second)
        assert second.injected_counts() == first.injected_counts()
        assert encode_genome(best2) == encode_genome(best)


class TestLearnRunner:
    def test_outcome_shape_and_replayability(self):
        plan = FaultPlan(
            faults=(
                Fault(
                    action="kill",
                    scope="worker",
                    target=0,
                    kind="clan_step",
                    at=1,
                ),
            )
        )
        outcome = run_learn_plan(
            plan,
            "CartPole-v0",
            n_clans=2,
            pop_size=16,
            generations=2,
            seed=4,
        )
        assert outcome["workload"] == "learn"
        assert outcome["faults_fired"] == 1
        assert outcome["churn"]["deaths"] == 1
        assert outcome["churn"]["respawns"] == 1
        again = run_learn_plan(
            plan,
            "CartPole-v0",
            n_clans=2,
            pop_size=16,
            generations=2,
            seed=4,
        )
        assert again["champion_hex"] == outcome["champion_hex"]
        assert again["best_fitness"] == outcome["best_fitness"]


class TestServeRunner:
    def test_replica_kill_and_dropped_publish_fully_heal(self):
        plan = FaultPlan(
            faults=(
                # kill replica 0 on its second infer chunk...
                Fault(
                    action="kill",
                    scope="replica",
                    target=0,
                    kind="infer",
                    at=2,
                ),
                # ...and lose replica 1's second deployment message
                # (the repair loop must re-deliver it)
                Fault(
                    action="drop",
                    scope="replica",
                    target=1,
                    kind="publish",
                    at=2,
                ),
            )
        )
        outcome = run_serve_plan(
            plan,
            "CartPole-v0",
            replicas=2,
            rate_hz=500.0,
            n_requests=120,
            seed=2,
            publishes=2,
        )
        assert outcome["workload"] == "serve"
        assert outcome["offered"] == 120
        assert outcome["failed"] == 0
        assert outcome["version_regressions"] == 0
        assert outcome["faults_fired"] == 2
        assert outcome["health"]["replica_respawns"] >= 1
        assert (
            outcome["served"]
            + outcome["shed"]
            + outcome["rejected_closed"]
            == outcome["offered"]
        )
