"""Tests for the environment registry and workload classification."""

import pytest

from repro.envs.registry import (
    PLOTTED_WORKLOADS,
    WORKLOAD_CLASSES,
    available_env_ids,
    make,
    workload_spec,
)


class TestRegistry:
    def test_all_six_workloads_registered(self):
        assert len(available_env_ids()) == 6

    def test_make_instantiates_each(self):
        for env_id in available_env_ids():
            env = make(env_id, seed=1)
            assert env.env_id == env_id

    def test_unknown_id_raises_with_known_set(self):
        with pytest.raises(KeyError, match="CartPole-v0"):
            make("Pong-v0")

    def test_spec_dimensions_match_env(self):
        for env_id in available_env_ids():
            spec = workload_spec(env_id)
            env = make(env_id)
            assert env.observation_space.flat_dim == spec.obs_dim
            assert env.action_space.n == spec.n_actions

    def test_spec_threshold_matches_env(self):
        for env_id in available_env_ids():
            assert (
                workload_spec(env_id).solved_threshold
                == make(env_id).solved_threshold
            )

    def test_size_classes_cover_all(self):
        classified = [
            env_id for group in WORKLOAD_CLASSES.values() for env_id in group
        ]
        assert sorted(classified) == sorted(available_env_ids())

    def test_paper_workload_grouping(self):
        assert WORKLOAD_CLASSES["small"] == (
            "CartPole-v0",
            "MountainCar-v0",
        )
        assert WORKLOAD_CLASSES["medium"] == ("LunarLander-v2",)
        assert len(WORKLOAD_CLASSES["large"]) == 3

    def test_large_workloads_have_128_inputs(self):
        for env_id in WORKLOAD_CLASSES["large"]:
            assert workload_spec(env_id).obs_dim == 128

    def test_plotted_workloads_omit_amidar(self):
        # the paper: "amidar-ram-v0 results are omitted ... as it performs
        # equivalently to airraid-ram-v0"
        assert "Amidar-ram-v0" not in PLOTTED_WORKLOADS
        assert len(PLOTTED_WORKLOADS) == 5

    def test_seed_passed_through(self):
        a = make("CartPole-v0", seed=5).reset()
        b = make("CartPole-v0", seed=5).reset()
        assert a == b
