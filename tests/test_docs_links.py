"""Docs hygiene: no dead links, no orphaned pages.

The docs cross-link heavily (architecture -> subsystem pages -> back);
stale references after a refactor are the most common form of doc rot.
This suite walks every markdown link in ``docs/`` and the top-level
``README.md`` and asserts the target exists, and that the docs index
(``docs/README.md``) reaches every page in ``docs/``. CI runs it as its
own job.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: non-image markdown links: [text](target); the (?<!!) lookbehind skips
#: image embeds like the README's CI badge, whose target only exists on
#: the GitHub rendering host
_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
#: link targets that point off-repo and are not checked here
_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files():
    return sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]


def _links(path: Path):
    for target in _LINK.findall(path.read_text()):
        if target.startswith(_EXTERNAL):
            continue
        yield target.split("#", 1)[0]  # drop any fragment


@pytest.mark.parametrize(
    "path", _markdown_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(path):
    dead = [
        target
        for target in _links(path)
        if target and not (path.parent / target).exists()
    ]
    assert not dead, (
        f"{path.relative_to(REPO_ROOT)} links to missing files: {dead}"
    )


def test_docs_index_reaches_every_page():
    index = DOCS_DIR / "README.md"
    linked = {
        (index.parent / target).resolve()
        for target in _links(index)
        if target
    }
    orphans = [
        page.name
        for page in DOCS_DIR.glob("*.md")
        if page != index and page.resolve() not in linked
    ]
    assert not orphans, (
        f"docs/README.md does not link these pages: {orphans}"
    )


def test_readme_links_into_docs():
    """The project README must hand readers off to the docs tree."""
    targets = set(_links(REPO_ROOT / "README.md"))
    assert any(t.startswith("docs/") for t in targets)
