"""Tests for the Genome: construction, mutation, crossover, distance."""

import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome, creates_cycle
from repro.neat.innovation import InnovationTracker

from tests.conftest import make_evolved_genome


class TestCreatesCycle:
    def test_self_loop(self):
        assert creates_cycle([], (1, 1))

    def test_simple_back_edge(self):
        assert creates_cycle([(1, 2)], (2, 1))

    def test_transitive_back_edge(self):
        assert creates_cycle([(1, 2), (2, 3)], (3, 1))

    def test_forward_edge_ok(self):
        assert not creates_cycle([(1, 2), (2, 3)], (1, 3))

    def test_disconnected_ok(self):
        assert not creates_cycle([(1, 2)], (3, 4))


class TestConstruction:
    def test_full_initial_connection(self, small_config, rng):
        genome = Genome(0)
        genome.configure_new(small_config, rng)
        expected = small_config.num_inputs * small_config.num_outputs
        assert len(genome.connections) == expected
        assert len(genome.nodes) == small_config.num_outputs

    def test_none_initial_connection(self, rng):
        config = NEATConfig(
            num_inputs=3, num_outputs=2, initial_connection="none"
        )
        genome = Genome(0)
        genome.configure_new(config, rng)
        assert not genome.connections
        assert len(genome.nodes) == 2

    def test_gene_count(self, genome, small_config):
        assert genome.gene_count() == len(genome.nodes) + len(
            genome.connections
        )

    def test_copy_preserves_fitness(self, genome):
        genome.fitness = 5.0
        assert genome.copy().fitness == 5.0

    def test_copy_with_new_key_clears_fitness(self, genome):
        genome.fitness = 5.0
        clone = genome.copy(new_key=99)
        assert clone.key == 99
        assert clone.fitness is None

    def test_copy_deep(self, genome):
        clone = genome.copy()
        first = next(iter(clone.connections.values()))
        first.weight += 10.0
        original = genome.connections[first.key]
        assert original.weight != first.weight


class TestMutations:
    def test_add_node_splits_connection(self, small_config, rng, innovation):
        genome = Genome(0)
        genome.configure_new(small_config, rng)
        n_nodes = len(genome.nodes)
        assert genome.mutate_add_node(small_config, rng, innovation)
        assert len(genome.nodes) == n_nodes + 1
        # exactly one connection disabled, two added
        disabled = [
            g for g in genome.connections.values() if not g.enabled
        ]
        assert len(disabled) == 1

    def test_add_node_preserves_initial_behaviour(
        self, small_config, rng, innovation
    ):
        genome = Genome(0)
        genome.configure_new(small_config, rng)
        old = dict(genome.connections)
        genome.mutate_add_node(small_config, rng, innovation)
        new_node = max(genome.nodes)
        into = genome.connections[
            next(k for k in genome.connections if k[1] == new_node)
        ]
        out_of = genome.connections[
            next(k for k in genome.connections if k[0] == new_node)
        ]
        split = next(
            g for k, g in genome.connections.items()
            if k in old and not g.enabled
        )
        assert into.weight == 1.0
        assert out_of.weight == split.weight

    def test_add_node_on_empty_genome_fails(self, rng, innovation):
        config = NEATConfig(
            num_inputs=2, num_outputs=1, initial_connection="none"
        )
        genome = Genome(0)
        genome.configure_new(config, rng)
        assert not genome.mutate_add_node(config, rng, innovation)

    def test_delete_node_removes_incident_connections(
        self, small_config, rng, innovation
    ):
        genome = Genome(0)
        genome.configure_new(small_config, rng)
        genome.mutate_add_node(small_config, rng, innovation)
        hidden = max(genome.nodes)
        # force deletion of the hidden node by removing others from play
        deleted = False
        for _ in range(50):
            if genome.mutate_delete_node(small_config, rng):
                deleted = True
                break
        assert deleted
        assert hidden not in genome.nodes
        assert all(hidden not in key for key in genome.connections)

    def test_delete_node_never_removes_outputs(self, small_config, rng):
        genome = Genome(0)
        genome.configure_new(small_config, rng)
        assert not genome.mutate_delete_node(small_config, rng)
        for key in small_config.output_keys:
            assert key in genome.nodes

    def test_add_connection_no_duplicates(self, small_config, rng):
        genome = Genome(0)
        genome.configure_new(small_config, rng)
        before = set(genome.connections)
        for _ in range(100):
            genome.mutate_add_connection(small_config, rng)
        after = set(genome.connections)
        assert before <= after
        assert len(after) == len(set(after))

    def test_add_connection_never_creates_cycle(
        self, small_config, rng, innovation
    ):
        genome = Genome(0)
        genome.configure_new(small_config, rng)
        for _ in range(200):
            genome.mutate_add_node(small_config, rng, innovation)
            genome.mutate_add_connection(small_config, rng)
        enabled = [g.key for g in genome.connections.values()]
        for key in enabled:
            others = [k for k in enabled if k != key]
            assert not creates_cycle(others, key)

    def test_delete_connection(self, small_config, rng):
        genome = Genome(0)
        genome.configure_new(small_config, rng)
        n = len(genome.connections)
        assert genome.mutate_delete_connection(small_config, rng)
        assert len(genome.connections) == n - 1

    def test_delete_connection_on_empty(self, rng):
        config = NEATConfig(
            num_inputs=2, num_outputs=1, initial_connection="none"
        )
        genome = Genome(0)
        genome.configure_new(config, rng)
        assert not genome.mutate_delete_connection(config, rng)

    def test_single_structural_mutation_mode(self, rng, innovation):
        config = NEATConfig(
            num_inputs=3,
            num_outputs=2,
            single_structural_mutation=True,
            node_add_prob=1.0,
            conn_add_prob=1.0,
            node_delete_prob=1.0,
            conn_delete_prob=1.0,
        )
        genome = Genome(0)
        genome.configure_new(config, rng)
        before_nodes = len(genome.nodes)
        before_conns = len(genome.connections)
        genome.mutate(config, rng, innovation)
        node_delta = abs(len(genome.nodes) - before_nodes)
        conn_delta = abs(len(genome.connections) - before_conns)
        # a single structural change: at most one node added/removed (add
        # node also adds two connections)
        assert node_delta <= 1


class TestCrossover:
    def test_requires_fitness(self, small_config, rng):
        a = Genome(0)
        a.configure_new(small_config, rng)
        b = Genome(1)
        b.configure_new(small_config, rng)
        with pytest.raises(ValueError):
            Genome.crossover(2, a, b, rng)

    def test_requires_fitter_first(self, genome_pair, rng):
        fit, unfit = genome_pair
        with pytest.raises(ValueError):
            Genome.crossover(2, unfit, fit, rng)

    def test_child_keys_subset_of_fitter_parent(self, small_config, rng):
        fit = make_evolved_genome(small_config, seed=1, key=0)
        unfit = make_evolved_genome(small_config, seed=2, key=1)
        fit.fitness, unfit.fitness = 3.0, 1.0
        child = Genome.crossover(2, fit, unfit, rng)
        assert set(child.nodes) == set(fit.nodes)
        assert set(child.connections) == set(fit.connections)

    def test_matching_gene_attributes_from_either_parent(
        self, genome_pair, rng
    ):
        fit, unfit = genome_pair
        key = next(iter(fit.connections))
        weights = set()
        for i in range(50):
            child = Genome.crossover(2, fit, unfit, random.Random(i))
            weights.add(child.connections[key].weight)
        assert weights == {
            fit.connections[key].weight,
            unfit.connections[key].weight,
        }

    def test_child_has_requested_key(self, genome_pair, rng):
        fit, unfit = genome_pair
        child = Genome.crossover(42, fit, unfit, rng)
        assert child.key == 42
        assert child.fitness is None


class TestDistance:
    def test_self_distance_zero(self, genome, small_config):
        assert genome.distance(genome, small_config) == 0.0

    def test_symmetric(self, small_config, rng):
        a = make_evolved_genome(small_config, seed=1, key=0)
        b = make_evolved_genome(small_config, seed=2, key=1)
        assert a.distance(b, small_config) == pytest.approx(
            b.distance(a, small_config)
        )

    def test_disjoint_genes_increase_distance(self, small_config, rng):
        a = Genome(0)
        a.configure_new(small_config, rng)
        b = a.copy(new_key=1)
        base = a.distance(b, small_config)
        tracker = InnovationTracker(next_node_id=small_config.num_outputs)
        b.mutate_add_node(small_config, rng, tracker)
        assert a.distance(b, small_config) > base

    def test_weight_difference_increases_distance(self, small_config, rng):
        a = Genome(0)
        a.configure_new(small_config, rng)
        b = a.copy(new_key=1)
        key = next(iter(b.connections))
        b.connections[key].weight += 5.0
        assert a.distance(b, small_config) > 0.0

    def test_identical_structures_zero_distance(self, small_config, rng):
        a = Genome(0)
        a.configure_new(small_config, rng)
        b = a.copy(new_key=1)
        assert a.distance(b, small_config) == 0.0


class TestBookkeeping:
    def test_complexity(self, genome):
        nodes, enabled = genome.complexity()
        assert nodes == len(genome.nodes)
        assert enabled <= len(genome.connections)

    def test_max_node_id(self, genome, small_config):
        assert genome.max_node_id() == max(small_config.output_keys)

    def test_max_node_id_empty(self):
        assert Genome(0).max_node_id() == -1
