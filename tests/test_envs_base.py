"""Tests for the environment base API and rollout helper."""

import pytest

from repro.envs.base import rollout
from repro.envs.cartpole import CartPoleEnv
from repro.envs.registry import make


class TestEnvironmentProtocol:
    def test_step_before_reset_raises(self):
        env = CartPoleEnv()
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_step_after_done_raises(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        done = False
        while not done:
            _obs, _r, done, _info = env.step(0)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_invalid_action_raises(self):
        env = CartPoleEnv()
        env.reset()
        with pytest.raises(ValueError):
            env.step(7)

    def test_numpy_integer_actions_accepted(self):
        # regression: the batched policy's argmax hands step() np.int64
        # actions; they must be treated exactly like Python ints
        import numpy as np

        for env_id in ("CartPole-v0", "MountainCar-v0", "Alien-ram-v0"):
            env = make(env_id)
            env.seed(3)
            env.reset()
            reference = make(env_id)
            reference.seed(3)
            reference.reset()
            obs_np, r_np, d_np, _ = env.step(np.int64(1))
            obs_py, r_py, d_py, _ = reference.step(1)
            assert obs_np == obs_py
            assert r_np == r_py and d_np == d_py
            with pytest.raises(ValueError):
                env.step(np.int64(env.action_space.n))

    def test_episode_capped_at_200_steps(self):
        env = make("MountainCar-v0", seed=0)
        env.reset()
        steps = 0
        done = False
        while not done:
            _obs, _r, done, info = env.step(1)
            steps += 1
        assert steps <= 200
        if steps == 200:
            assert info.get("truncated")

    def test_seed_reproducibility(self):
        env = CartPoleEnv()
        env.seed(99)
        first = env.reset()
        env.seed(99)
        second = env.reset()
        assert first == second

    def test_different_seeds_differ(self):
        env = CartPoleEnv()
        env.seed(1)
        a = env.reset()
        env.seed(2)
        b = env.reset()
        assert a != b

    def test_elapsed_steps_counts(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        env.step(0)
        env.step(1)
        assert env.elapsed_steps == 2


class TestRollout:
    def test_policy_receives_observations(self):
        env = CartPoleEnv(seed=0)
        seen = []

        def policy(obs):
            seen.append(obs)
            return 0

        rollout(env, policy, seed=5)
        assert seen
        assert all(len(obs) == 4 for obs in seen)

    def test_rewards_accumulate(self):
        env = CartPoleEnv(seed=0)
        result = rollout(env, lambda obs: 0, seed=5)
        assert result.total_reward == pytest.approx(sum(result.rewards))
        assert result.steps == len(result.rewards)

    def test_max_steps_tightens_cap(self):
        env = make("MountainCar-v0", seed=0)
        result = rollout(env, lambda obs: 1, max_steps=7, seed=3)
        assert result.steps <= 7

    def test_max_steps_cannot_exceed_env_cap(self):
        env = make("MountainCar-v0", seed=0)
        result = rollout(env, lambda obs: 1, max_steps=10_000, seed=3)
        assert result.steps <= env.max_episode_steps

    def test_same_seed_same_result(self):
        env = make("LunarLander-v2")
        a = rollout(env, lambda obs: 2, seed=42)
        b = rollout(env, lambda obs: 2, seed=42)
        assert a.total_reward == b.total_reward
        assert a.steps == b.steps

    def test_fitness_defaults_to_reward(self):
        env = CartPoleEnv(seed=0)
        result = rollout(env, lambda obs: 0, seed=1)
        assert result.fitness == result.total_reward
