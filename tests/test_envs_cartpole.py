"""Physics tests for CartPole-v0."""

import math

import pytest

from repro.envs.cartpole import CartPoleEnv


class TestCartPolePhysics:
    def test_initial_state_near_zero(self):
        env = CartPoleEnv(seed=3)
        obs = env.reset()
        assert all(abs(v) <= 0.05 for v in obs)

    def test_push_right_accelerates_cart_right(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        env._state = (0.0, 0.0, 0.0, 0.0)
        obs, _r, _d, _i = env.step(1)
        assert obs[1] > 0  # positive cart velocity

    def test_push_left_accelerates_cart_left(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        env._state = (0.0, 0.0, 0.0, 0.0)
        obs, _r, _d, _i = env.step(0)
        assert obs[1] < 0

    def test_upright_pole_falls_eventually(self):
        # constant force tips the pole within the 12-degree envelope
        env = CartPoleEnv(seed=0)
        env.reset()
        done = False
        steps = 0
        while not done and steps < 200:
            _obs, _r, done, _i = env.step(1)
            steps += 1
        assert done
        assert steps < 200

    def test_reward_is_one_per_step(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        _obs, reward, _d, _i = env.step(0)
        assert reward == 1.0

    def test_terminates_on_angle_limit(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        env._state = (0.0, 0.0, env.THETA_LIMIT * 0.999, 3.0)
        _obs, _r, done, _i = env.step(1)
        assert done

    def test_terminates_on_position_limit(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        env._state = (env.X_LIMIT * 0.999, 3.0, 0.0, 0.0)
        _obs, _r, done, _i = env.step(1)
        assert done

    def test_alternating_policy_survives_longer_than_constant(self):
        def run(policy):
            env = CartPoleEnv()
            env.seed(7)
            env.reset()
            steps, done = 0, False
            while not done and steps < 200:
                _o, _r, done, _i = env.step(policy(steps))
                steps += 1
            return steps

        constant = run(lambda t: 1)
        alternating = run(lambda t: t % 2)
        assert alternating > constant

    def test_energy_like_quantity_bounded_early(self):
        # within a few steps state stays physically reasonable
        env = CartPoleEnv(seed=1)
        env.reset()
        for _ in range(5):
            obs, _r, done, _i = env.step(0)
            if done:
                break
            assert abs(obs[0]) < 1.0
            assert abs(obs[2]) < math.pi / 2

    def test_solved_threshold(self):
        assert CartPoleEnv.solved_threshold == pytest.approx(195.0)
