"""Tests for the genome wire format."""

import pytest

from repro.cluster.serialization import (
    HEADER_WORDS,
    WORD_BYTES,
    decode_genome,
    decode_genomes,
    encode_genome,
    encode_genomes,
    genome_stream_bytes,
    genome_wire_bytes,
    genome_wire_floats,
)
from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome

from tests.conftest import make_evolved_genome


@pytest.fixture
def config():
    return NEATConfig(num_inputs=4, num_outputs=2)


def genomes_equal(a: Genome, b: Genome) -> bool:
    return (
        a.key == b.key
        and a.fitness == b.fitness
        and a.nodes == b.nodes
        and set(a.connections) == set(b.connections)
        and all(a.connections[k] == b.connections[k] for k in a.connections)
    )


class TestRoundTrip:
    def test_fresh_genome(self, config, rng):
        genome = Genome(3)
        genome.configure_new(config, rng)
        assert genomes_equal(genome, decode_genome(encode_genome(genome)))

    def test_evolved_genome(self, config):
        genome = make_evolved_genome(config, seed=5, mutations=60, key=11)
        assert genomes_equal(genome, decode_genome(encode_genome(genome)))

    def test_fitness_preserved(self, config, rng):
        genome = Genome(0)
        genome.configure_new(config, rng)
        genome.fitness = -123.456
        assert decode_genome(encode_genome(genome)).fitness == -123.456

    def test_unset_fitness_round_trips_as_none(self, config, rng):
        genome = Genome(0)
        genome.configure_new(config, rng)
        genome.fitness = None
        assert decode_genome(encode_genome(genome)).fitness is None

    def test_disabled_connections_preserved(self, config, rng):
        genome = Genome(0)
        genome.configure_new(config, rng)
        key = next(iter(genome.connections))
        genome.connections[key].enabled = False
        decoded = decode_genome(encode_genome(genome))
        assert not decoded.connections[key].enabled

    def test_bit_exact_weights(self, config):
        # the runtime depends on doubles surviving the round-trip exactly
        genome = make_evolved_genome(config, seed=9, mutations=40)
        decoded = decode_genome(encode_genome(genome))
        for key, gene in genome.connections.items():
            assert decoded.connections[key].weight == gene.weight

    def test_empty_genome(self):
        genome = Genome(7)
        decoded = decode_genome(encode_genome(genome))
        assert decoded.key == 7
        assert not decoded.nodes
        assert not decoded.connections

    def test_encode_is_canonical(self, config):
        # same content, different dict insertion order => same bytes
        genome = make_evolved_genome(config, seed=5, mutations=30)
        reordered = Genome(genome.key)
        reordered.fitness = genome.fitness
        for key in reversed(sorted(genome.nodes)):
            reordered.nodes[key] = genome.nodes[key].copy()
        for key in reversed(sorted(genome.connections)):
            reordered.connections[key] = genome.connections[key].copy()
        assert encode_genome(genome) == encode_genome(reordered)


class TestBatch:
    def test_batch_round_trip(self, config):
        batch = [
            make_evolved_genome(config, seed=i, mutations=20, key=i)
            for i in range(5)
        ]
        decoded = decode_genomes(encode_genomes(batch))
        assert len(decoded) == 5
        for original, copy in zip(batch, decoded):
            assert genomes_equal(original, copy)

    def test_empty_batch(self):
        assert decode_genomes(encode_genomes([])) == []

    def test_trailing_bytes_rejected(self, config, rng):
        genome = Genome(0)
        genome.configure_new(config, rng)
        data = encode_genomes([genome]) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            decode_genomes(data)


class TestValidation:
    def test_truncated_stream_rejected(self, config, rng):
        genome = Genome(0)
        genome.configure_new(config, rng)
        data = encode_genome(genome)
        with pytest.raises(ValueError):
            decode_genome(data[:-4])

    def test_short_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            decode_genome(b"\x00" * 4)


class TestAccounting:
    def test_wire_floats_formula(self, config, rng):
        genome = Genome(0)
        genome.configure_new(config, rng)
        expected = (
            HEADER_WORDS
            + NodeGene.FLOAT_FIELDS * len(genome.nodes)
            + ConnectionGene.FLOAT_FIELDS * len(genome.connections)
        )
        assert genome_wire_floats(genome) == expected

    def test_wire_bytes_is_words_times_four(self, config, rng):
        genome = Genome(0)
        genome.configure_new(config, rng)
        assert genome_wire_bytes(genome) == WORD_BYTES * genome_wire_floats(
            genome
        )

    def test_stream_bytes_matches_encoding(self, config):
        genome = make_evolved_genome(config, seed=2, mutations=25)
        assert genome_stream_bytes(genome) == len(encode_genome(genome))

    def test_wire_floats_grow_with_genes(self, config, rng):
        small = Genome(0)
        small.configure_new(config, rng)
        big = make_evolved_genome(config, seed=3, mutations=60)
        if big.gene_count() > small.gene_count():
            assert genome_wire_floats(big) > genome_wire_floats(small)
