"""Tests for the array-native genetics engine (scalar parity).

The contract (``docs/genetics.md``): batched distances match
``Genome.distance`` within 1e-9 and yield the *identical* speciation
partition; brood mutation keeps structure identical to the scalar
engine (same per-child stream prefix) and matches the scalar attribute
update in distribution.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neat.attributes import mutate_bool_array, mutate_float_array
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.population import Population
from repro.neat.reproduction import execute_plan, plan_generation
from repro.neat.species import SpeciesSet
from repro.neat.vectorized import (
    VectorizedDistanceCache,
    batch_distance,
    lower_genome,
    mutate_brood_attributes,
)
from repro.utils.rng import RngFactory

from tests.conftest import make_evolved_genome


def make_diverse_population(
    config, n, mutations=35, seed_offset=0, key_offset=0
):
    population = {}
    for i in range(n):
        key = i + key_offset
        genome = make_evolved_genome(
            config, seed=i + seed_offset, mutations=mutations, key=key
        )
        genome.fitness = float((i * 7) % 11)
        population[key] = genome
    return population


class TestDistanceParity:
    def test_matches_scalar_within_tolerance(self, small_config):
        population = make_diverse_population(small_config, 24)
        genomes = list(population.values())
        cache = VectorizedDistanceCache(small_config)
        for anchor in genomes[:8]:
            batched = cache.batch(anchor, genomes)
            for genome, got in zip(genomes, batched):
                expected = anchor.distance(genome, small_config)
                assert abs(got - expected) < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        seed_a=st.integers(0, 1000),
        seed_b=st.integers(0, 1000),
        mutations=st.integers(0, 60),
    )
    def test_pairwise_parity_property(self, seed_a, seed_b, mutations):
        config = NEATConfig(num_inputs=3, num_outputs=2, pop_size=4)
        a = make_evolved_genome(config, seed=seed_a, mutations=mutations,
                                key=0)
        b = make_evolved_genome(config, seed=seed_b, mutations=mutations,
                                key=1)
        got = batch_distance(
            lower_genome(a), [lower_genome(b), lower_genome(a)], config
        )
        assert abs(got[0] - a.distance(b, config)) < 1e-9
        assert got[1] == pytest.approx(0.0, abs=1e-12)

    def test_negative_node_key_rejected(self, small_config):
        """Hand-built genomes with out-of-range node keys would corrupt
        the packed key space; lowering must refuse them loudly."""
        from repro.neat.genes import NodeGene

        genome = Genome(0)
        genome.configure_new(small_config, random.Random(0))
        bad = NodeGene.__new__(NodeGene)
        bad.key = -5
        bad.bias = 0.0
        bad.response = 1.0
        bad.activation = "tanh"
        bad.aggregation = "sum"
        genome.nodes[-5] = bad
        with pytest.raises(ValueError, match="node keys"):
            lower_genome(genome)

    def test_empty_connection_genomes(self, small_config):
        # initial_connection="none" genomes have nodes but no connections
        a = Genome(0)
        b = Genome(1)
        config = small_config.evolve_with(initial_connection="none")
        rng = random.Random(0)
        a.configure_new(config, rng)
        b.configure_new(config, rng)
        got = batch_distance(lower_genome(a), [lower_genome(b)], config)
        assert abs(got[0] - a.distance(b, config)) < 1e-9

    def test_memoisation_and_stats_accounting(self, small_config):
        population = make_diverse_population(small_config, 6)
        genomes = list(population.values())
        cache = VectorizedDistanceCache(small_config)
        first = cache.batch(genomes[0], genomes[1:])
        assert cache.stats.comparisons == 5
        assert cache.stats.cache_hits == 0
        expected_genes = sum(
            genomes[0].gene_count() + g.gene_count() for g in genomes[1:]
        )
        assert cache.stats.genes_compared == expected_genes
        # the symmetric lookup hits the memo, batched or scalar-shaped
        again = cache.batch(genomes[1], [genomes[0]])
        assert again[0] == first[0]
        assert cache.stats.comparisons == 5
        assert cache.stats.cache_hits == 1

    def test_duplicate_candidates_count_as_hits(self, small_config):
        """A genome listed twice in one batch computes once — same
        accounting as the scalar cache."""
        population = make_diverse_population(small_config, 3)
        genomes = list(population.values())
        cache = VectorizedDistanceCache(small_config)
        result = cache.batch(
            genomes[0], [genomes[1], genomes[2], genomes[1]]
        )
        assert result[0] == result[2]
        assert cache.stats.comparisons == 2
        assert cache.stats.cache_hits == 1


class TestPartitionParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_identical_partition_on_seeded_population(
        self, small_config, seed
    ):
        population = make_diverse_population(
            small_config, 20, seed_offset=seed * 100
        )
        config_v = small_config.evolve_with(genetics="vectorized")
        scalar_set = SpeciesSet()
        vector_set = SpeciesSet()
        stats_s = scalar_set.speciate(
            population, 0, small_config, random.Random(seed)
        )
        stats_v = vector_set.speciate(
            population, 0, config_v, random.Random(seed)
        )
        assert scalar_set.genome_to_species == vector_set.genome_to_species
        assert set(scalar_set.species) == set(vector_set.species)
        assert stats_s.n_species == stats_v.n_species
        assert stats_s.comparisons == stats_v.comparisons
        assert stats_s.genes_compared == stats_v.genes_compared

    def test_identical_partition_across_generations(self, small_config):
        """Re-anchoring existing species takes the same decisions."""
        config_v = small_config.evolve_with(genetics="vectorized")
        scalar_set = SpeciesSet()
        vector_set = SpeciesSet()
        for generation in range(3):
            # fresh key ranges per generation, as real evolution
            # allocates them (genome keys are never reused)
            population = make_diverse_population(
                small_config, 16, seed_offset=generation * 50,
                key_offset=generation * 100,
            )
            scalar_set.speciate(
                population, generation, small_config,
                random.Random(generation),
            )
            vector_set.speciate(
                population, generation, config_v,
                random.Random(generation),
            )
            assert (
                scalar_set.genome_to_species
                == vector_set.genome_to_species
            )
            representatives_s = {
                sid: s.representative.key
                for sid, s in scalar_set.species.items()
            }
            representatives_v = {
                sid: s.representative.key
                for sid, s in vector_set.species.items()
            }
            assert representatives_s == representatives_v


class TestBatchedAttributeDistributions:
    N = 200_000

    def test_float_mutation_rates_and_moments(self):
        rng = np.random.default_rng(7)
        values = np.full(self.N, 2.0)
        out = mutate_float_array(
            values, rng,
            mutate_rate=0.5, replace_rate=0.2, mutate_power=0.4,
            init_mean=-3.0, init_stdev=0.1, low=-30.0, high=30.0,
        )
        perturbed = (out != 2.0) & (out > -1.0)
        replaced = out < -1.0
        unchanged = out == 2.0
        assert perturbed.mean() == pytest.approx(0.5, abs=0.01)
        assert replaced.mean() == pytest.approx(0.2, abs=0.01)
        assert unchanged.mean() == pytest.approx(0.3, abs=0.01)
        # perturbation noise: zero-mean Gaussian of scale mutate_power
        noise = out[perturbed] - 2.0
        assert noise.mean() == pytest.approx(0.0, abs=0.01)
        assert noise.std() == pytest.approx(0.4, abs=0.01)
        # replacement draw: the init distribution
        assert out[replaced].mean() == pytest.approx(-3.0, abs=0.01)
        assert out[replaced].std() == pytest.approx(0.1, abs=0.01)

    def test_float_mutation_respects_clamp_bounds(self):
        rng = np.random.default_rng(3)
        values = np.full(50_000, 0.9)
        out = mutate_float_array(
            values, rng,
            mutate_rate=0.9, replace_rate=0.1, mutate_power=5.0,
            init_mean=0.0, init_stdev=5.0, low=-1.0, high=1.0,
        )
        assert out.min() >= -1.0
        assert out.max() <= 1.0
        assert (out == 1.0).any() and (out == -1.0).any()

    def test_bool_mutation_flip_rate(self):
        rng = np.random.default_rng(11)
        values = np.ones(self.N, dtype=bool)
        out = mutate_bool_array(values, rng, 0.3)
        # a touched flag lands on True/False uniformly: observed False
        # share ~= rate / 2
        assert (~out).mean() == pytest.approx(0.15, abs=0.01)
        # zero rate draws nothing and copies
        same = mutate_bool_array(values, rng, 0.0)
        assert same.all() and same is not values

    def test_brood_mutation_matches_scalar_in_distribution(
        self, small_config
    ):
        """Weight deltas from the brood path match the scalar rule."""
        rng = np.random.default_rng(5)
        genomes = []
        for key in range(400):
            genome = Genome(key)
            genome.configure_new(small_config, random.Random(key))
            genomes.append(genome)
        before = np.asarray([
            genome.connections[k].weight
            for genome in genomes
            for k in sorted(genome.connections)
        ])
        mutate_brood_attributes(genomes, small_config, rng)
        after = np.asarray([
            genome.connections[k].weight
            for genome in genomes
            for k in sorted(genome.connections)
        ])
        changed = before != after
        # touched share = mutate + replace rate (0.8 + 0.1 by default;
        # a perturbation of exactly 0 is measure-zero)
        expected_rate = (
            small_config.weight_mutate_rate
            + small_config.weight_replace_rate
        )
        assert changed.mean() == pytest.approx(expected_rate, abs=0.03)
        assert after.min() >= small_config.weight_min
        assert after.max() <= small_config.weight_max


class TestVectorizedReproduction:
    def _plan_and_pool(self, config, n=24):
        population = make_diverse_population(config, n, mutations=20)
        species_set = SpeciesSet()
        species_set.speciate(population, 0, config, random.Random(0))
        counter = iter(range(1000, 5000))
        plan = plan_generation(
            config, species_set, 0, random.Random(1),
            lambda: next(counter),
        )
        return plan, population

    def test_brood_topology_identical_to_scalar(self, small_config):
        """Structural draws are the prefix of the scalar child stream."""
        plan, population = self._plan_and_pool(small_config)
        config_v = small_config.evolve_with(genetics="vectorized")
        rngs = RngFactory(9)

        def form(config, np_rng):
            innovation = InnovationTracker(
                next_node_id=config.num_outputs
            )
            return execute_plan(
                plan, population, config,
                lambda spec: RngFactory(9).get(f"c:{spec.child_key}"),
                innovation, np_rng=np_rng,
            )

        scalar_pop, scalar_stats = form(small_config, None)
        vector_pop, vector_stats = form(
            config_v, rngs.np_generator("brood:0")
        )
        assert set(scalar_pop) == set(vector_pop)
        for key in scalar_pop:
            assert set(scalar_pop[key].nodes) == set(vector_pop[key].nodes)
            assert (
                set(scalar_pop[key].connections)
                == set(vector_pop[key].connections)
            )
        assert scalar_stats.children_formed == vector_stats.children_formed

    def test_brood_deterministic_for_seed(self, small_config):
        plan, population = self._plan_and_pool(small_config)
        config_v = small_config.evolve_with(genetics="vectorized")

        def form():
            innovation = InnovationTracker(
                next_node_id=config_v.num_outputs
            )
            return execute_plan(
                plan, population, config_v,
                lambda spec: RngFactory(9).get(f"c:{spec.child_key}"),
                innovation,
                np_rng=RngFactory(9).np_generator("brood:0"),
            )[0]

        first = form()
        second = form()
        for key in first:
            assert first[key].nodes == second[key].nodes
            assert first[key].connections == second[key].connections

    def test_vectorized_requires_np_rng(self, small_config):
        plan, population = self._plan_and_pool(small_config)
        config_v = small_config.evolve_with(genetics="vectorized")
        innovation = InnovationTracker(next_node_id=config_v.num_outputs)
        with pytest.raises(ValueError, match="np_rng"):
            execute_plan(
                plan, population, config_v,
                lambda spec: random.Random(spec.child_key),
                innovation,
            )


class TestVectorizedGenerationLoop:
    def test_population_runs_end_to_end(self):
        config = NEATConfig.for_env(
            "CartPole-v0", pop_size=20, genetics="vectorized"
        )
        population = Population(config, seed=4)

        def evaluate(genomes, generation):
            from repro.neat.evaluation import GenomeEvaluator

            evaluator = GenomeEvaluator("CartPole-v0", seed=4)
            return evaluator.evaluate_many(genomes, config, generation)

        stats = population.run(evaluate, max_generations=2)
        assert len(stats) == 2
        assert stats[-1].population_size == 20
        assert stats[-1].speciation_comparisons > 0

    def test_invalid_genetics_rejected(self):
        with pytest.raises(ValueError, match="genetics"):
            NEATConfig(genetics="simd")
