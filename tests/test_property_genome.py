"""Property-based tests (hypothesis) for genome invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome, creates_cycle
from repro.neat.innovation import InnovationTracker

CONFIG = NEATConfig(num_inputs=3, num_outputs=2, pop_size=10)


def evolved(seed: int, mutations: int, key: int = 0) -> Genome:
    rng = random.Random(seed)
    tracker = InnovationTracker(next_node_id=CONFIG.num_outputs)
    genome = Genome(key)
    genome.configure_new(CONFIG, rng)
    for _ in range(mutations):
        genome.mutate(CONFIG, rng, tracker)
    return genome


@st.composite
def genome_strategy(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    mutations = draw(st.integers(min_value=0, max_value=25))
    return evolved(seed, mutations)


class TestStructuralInvariants:
    @given(genome_strategy())
    @settings(max_examples=40, deadline=None)
    def test_outputs_always_present(self, genome):
        for key in CONFIG.output_keys:
            assert key in genome.nodes

    @given(genome_strategy())
    @settings(max_examples=40, deadline=None)
    def test_connection_endpoints_exist(self, genome):
        input_keys = set(CONFIG.input_keys)
        for (in_node, out_node) in genome.connections:
            assert in_node in genome.nodes or in_node in input_keys
            assert out_node in genome.nodes

    @given(genome_strategy())
    @settings(max_examples=40, deadline=None)
    def test_graph_always_acyclic(self, genome):
        edges = list(genome.connections)
        for edge in edges:
            others = [e for e in edges if e != edge]
            assert not creates_cycle(others, edge)

    @given(genome_strategy())
    @settings(max_examples=40, deadline=None)
    def test_attributes_within_bounds(self, genome):
        for gene in genome.connections.values():
            assert CONFIG.weight_min <= gene.weight <= CONFIG.weight_max
        for gene in genome.nodes.values():
            assert CONFIG.bias_min <= gene.bias <= CONFIG.bias_max


class TestDistanceMetric:
    @given(genome_strategy(), genome_strategy())
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, a, b):
        assert abs(
            a.distance(b, CONFIG) - b.distance(a, CONFIG)
        ) < 1e-12

    @given(genome_strategy())
    @settings(max_examples=30, deadline=None)
    def test_identity(self, genome):
        assert genome.distance(genome, CONFIG) == 0.0
        assert genome.distance(genome.copy(new_key=99), CONFIG) == 0.0

    @given(genome_strategy(), genome_strategy())
    @settings(max_examples=30, deadline=None)
    def test_non_negative(self, a, b):
        assert a.distance(b, CONFIG) >= 0.0


class TestCrossoverInvariants:
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=30, deadline=None)
    def test_child_structure_equals_fitter_parent(
        self, seed_a, seed_b, mut_a, mut_b, cross_seed
    ):
        a = evolved(seed_a, mut_a, key=0)
        b = evolved(seed_b, mut_b, key=1)
        a.fitness, b.fitness = 2.0, 1.0
        child = Genome.crossover(2, a, b, random.Random(cross_seed))
        assert set(child.nodes) == set(a.nodes)
        assert set(child.connections) == set(a.connections)

    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=30, deadline=None)
    def test_attributes_from_some_parent(self, seed, cross_seed):
        a = evolved(seed, 10, key=0)
        b = evolved(seed + 1, 10, key=1)
        a.fitness, b.fitness = 2.0, 1.0
        child = Genome.crossover(2, a, b, random.Random(cross_seed))
        for key, gene in child.connections.items():
            sources = {a.connections[key].weight}
            if key in b.connections:
                sources.add(b.connections[key].weight)
            assert gene.weight in sources


class TestCopySemantics:
    @given(genome_strategy())
    @settings(max_examples=30, deadline=None)
    def test_copy_equal_but_independent(self, genome):
        clone = genome.copy()
        assert clone.distance(genome, CONFIG) == 0.0
        for gene in clone.connections.values():
            gene.weight = CONFIG.weight_max
        # at least one original connection must differ now (unless all
        # weights were already at max, which the init distribution forbids)
        if genome.connections:
            assert any(
                genome.connections[k].weight != clone.connections[k].weight
                for k in genome.connections
            ) or all(
                g.weight == CONFIG.weight_max
                for g in genome.connections.values()
            )
