"""Failure injection: the system must fail loudly and cleanly.

Edge deployments see corrupted transfers, dying workers and broken
evaluators; these tests verify each failure surfaces as a clear error at
the right layer instead of silent corruption.
"""

import pytest

from repro.cluster.serialization import (
    decode_genome,
    decode_genomes,
    encode_genome,
    encode_genomes,
)
from repro.cluster.transport import EvalRequest, WorkerPool
from repro.core.protocols import SerialNEAT
from repro.neat.config import NEATConfig
from repro.neat.population import Population


@pytest.fixture
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=10)


class TestCorruptedWireData:
    def test_truncated_genome_rejected(self, config):
        population = Population(config, seed=0)
        data = encode_genome(next(iter(population.genomes.values())))
        for cut in (1, 4, len(data) // 2, len(data) - 1):
            with pytest.raises(ValueError):
                decode_genome(data[:cut])

    def test_bit_flip_in_counts_rejected(self, config):
        population = Population(config, seed=0)
        data = bytearray(
            encode_genome(next(iter(population.genomes.values())))
        )
        data[12] ^= 0xFF  # node-count word: length check must fire
        with pytest.raises(ValueError):
            decode_genome(bytes(data))

    def test_invalid_activation_id_rejected(self, config):
        population = Population(config, seed=0)
        genome = next(iter(population.genomes.values()))
        data = bytearray(encode_genome(genome))
        # first node record: activation-id word sits after header(20B) +
        # key(4) + bias(8) + response(8)
        offset = 20 + 4 + 8 + 8
        data[offset:offset + 4] = (10_000).to_bytes(4, "little")
        with pytest.raises(ValueError, match="activation"):
            decode_genome(bytes(data))

    def test_batch_with_garbage_tail_rejected(self, config):
        population = Population(config, seed=0)
        genomes = list(population.genomes.values())[:2]
        data = encode_genomes(genomes) + b"\xde\xad\xbe\xef"
        with pytest.raises(ValueError):
            decode_genomes(data)


class TestWorkerFailures:
    def test_worker_exception_propagates_with_traceback(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            # generation is used in arithmetic inside the evaluator;
            # a string payload explodes inside the worker process
            pool._request(0, "eval", EvalRequest(
                genomes_wire=encode_genomes([]), generation="boom"
            ))
            reply_status, value = pool._conns[0].recv()
            # empty shard is fine; now corrupt wire data must error
        with WorkerPool(1, "CartPole-v0", config) as pool:
            pool._request(
                0, "eval",
                EvalRequest(genomes_wire=b"\x01\x00\x00\x00junk",
                            generation=0),
            )
            with pytest.raises(RuntimeError, match="worker 0 failed"):
                pool._collect(0)

    def test_unknown_command_surfaces(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            pool._request(0, "frobnicate", None)
            with pytest.raises(RuntimeError, match="unknown command"):
                pool._collect(0)

    def test_clan_step_before_init_surfaces(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            pool._request(0, "clan_step", 0)
            with pytest.raises(RuntimeError, match="clan_step"):
                pool._collect(0)


class TestEvaluatorFailures:
    def test_broken_evaluator_stops_engine(self, config):
        engine = SerialNEAT("CartPole-v0", config=config, seed=0)

        class Broken:
            def evaluate(self, genome, config, generation):
                raise OSError("sensor offline")

        engine.evaluator = Broken()
        with pytest.raises(OSError, match="sensor offline"):
            engine.run_generation()

    def test_partial_results_rejected_by_population(self, config):
        population = Population(config, seed=0)

        def evaluate(genomes, generation):
            from repro.neat.evaluation import FitnessResult

            return {
                g.key: FitnessResult(g.key, 1.0, 1, 1.0, False)
                for g in list(genomes)[:-1]  # drop one
            }

        with pytest.raises(ValueError, match="no fitness"):
            population.run_generation(evaluate)
