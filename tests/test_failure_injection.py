"""Failure injection: the system must fail loudly and cleanly.

Edge deployments see corrupted transfers, dying workers and broken
evaluators; these tests verify each failure surfaces as a clear error at
the right layer instead of silent corruption — and, for the clan
runtime's supervision loop, that a SIGKILLed or stalled clan is respawned
from its checkpoint and the run ends exactly where an undisturbed run
would (see docs/fault_tolerance.md).
"""

import json
import os
import signal

import pytest

from repro.cluster.runtime import DistributedClanRuntime
from repro.cluster.serialization import (
    decode_genome,
    decode_genomes,
    encode_genome,
    encode_genomes,
)
from repro.cluster.transport import (
    EvalRequest,
    WorkerDied,
    WorkerPool,
    WorkerTimeout,
)
from repro.cluster.worker_clan import WorkerClan
from repro.core.protocols import SerialNEAT
from repro.neat.config import NEATConfig
from repro.neat.evaluation import GenomeEvaluator
from repro.neat.population import Population
from repro.utils.rng import RngFactory


@pytest.fixture
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=10)


class TestCorruptedWireData:
    def test_truncated_genome_rejected(self, config):
        population = Population(config, seed=0)
        data = encode_genome(next(iter(population.genomes.values())))
        for cut in (1, 4, len(data) // 2, len(data) - 1):
            with pytest.raises(ValueError):
                decode_genome(data[:cut])

    def test_bit_flip_in_counts_rejected(self, config):
        population = Population(config, seed=0)
        data = bytearray(
            encode_genome(next(iter(population.genomes.values())))
        )
        data[12] ^= 0xFF  # node-count word: length check must fire
        with pytest.raises(ValueError):
            decode_genome(bytes(data))

    def test_invalid_activation_id_rejected(self, config):
        population = Population(config, seed=0)
        genome = next(iter(population.genomes.values()))
        data = bytearray(encode_genome(genome))
        # first node record: activation-id word sits after header(20B) +
        # key(4) + bias(8) + response(8)
        offset = 20 + 4 + 8 + 8
        data[offset:offset + 4] = (10_000).to_bytes(4, "little")
        with pytest.raises(ValueError, match="activation"):
            decode_genome(bytes(data))

    def test_batch_with_garbage_tail_rejected(self, config):
        population = Population(config, seed=0)
        genomes = list(population.genomes.values())[:2]
        data = encode_genomes(genomes) + b"\xde\xad\xbe\xef"
        with pytest.raises(ValueError):
            decode_genomes(data)


class TestWorkerFailures:
    def test_worker_exception_propagates_with_traceback(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            # generation is used in arithmetic inside the evaluator;
            # a string payload explodes inside the worker process
            pool._request(0, "eval", EvalRequest(
                genomes_wire=encode_genomes([]), generation="boom"
            ))
            reply_status, value = pool._conns[0].recv()
            # empty shard is fine; now corrupt wire data must error
        with WorkerPool(1, "CartPole-v0", config) as pool:
            pool._request(
                0, "eval",
                EvalRequest(genomes_wire=b"\x01\x00\x00\x00junk",
                            generation=0),
            )
            with pytest.raises(RuntimeError, match="worker 0 failed"):
                pool._collect(0)

    def test_unknown_command_surfaces(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            pool._request(0, "frobnicate", None)
            with pytest.raises(RuntimeError, match="unknown command"):
                pool._collect(0)

    def test_clan_step_before_init_surfaces(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            pool._request(0, "clan_step", 0)
            with pytest.raises(RuntimeError, match="clan_step"):
                pool._collect(0)


class TestTransportLiveness:
    """Death/hang detection primitives the supervision loop builds on."""

    def test_timeout_on_stalled_worker(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            pool.send(0, "inject_stall", 60.0)
            pool.send(0, "ping")
            with pytest.raises(WorkerTimeout):
                pool._collect(0, timeout=0.2)
            assert pool.is_alive(0)
            pool.kill(0)  # don't wait a minute for shutdown

    def test_sigkill_surfaces_as_worker_died(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            pool._procs[0].join(timeout=5)
            with pytest.raises(WorkerDied):
                # either the send EPIPEs or the collect hits EOF —
                # both must surface as WorkerDied
                pool.send(0, "ping")
                pool._collect(0, timeout=5.0)
            assert not pool.is_alive(0)
            # once marked dead, sends fail fast instead of EPIPE-ing
            with pytest.raises(WorkerDied):
                pool.send(0, "ping")

    def test_wait_any_reports_death_and_excludes_slot(self, config):
        with WorkerPool(2, "CartPole-v0", config) as pool:
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            pool._procs[1].join(timeout=5)
            triples = pool.wait_any(timeout=5.0)
            assert (1, "died", None) in triples
            assert pool.ping(0)
            # the dead slot is excluded from subsequent waits
            assert pool.wait_any(timeout=0.05) == []

    def test_respawn_brings_slot_back(self, config):
        with WorkerPool(1, "CartPole-v0", config) as pool:
            pool.kill(0)
            assert not pool.is_alive(0)
            pool.respawn(0)
            assert pool.is_alive(0)
            assert pool.ping(0)


def _make_clan(config, seed=8):
    """An in-process WorkerClan seeded exactly like a 1-clan runtime."""
    population = Population(config, seed=seed)
    rngs = RngFactory(seed)
    evaluator = GenomeEvaluator(
        "CartPole-v0", seed=rngs.seed_for("episodes") % (2**31)
    )
    members = [population.genomes[key] for key in sorted(population.genomes)]
    return WorkerClan(
        env_id="CartPole-v0",
        config=config,
        evaluator=evaluator,
        clan_id=0,
        n_clans=1,
        members_wire=encode_genomes(members),
        rng_seed=rngs.child("clan:0").root_seed,
        next_genome_key=config.pop_size,
        num_outputs=config.num_outputs,
    )


class TestClanCheckpointRoundTrip:
    """A restored clan must be state-identical, not just similar."""

    def test_restore_preserves_all_evolution_state(self, config):
        original = _make_clan(config)
        for generation in range(2):
            original.run_generation(generation)
        payload = original.checkpoint_payload()
        # the payload must survive a JSON hop (it rides a pipe today but
        # is designed to be dumpable, like population checkpoints)
        payload = json.loads(json.dumps(payload))
        restored = WorkerClan.restore(
            env_id="CartPole-v0",
            config=config,
            evaluator=_make_clan(config).evaluator,
            payload=payload,
        )
        # membership: same genomes, byte-identical
        assert sorted(restored.members) == sorted(original.members)
        assert encode_genomes(
            [restored.members[k] for k in sorted(restored.members)]
        ) == encode_genomes(
            [original.members[k] for k in sorted(original.members)]
        )
        # species: same partition, same history
        assert set(restored.species_set.species) == set(
            original.species_set.species
        )
        for key, species in original.species_set.species.items():
            twin = restored.species_set.species[key]
            assert sorted(twin.members) == sorted(species.members)
            assert twin.created == species.created
            assert twin.last_improved == species.last_improved
            assert twin.fitness_history == species.fitness_history
        assert (
            restored.species_set.genome_to_species
            == original.species_set.genome_to_species
        )
        # allocators and RNG stream root (streams are name-derived, so
        # the root seed IS the stream position)
        assert restored._next_key == original._next_key
        assert (
            restored.innovation.next_node_id
            == original.innovation.next_node_id
        )
        assert restored.rngs.root_seed == original.rngs.root_seed
        assert restored.last_generation == original.last_generation
        assert restored.best_fitness == original.best_fitness

    def test_restored_clan_continues_bit_identically(self, config):
        original = _make_clan(config)
        for generation in range(2):
            original.run_generation(generation)
        restored = WorkerClan.restore(
            env_id="CartPole-v0",
            config=config,
            evaluator=_make_clan(config).evaluator,
            payload=original.checkpoint_payload(),
        )
        for generation in (2, 3):
            a = original.run_generation(generation)
            b = restored.run_generation(generation)
            assert a == b
        assert encode_genomes(
            [original.members[k] for k in sorted(original.members)]
        ) == encode_genomes(
            [restored.members[k] for k in sorted(restored.members)]
        )

    def test_restore_rejects_unknown_version(self, config):
        clan = _make_clan(config)
        payload = clan.checkpoint_payload()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            WorkerClan.restore(
                env_id="CartPole-v0",
                config=config,
                evaluator=clan.evaluator,
                payload=payload,
            )


@pytest.fixture
def ft_config():
    return NEATConfig.for_env("CartPole-v0", pop_size=24)


def _runtime(ft_config, **kwargs):
    kwargs.setdefault("heartbeat_timeout_s", 30.0)
    kwargs.setdefault("respawn_backoff_s", 0.0)
    return DistributedClanRuntime(
        "CartPole-v0", n_clans=3, config=ft_config, seed=8, **kwargs
    )


class TestRuntimeSupervision:
    """Kill/stall a live clan fleet; the run must recover and match an
    undisturbed run exactly (recovery replays are bit-identical)."""

    BUDGET = 3

    def _baseline_async(self, ft_config):
        with _runtime(ft_config) as runtime:
            stats = runtime.run_async(
                max_generations=self.BUDGET, fitness_threshold=1e9
            )
            best = runtime.best_genome()
        assert not stats.churn  # undisturbed: all counters zero
        return stats, best

    def test_async_recovers_from_sigkill(self, ft_config):
        baseline, baseline_best = self._baseline_async(ft_config)
        with _runtime(ft_config) as runtime:
            # SIGKILL before the run: the initial send fails, and the
            # supervisor respawns from the clan_init checkpoint
            os.kill(runtime.pool._procs[1].pid, signal.SIGKILL)
            runtime.pool._procs[1].join(timeout=5)
            stats = runtime.run_async(
                max_generations=self.BUDGET, fitness_threshold=1e9
            )
            best = runtime.best_genome()
        assert stats.churn.deaths == 1
        assert stats.churn.respawns == 1
        assert stats.churn.clans_lost == 0
        assert stats.per_clan_generations == baseline.per_clan_generations
        assert stats.best_fitness == baseline.best_fitness
        assert encode_genome(best) == encode_genome(baseline_best)

    def test_async_recovers_from_midrun_sigkill(self, ft_config):
        baseline, baseline_best = self._baseline_async(ft_config)
        killed = []

        def kill_once(event):
            if not killed:
                victim = (event.clan_id + 1) % 3
                os.kill(
                    _rt.pool._procs[victim].pid, signal.SIGKILL
                )
                killed.append(victim)

        with _runtime(ft_config) as _rt:
            stats = _rt.run_async(
                max_generations=self.BUDGET,
                fitness_threshold=1e9,
                on_champion=kill_once,
            )
            best = _rt.best_genome()
        assert killed
        assert stats.churn.deaths == 1
        assert stats.churn.respawns == 1
        assert stats.per_clan_generations == baseline.per_clan_generations
        assert stats.best_fitness == baseline.best_fitness
        assert encode_genome(best) == encode_genome(baseline_best)

    def test_async_detects_stall_and_recovers(self, ft_config):
        baseline, baseline_best = self._baseline_async(ft_config)
        with _runtime(ft_config, heartbeat_timeout_s=1.0) as runtime:
            # wedge one worker before the run: it never answers clan_run,
            # so only the heartbeat scan can save it
            runtime.pool.send(2, "inject_stall", 120.0)
            stats = runtime.run_async(
                max_generations=self.BUDGET, fitness_threshold=1e9
            )
            best = runtime.best_genome()
        assert stats.churn.deaths == 1
        assert stats.churn.respawns == 1
        assert stats.per_clan_generations == baseline.per_clan_generations
        assert stats.best_fitness == baseline.best_fitness
        assert encode_genome(best) == encode_genome(baseline_best)

    def test_async_degrades_and_reassigns_budget(self, ft_config):
        with _runtime(ft_config, max_respawns=0) as runtime:
            os.kill(runtime.pool._procs[1].pid, signal.SIGKILL)
            runtime.pool._procs[1].join(timeout=5)
            stats = runtime.run_async(
                max_generations=self.BUDGET, fitness_threshold=1e9
            )
            best = runtime.best_genome()  # survivors still answer
        assert stats.churn.deaths == 1
        assert stats.churn.respawns == 0
        assert stats.churn.clans_lost == 1
        assert stats.churn.reassigned_generations == self.BUDGET
        assert stats.per_clan_generations[1] == 0
        # the lost clan's budget was handed to a survivor: total local
        # generations still equals clans x budget
        assert sum(stats.per_clan_generations) == 3 * self.BUDGET
        assert best.fitness > float("-inf")

    def test_barrier_run_recovers_from_sigkill(self, ft_config):
        with _runtime(ft_config) as runtime:
            baseline = runtime.run(
                max_generations=self.BUDGET, fitness_threshold=1e9
            )
        assert not baseline.churn
        with _runtime(ft_config) as runtime:
            os.kill(runtime.pool._procs[0].pid, signal.SIGKILL)
            runtime.pool._procs[0].join(timeout=5)
            stats = runtime.run(
                max_generations=self.BUDGET, fitness_threshold=1e9
            )
        assert stats.churn.deaths == 1
        assert stats.churn.respawns == 1
        # barrier trajectories are arrival-order-free: exact match
        assert (
            stats.best_fitness_per_generation
            == baseline.best_fitness_per_generation
        )

    def test_barrier_run_recovers_from_stall(self, ft_config):
        with _runtime(ft_config) as runtime:
            baseline = runtime.run(
                max_generations=self.BUDGET, fitness_threshold=1e9
            )
        with _runtime(ft_config, heartbeat_timeout_s=1.0) as runtime:
            runtime.pool.send(1, "inject_stall", 120.0)
            stats = runtime.run(
                max_generations=self.BUDGET, fitness_threshold=1e9
            )
        assert stats.churn.deaths == 1
        assert stats.churn.respawns == 1
        assert (
            stats.best_fitness_per_generation
            == baseline.best_fitness_per_generation
        )


class TestEvaluatorFailures:
    def test_broken_evaluator_stops_engine(self, config):
        engine = SerialNEAT("CartPole-v0", config=config, seed=0)

        class Broken:
            def evaluate(self, genome, config, generation):
                raise OSError("sensor offline")

        engine.evaluator = Broken()
        with pytest.raises(OSError, match="sensor offline"):
            engine.run_generation()

    def test_partial_results_rejected_by_population(self, config):
        population = Population(config, seed=0)

        def evaluate(genomes, generation):
            from repro.neat.evaluation import FitnessResult

            return {
                g.key: FitnessResult(g.key, 1.0, 1, 1.0, False)
                for g in list(genomes)[:-1]  # drop one
            }

        with pytest.raises(ValueError, match="no fitness"):
            population.run_generation(evaluate)
