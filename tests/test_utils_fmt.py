"""Tests for repro.utils.fmt: table and number rendering."""

from repro.utils.fmt import format_quantity, format_seconds, format_table


class TestFormatQuantity:
    def test_small_integer(self):
        assert format_quantity(12) == "12"

    def test_small_float(self):
        assert format_quantity(1.5) == "1.50"

    def test_thousands(self):
        assert format_quantity(1200) == "1.20K"

    def test_millions(self):
        assert format_quantity(3_400_000) == "3.40M"

    def test_billions(self):
        assert format_quantity(2_500_000_000) == "2.50G"

    def test_negative(self):
        assert format_quantity(-1500) == "-1.50K"

    def test_zero(self):
        assert format_quantity(0) == "0"


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(2.5) == "2.50s"

    def test_milliseconds(self):
        assert format_seconds(0.0025) == "2.50ms"

    def test_microseconds(self):
        assert format_seconds(2.5e-6) == "2.50us"

    def test_nanoseconds(self):
        assert format_seconds(3e-9) == "3.00ns"


class TestFormatTable:
    def test_basic_alignment(self):
        table = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = table.splitlines()
        assert lines[0] == "a  | bb"
        assert lines[2] == "1  | 2 "
        assert lines[3] == "33 | 4 "

    def test_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table

    def test_wide_cells_stretch_columns(self):
        table = format_table(["h"], [["wider-than-header"]])
        header, _sep, row = table.splitlines()
        assert len(header) == len(row)
