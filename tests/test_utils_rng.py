"""Tests for repro.utils.rng: deterministic stream derivation."""

import random

from repro.utils.rng import RngFactory, spawn_rng


class TestSpawnRng:
    def test_same_inputs_same_stream(self):
        a = spawn_rng(42, "x")
        b = spawn_rng(42, "x")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_names_different_streams(self):
        a = spawn_rng(42, "x")
        b = spawn_rng(42, "y")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_different_seeds_different_streams(self):
        a = spawn_rng(1, "x")
        b = spawn_rng(2, "x")
        assert a.random() != b.random()

    def test_returns_random_instance(self):
        assert isinstance(spawn_rng(0, "s"), random.Random)


class TestRngFactory:
    def test_get_is_reproducible(self):
        factory = RngFactory(7)
        assert factory.get("m").random() == factory.get("m").random()

    def test_get_returns_fresh_generators(self):
        factory = RngFactory(7)
        a = factory.get("m")
        a.random()
        b = factory.get("m")
        # b starts from the beginning of the stream, unaffected by a
        assert b.random() == factory.get("m").random()

    def test_seed_for_matches_get(self):
        factory = RngFactory(7)
        seed = factory.seed_for("stream")
        assert random.Random(seed).random() == factory.get("stream").random()

    def test_child_namespacing(self):
        factory = RngFactory(7)
        child_a = factory.child("a")
        child_b = factory.child("b")
        assert child_a.root_seed != child_b.root_seed
        assert child_a.get("x").random() != child_b.get("x").random()

    def test_child_is_deterministic(self):
        assert (
            RngFactory(7).child("a").root_seed
            == RngFactory(7).child("a").root_seed
        )

    def test_cross_platform_stability(self):
        # derivation is hash-based and must not change across runs
        assert RngFactory(0).seed_for("anchor") == RngFactory(0).seed_for(
            "anchor"
        )
