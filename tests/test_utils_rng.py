"""Tests for repro.utils.rng: deterministic stream derivation."""

import random

from repro.utils.rng import (
    RngFactory,
    episode_seed,
    spawn_lane_rngs,
    spawn_np_generator,
    spawn_rng,
)


class TestEnvSeedingScheme:
    def test_episode_seed_is_the_evaluator_formula(self):
        # the single source of truth both rollout paths consume
        from repro.neat.evaluation import GenomeEvaluator

        evaluator = GenomeEvaluator("CartPole-v0", seed=17)
        for generation in (0, 3):
            for episode in (0, 2):
                assert evaluator.episode_seed(
                    generation, episode
                ) == episode_seed(17, generation, episode)

    def test_episode_seeds_distinct(self):
        seen = {
            episode_seed(5, generation, episode)
            for generation in range(50)
            for episode in range(8)
        }
        assert len(seen) == 50 * 8

    def test_lane_rngs_match_scalar_env_seeding(self):
        # lane i must consume the identical stream Environment.seed builds
        seeds = [3, 99, 12345]
        lanes = spawn_lane_rngs(seeds)
        for seed, lane in zip(seeds, lanes):
            assert lane.random() == random.Random(seed).random()

    def test_np_generator_deterministic_and_independent(self):
        a = spawn_np_generator(42, "drift")
        b = spawn_np_generator(42, "drift")
        assert a.random() == b.random()
        c = spawn_np_generator(42, "noise")
        assert spawn_np_generator(42, "drift").random() != c.random()
        # independent of the random.Random stream of the same name
        assert spawn_rng(42, "drift").random() != spawn_np_generator(
            42, "drift"
        ).random()


class TestSpawnRng:
    def test_same_inputs_same_stream(self):
        a = spawn_rng(42, "x")
        b = spawn_rng(42, "x")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_names_different_streams(self):
        a = spawn_rng(42, "x")
        b = spawn_rng(42, "y")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_different_seeds_different_streams(self):
        a = spawn_rng(1, "x")
        b = spawn_rng(2, "x")
        assert a.random() != b.random()

    def test_returns_random_instance(self):
        assert isinstance(spawn_rng(0, "s"), random.Random)


class TestRngFactory:
    def test_get_is_reproducible(self):
        factory = RngFactory(7)
        assert factory.get("m").random() == factory.get("m").random()

    def test_get_returns_fresh_generators(self):
        factory = RngFactory(7)
        a = factory.get("m")
        a.random()
        b = factory.get("m")
        # b starts from the beginning of the stream, unaffected by a
        assert b.random() == factory.get("m").random()

    def test_seed_for_matches_get(self):
        factory = RngFactory(7)
        seed = factory.seed_for("stream")
        assert random.Random(seed).random() == factory.get("stream").random()

    def test_child_namespacing(self):
        factory = RngFactory(7)
        child_a = factory.child("a")
        child_b = factory.child("b")
        assert child_a.root_seed != child_b.root_seed
        assert child_a.get("x").random() != child_b.get("x").random()

    def test_child_is_deterministic(self):
        assert (
            RngFactory(7).child("a").root_seed
            == RngFactory(7).child("a").root_seed
        )

    def test_cross_platform_stability(self):
        # derivation is hash-based and must not change across runs
        assert RngFactory(0).seed_for("anchor") == RngFactory(0).seed_for(
            "anchor"
        )
