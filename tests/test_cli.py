"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestLearn:
    def test_learn_prints_progress_and_timing(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DDA",
                "--agents", "4",
                "--pop", "32",
                "--generations", "3",
                "--threshold", "1e9",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "generation   0" in out
        assert "communication" in out

    def test_learn_converges_exit_zero(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--pop", "32",
                "--generations", "30",
                "--threshold", "30",
            ]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_learn_with_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "pop.json"
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "20",
                "--generations", "2",
                "--threshold", "1e9",
                "--checkpoint", str(path),
            ]
        )
        assert code in (0, 1)
        assert path.exists()

    def test_learn_prints_speciation_counters(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "20",
                "--generations", "2",
                "--threshold", "1e9",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "speciation:" in out
        assert "comparisons" in out
        assert "(scalar genetics)" in out
        # scalar backend compiles no plans -> no cache line
        assert "plan cache" not in out

    def test_learn_vectorized_genetics_with_plan_cache(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DDA",
                "--agents", "2",
                "--pop", "20",
                "--generations", "2",
                "--genetics", "vectorized",
                "--backend", "batched",
                "--threshold", "1e9",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "vectorized genetics" in out
        assert "plan cache" in out

    def test_serial_forces_one_agent(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--agents", "5",
                "--pop", "20",
                "--generations", "1",
                "--threshold", "1e9",
            ]
        )
        assert code in (0, 1)
        assert "on 1 x raspberry_pi" in capsys.readouterr().out

    def test_unknown_env_rejected(self):
        with pytest.raises(SystemExit):
            main(["learn", "Pong-v0"])

    def test_learn_population_eval_mode(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--pop", "24",
                "--generations", "2",
                "--threshold", "1e9",
                "--backend", "batched",
                "--eval-mode", "population",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "population sweep" in out
        assert "generation   1" in out

    def test_population_eval_mode_matches_per_genome(self, capsys):
        def run(eval_mode):
            main(
                [
                    "learn", "CartPole-v0",
                    "--protocol", "CLAN_DDA",
                    "--agents", "2",
                    "--pop", "24",
                    "--generations", "2",
                    "--threshold", "1e9",
                    "--backend", "batched",
                    "--eval-mode", eval_mode,
                ]
            )
            out = capsys.readouterr().out
            return [
                line.split("best")[1]
                for line in out.splitlines()
                if "generation" in line and "best" in line
            ]

        assert run("per_genome") == run("population")

    def test_population_eval_mode_requires_batched(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--pop", "20",
                "--generations", "1",
                "--eval-mode", "population",
            ]
        )
        assert code == 2
        assert "batched" in capsys.readouterr().err

    def test_unknown_eval_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["learn", "CartPole-v0", "--eval-mode", "warp"]
            )


LEARN_QUICK = [
    "learn", "CartPole-v0",
    "--pop", "24",
    "--generations", "2",
    "--threshold", "1e9",
]


class TestLearnFleetAndSimMode:
    def test_heterogeneous_devices(self, capsys):
        code = main(
            LEARN_QUICK + ["--devices", "jetson_nano,raspberry_pi,pi_zero"]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "[jetson_nano, raspberry_pi, pi_zero]" in out

    def test_unknown_device_in_list_rejected(self, capsys):
        code = main(LEARN_QUICK + ["--devices", "raspberry_pi,tpu"])
        assert code == 2
        assert "tpu" in capsys.readouterr().err

    def test_sim_mode_async(self, capsys):
        code = main(
            LEARN_QUICK + [
                "--agents", "3",
                "--sim-mode", "async",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "simulated (async)" in out
        assert "straggler gap" in out

    def test_sim_mode_async_rejected_for_synchronous_protocols(
        self, capsys
    ):
        code = main(
            LEARN_QUICK + [
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--sim-mode", "async",
            ]
        )
        assert code == 2
        assert "CLAN_DDA" in capsys.readouterr().err

    def test_resync_period(self, capsys):
        code = main(
            LEARN_QUICK + ["--agents", "3", "--resync-period", "2"]
        )
        assert code in (0, 1)

    def test_resync_period_must_be_positive(self, capsys):
        code = main(LEARN_QUICK + ["--resync-period", "0"])
        assert code == 2
        assert ">= 1" in capsys.readouterr().err

    def test_resync_period_requires_dda(self, capsys):
        code = main(
            LEARN_QUICK + [
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--resync-period", "2",
            ]
        )
        assert code == 2
        assert "CLAN_DDA" in capsys.readouterr().err

    def test_unknown_sim_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["learn", "CartPole-v0", "--sim-mode", "warp"])


class TestModel:
    def test_compares_all_modes(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--agents", "3",
                "--pop", "24",
                "--generations", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        for mode in ("barrier", "pipelined", "async"):
            assert mode in out
        assert "straggler gap" in out

    def test_single_mode_on_heterogeneous_fleet(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--pop", "24",
                "--generations", "2",
                "--devices", "jetson_nano,raspberry_pi,pi_zero",
                "--sim-mode", "async",
                "--resync-period", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "async" in out
        assert "pipelined" not in out
        assert "pi_zero" in out

    def test_async_excluded_for_synchronous_protocols(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--pop", "24",
                "--generations", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "barrier" in out
        assert "async" not in out

    def test_serial_rejects_multi_device_fleet(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "24",
                "--generations", "1",
                "--devices", "pi_zero,raspberry_pi",
            ]
        )
        assert code == 2
        assert "exactly one device" in capsys.readouterr().err

    def test_serial_single_device_fleet(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "24",
                "--generations", "1",
                "--devices", "jetson_nano",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "jetson_nano" in out

    def test_rejects_async_request_for_dcs(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--pop", "24",
                "--generations", "1",
                "--sim-mode", "async",
            ]
        )
        assert code == 2
        assert "CLAN_DDA" in capsys.readouterr().err


class TestInspect:
    def test_inspect_describes_champion(self, tmp_path, capsys):
        path = tmp_path / "pop.json"
        main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "20",
                "--generations", "2",
                "--threshold", "1e9",
                "--checkpoint", str(path),
            ]
        )
        capsys.readouterr()
        code = main(["inspect", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Genome" in out
        assert "connection" in out

    def test_inspect_dot_output(self, tmp_path, capsys):
        path = tmp_path / "pop.json"
        main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "20",
                "--generations", "1",
                "--threshold", "1e9",
                "--checkpoint", str(path),
            ]
        )
        capsys.readouterr()
        code = main(["inspect", str(path), "--dot"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph champion")


class TestAnalyses:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "raspberry_pi" in out
        assert "$1500" in out

    def test_scale_study(self, capsys):
        code = main(
            [
                "scale", "CartPole-v0",
                "--pop", "24",
                "--generations", "2",
                "--single-step",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "crossover" in out

    def test_ppp(self, capsys):
        code = main(
            ["ppp", "CartPole-v0", "--pop", "24", "--generations", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "perf per dollar" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServe:
    def test_serves_load_with_hot_swaps(self, capsys):
        code = main(
            [
                "serve", "CartPole-v0",
                "--clans", "2",
                "--pop", "24",
                "--generations", "10",
                "--requests", "200",
                "--rate", "400",
                "--threshold", "1e9",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving CartPole-v0" in out
        # the champion-changed events surface in the summary
        assert "hot-swap -> v2" in out
        assert "p95 latency" in out
        assert "served           | 200" in out
        assert "evolution: 10 generations/clan" in out

    def test_rejects_bad_rate(self, capsys):
        code = main(["serve", "CartPole-v0", "--rate", "0"])
        assert code == 2
        assert "rate" in capsys.readouterr().err

    def test_rejects_bad_clans(self, capsys):
        code = main(["serve", "CartPole-v0", "--clans", "0"])
        assert code == 2
        assert "clans" in capsys.readouterr().err

    def test_rejects_bad_batching_knobs(self, capsys):
        code = main(["serve", "CartPole-v0", "--max-batch", "0"])
        assert code == 2
        assert "max-batch" in capsys.readouterr().err
        code = main(["serve", "CartPole-v0", "--max-wait-ms", "-1"])
        assert code == 2
        assert "max-wait-ms" in capsys.readouterr().err

    def test_replicated_serving_prints_per_replica_rollup(self, capsys):
        code = main(
            [
                "serve", "CartPole-v0",
                "--clans", "2",
                "--pop", "24",
                "--generations", "6",
                "--requests", "150",
                "--rate", "400",
                "--threshold", "1e9",
                "--replicas", "2",
                "--slo-p95-ms", "50",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving CartPole-v0 (2 gateway replicas)" in out
        # fleet rollup table plus the per-replica breakdown
        assert "served           | 150" in out
        assert "per-replica stats" in out
        assert "autotuner: target p95 50.0ms" in out

    def test_rejects_bad_replicas(self, capsys):
        code = main(["serve", "CartPole-v0", "--replicas", "0"])
        assert code == 2
        assert "replicas" in capsys.readouterr().err

    def test_rejects_bad_slo(self, capsys):
        code = main(["serve", "CartPole-v0", "--slo-p95-ms", "0"])
        assert code == 2
        assert "slo-p95-ms" in capsys.readouterr().err

    def test_console_script_aliases_share_the_entry_point(self):
        # tomllib is 3.11+; a text check keeps this running on 3.10
        import pathlib

        pyproject = (
            pathlib.Path(__file__).parent.parent / "pyproject.toml"
        ).read_text()
        assert 'clan-repro = "repro.cli:main"' in pyproject
        assert 'repro = "repro.cli:main"' in pyproject
