"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestLearn:
    def test_learn_prints_progress_and_timing(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DDA",
                "--agents", "4",
                "--pop", "32",
                "--generations", "3",
                "--threshold", "1e9",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "generation   0" in out
        assert "communication" in out

    def test_learn_converges_exit_zero(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--pop", "32",
                "--generations", "30",
                "--threshold", "30",
            ]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_learn_with_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "pop.json"
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "20",
                "--generations", "2",
                "--threshold", "1e9",
                "--checkpoint", str(path),
            ]
        )
        assert code in (0, 1)
        assert path.exists()

    def test_learn_prints_speciation_counters(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "20",
                "--generations", "2",
                "--threshold", "1e9",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "speciation:" in out
        assert "comparisons" in out
        assert "(scalar genetics)" in out
        # scalar backend compiles no plans -> no cache line
        assert "plan cache" not in out

    def test_learn_vectorized_genetics_with_plan_cache(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DDA",
                "--agents", "2",
                "--pop", "20",
                "--generations", "2",
                "--genetics", "vectorized",
                "--backend", "batched",
                "--threshold", "1e9",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "vectorized genetics" in out
        assert "plan cache" in out

    def test_serial_forces_one_agent(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--agents", "5",
                "--pop", "20",
                "--generations", "1",
                "--threshold", "1e9",
            ]
        )
        assert code in (0, 1)
        assert "on 1 x raspberry_pi" in capsys.readouterr().out

    def test_unknown_env_rejected(self):
        with pytest.raises(SystemExit):
            main(["learn", "Pong-v0"])

    def test_learn_population_eval_mode(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--pop", "24",
                "--generations", "2",
                "--threshold", "1e9",
                "--backend", "batched",
                "--eval-mode", "population",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "population sweep" in out
        assert "generation   1" in out

    def test_population_eval_mode_matches_per_genome(self, capsys):
        def run(eval_mode):
            main(
                [
                    "learn", "CartPole-v0",
                    "--protocol", "CLAN_DDA",
                    "--agents", "2",
                    "--pop", "24",
                    "--generations", "2",
                    "--threshold", "1e9",
                    "--backend", "batched",
                    "--eval-mode", eval_mode,
                ]
            )
            out = capsys.readouterr().out
            return [
                line.split("best")[1]
                for line in out.splitlines()
                if "generation" in line and "best" in line
            ]

        assert run("per_genome") == run("population")

    def test_population_eval_mode_requires_batched(self, capsys):
        code = main(
            [
                "learn", "CartPole-v0",
                "--pop", "20",
                "--generations", "1",
                "--eval-mode", "population",
            ]
        )
        assert code == 2
        assert "batched" in capsys.readouterr().err

    def test_unknown_eval_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["learn", "CartPole-v0", "--eval-mode", "warp"]
            )


LEARN_QUICK = [
    "learn", "CartPole-v0",
    "--pop", "24",
    "--generations", "2",
    "--threshold", "1e9",
]


class TestLearnFleetAndSimMode:
    def test_heterogeneous_devices(self, capsys):
        code = main(
            LEARN_QUICK + ["--devices", "jetson_nano,raspberry_pi,pi_zero"]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "[jetson_nano, raspberry_pi, pi_zero]" in out

    def test_unknown_device_in_list_rejected(self, capsys):
        code = main(LEARN_QUICK + ["--devices", "raspberry_pi,tpu"])
        assert code == 2
        assert "tpu" in capsys.readouterr().err

    def test_sim_mode_async(self, capsys):
        code = main(
            LEARN_QUICK + [
                "--agents", "3",
                "--sim-mode", "async",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "simulated (async)" in out
        assert "straggler gap" in out

    def test_sim_mode_async_rejected_for_synchronous_protocols(
        self, capsys
    ):
        code = main(
            LEARN_QUICK + [
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--sim-mode", "async",
            ]
        )
        assert code == 2
        assert "CLAN_DDA" in capsys.readouterr().err

    def test_resync_period(self, capsys):
        code = main(
            LEARN_QUICK + ["--agents", "3", "--resync-period", "2"]
        )
        assert code in (0, 1)

    def test_resync_period_must_be_positive(self, capsys):
        code = main(LEARN_QUICK + ["--resync-period", "0"])
        assert code == 2
        assert ">= 1" in capsys.readouterr().err

    def test_resync_period_requires_dda(self, capsys):
        code = main(
            LEARN_QUICK + [
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--resync-period", "2",
            ]
        )
        assert code == 2
        assert "CLAN_DDA" in capsys.readouterr().err

    def test_unknown_sim_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["learn", "CartPole-v0", "--sim-mode", "warp"])


class TestModel:
    def test_compares_all_modes(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--agents", "3",
                "--pop", "24",
                "--generations", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        for mode in ("barrier", "pipelined", "async"):
            assert mode in out
        assert "straggler gap" in out

    def test_single_mode_on_heterogeneous_fleet(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--pop", "24",
                "--generations", "2",
                "--devices", "jetson_nano,raspberry_pi,pi_zero",
                "--sim-mode", "async",
                "--resync-period", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "async" in out
        assert "pipelined" not in out
        assert "pi_zero" in out

    def test_async_excluded_for_synchronous_protocols(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--pop", "24",
                "--generations", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "barrier" in out
        assert "async" not in out

    def test_serial_rejects_multi_device_fleet(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "24",
                "--generations", "1",
                "--devices", "pi_zero,raspberry_pi",
            ]
        )
        assert code == 2
        assert "exactly one device" in capsys.readouterr().err

    def test_serial_single_device_fleet(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "24",
                "--generations", "1",
                "--devices", "jetson_nano",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "jetson_nano" in out

    def test_rejects_async_request_for_dcs(self, capsys):
        code = main(
            [
                "model", "CartPole-v0",
                "--protocol", "CLAN_DCS",
                "--agents", "2",
                "--pop", "24",
                "--generations", "1",
                "--sim-mode", "async",
            ]
        )
        assert code == 2
        assert "CLAN_DDA" in capsys.readouterr().err


class TestInspect:
    def test_inspect_describes_champion(self, tmp_path, capsys):
        path = tmp_path / "pop.json"
        main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "20",
                "--generations", "2",
                "--threshold", "1e9",
                "--checkpoint", str(path),
            ]
        )
        capsys.readouterr()
        code = main(["inspect", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Genome" in out
        assert "connection" in out

    def test_inspect_dot_output(self, tmp_path, capsys):
        path = tmp_path / "pop.json"
        main(
            [
                "learn", "CartPole-v0",
                "--protocol", "Serial",
                "--pop", "20",
                "--generations", "1",
                "--threshold", "1e9",
                "--checkpoint", str(path),
            ]
        )
        capsys.readouterr()
        code = main(["inspect", str(path), "--dot"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph champion")


class TestAnalyses:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "raspberry_pi" in out
        assert "$1500" in out

    def test_scale_study(self, capsys):
        code = main(
            [
                "scale", "CartPole-v0",
                "--pop", "24",
                "--generations", "2",
                "--single-step",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "crossover" in out

    def test_ppp(self, capsys):
        code = main(
            ["ppp", "CartPole-v0", "--pop", "24", "--generations", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "perf per dollar" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServe:
    def test_serves_load_with_hot_swaps(self, capsys):
        code = main(
            [
                "serve", "CartPole-v0",
                "--clans", "2",
                "--pop", "24",
                "--generations", "10",
                "--requests", "200",
                "--rate", "400",
                "--threshold", "1e9",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving CartPole-v0" in out
        # the champion-changed events surface in the summary
        assert "hot-swap -> v2" in out
        assert "p95 latency" in out
        assert "served           | 200" in out
        assert "evolution: 10 generations/clan" in out

    def test_rejects_bad_rate(self, capsys):
        code = main(["serve", "CartPole-v0", "--rate", "0"])
        assert code == 2
        assert "rate" in capsys.readouterr().err

    def test_rejects_bad_clans(self, capsys):
        code = main(["serve", "CartPole-v0", "--clans", "0"])
        assert code == 2
        assert "clans" in capsys.readouterr().err

    def test_rejects_bad_batching_knobs(self, capsys):
        code = main(["serve", "CartPole-v0", "--max-batch", "0"])
        assert code == 2
        assert "max-batch" in capsys.readouterr().err
        code = main(["serve", "CartPole-v0", "--max-wait-ms", "-1"])
        assert code == 2
        assert "max-wait-ms" in capsys.readouterr().err

    def test_replicated_serving_prints_per_replica_rollup(self, capsys):
        code = main(
            [
                "serve", "CartPole-v0",
                "--clans", "2",
                "--pop", "24",
                "--generations", "6",
                "--requests", "150",
                "--rate", "400",
                "--threshold", "1e9",
                "--replicas", "2",
                "--slo-p95-ms", "50",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving CartPole-v0 (2 gateway replicas)" in out
        # fleet rollup table plus the per-replica breakdown
        assert "served           | 150" in out
        assert "per-replica stats" in out
        assert "autotuner: target p95 50.0ms" in out

    def test_rejects_bad_replicas(self, capsys):
        code = main(["serve", "CartPole-v0", "--replicas", "0"])
        assert code == 2
        assert "replicas" in capsys.readouterr().err

    def test_rejects_bad_slo(self, capsys):
        code = main(["serve", "CartPole-v0", "--slo-p95-ms", "0"])
        assert code == 2
        assert "slo-p95-ms" in capsys.readouterr().err

    def test_console_script_aliases_share_the_entry_point(self):
        # tomllib is 3.11+; a text check keeps this running on 3.10
        import pathlib

        pyproject = (
            pathlib.Path(__file__).parent.parent / "pyproject.toml"
        ).read_text()
        assert 'clan-repro = "repro.cli:main"' in pyproject
        assert 'repro = "repro.cli:main"' in pyproject


class TestServeHealing:
    def test_summary_surfaces_client_retry_counters(self, capsys):
        code = main(
            [
                "serve", "CartPole-v0",
                "--clans", "2",
                "--pop", "24",
                "--generations", "4",
                "--requests", "80",
                "--rate", "400",
                "--threshold", "1e9",
                "--client-retries", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "retried" in out
        assert "failed" in out

    def test_metrics_out_includes_fleet_health(self, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        code = main(
            [
                "serve", "CartPole-v0",
                "--clans", "2",
                "--pop", "24",
                "--generations", "4",
                "--requests", "80",
                "--rate", "400",
                "--threshold", "1e9",
                "--replicas", "2",
                "--metrics-out", str(target),
            ]
        )
        assert code == 0
        text = target.read_text()
        assert "repro_replica_respawns_total" in text
        assert "repro_requests_retried_total" in text
        capsys.readouterr()

    def test_rejects_negative_healing_knobs(self, capsys):
        code = main(
            ["serve", "CartPole-v0", "--max-replica-respawns", "-1"]
        )
        assert code == 2
        assert "max-replica-respawns" in capsys.readouterr().err
        code = main(["serve", "CartPole-v0", "--client-retries", "-1"])
        assert code == 2
        assert "client-retries" in capsys.readouterr().err


_RESUME_ARGS = [
    "learn", "CartPole-v0",
    "--protocol", "Serial",
    "--pop", "20",
    "--seed", "5",
    "--threshold", "1e9",
]


def _champion_payloads(path):
    """Checkpoint file -> (best-genome payload, all genome payloads)."""
    from repro.cluster.serialization import encode_genome
    from repro.neat.checkpoint import load_population

    population = load_population(path)
    return (
        encode_genome(population.best_genome),
        {
            key: encode_genome(genome)
            for key, genome in population.genomes.items()
        },
    )


class TestLearnResume:
    def test_resume_requires_checkpoint_dir(self, capsys):
        code = main(_RESUME_ARGS + ["--generations", "1", "--resume"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_dir_rejects_engines_without_population(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "learn", "CartPole-v0",
                "--protocol", "CLAN_DDA",
                "--agents", "2",
                "--pop", "20",
                "--generations", "1",
                "--threshold", "1e9",
                "--checkpoint-dir", str(tmp_path / "store"),
            ]
        )
        assert code == 2
        assert "Serial/CLAN_DCS/CLAN_DDS" in capsys.readouterr().err

    def test_resume_from_empty_store_errors(self, tmp_path, capsys):
        code = main(
            _RESUME_ARGS
            + [
                "--generations", "2",
                "--checkpoint-dir", str(tmp_path / "empty"),
                "--resume",
            ]
        )
        assert code == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_resume_rejects_mismatched_arguments(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            _RESUME_ARGS
            + ["--generations", "1", "--checkpoint-dir", store]
        ) in (0, 1)
        capsys.readouterr()
        mismatched = list(_RESUME_ARGS)
        mismatched[mismatched.index("--seed") + 1] = "6"
        code = main(
            mismatched
            + ["--generations", "2", "--checkpoint-dir", store, "--resume"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "disagree" in err
        assert "--seed" in err

    def test_exhausted_budget_resumes_to_a_no_op(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            _RESUME_ARGS
            + ["--generations", "2", "--checkpoint-dir", store]
        ) in (0, 1)
        capsys.readouterr()
        code = main(
            _RESUME_ARGS
            + ["--generations", "2", "--checkpoint-dir", store, "--resume"]
        )
        assert code == 0
        assert "nothing left" in capsys.readouterr().out

    def test_resumed_run_is_bit_identical(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        store = str(tmp_path / "store")
        assert main(
            _RESUME_ARGS
            + ["--generations", "4", "--checkpoint", str(full)]
        ) in (0, 1)
        assert main(
            _RESUME_ARGS
            + ["--generations", "2", "--checkpoint-dir", store]
        ) in (0, 1)
        code = main(
            _RESUME_ARGS
            + [
                "--generations", "4",
                "--checkpoint-dir", store,
                "--resume",
                "--checkpoint", str(resumed),
            ]
        )
        assert code in (0, 1)
        assert "resumed at generation 2" in capsys.readouterr().out
        full_best, full_genomes = _champion_payloads(full)
        resumed_best, resumed_genomes = _champion_payloads(resumed)
        # the continuation is exact: not just the champion but the whole
        # final population matches the uninterrupted run byte for byte
        assert resumed_best == full_best
        assert resumed_genomes == full_genomes

    def test_sigkilled_run_resumes_bit_identically(self, tmp_path, capsys):
        import json
        import os
        import signal
        import subprocess
        import sys
        import time

        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        store = tmp_path / "store"
        assert main(
            _RESUME_ARGS
            + ["--generations", "4", "--checkpoint", str(full)]
        ) in (0, 1)
        capsys.readouterr()
        # launch the same run as a real process and SIGKILL it as soon
        # as its first per-generation checkpoint lands
        import pathlib

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        process = subprocess.Popen(
            [sys.executable, "-m", "repro"]
            + _RESUME_ARGS
            + ["--generations", "4", "--checkpoint-dir", str(store)],
            env=dict(os.environ, PYTHONPATH=src),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            manifest = store / "manifest.json"
            population = store / "population.json"
            while time.monotonic() < deadline:
                if manifest.exists() and population.exists():
                    try:
                        done = json.loads(manifest.read_text()).get(
                            "completed_generations", 0
                        )
                    except json.JSONDecodeError:
                        done = 0  # racing the atomic rename; retry
                    if 1 <= done < 4:
                        break
                if process.poll() is not None:
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("no checkpoint within 120s")
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=30)
        done = json.loads((store / "manifest.json").read_text())[
            "completed_generations"
        ]
        assert done >= 1
        code = main(
            _RESUME_ARGS
            + [
                "--generations", "4",
                "--checkpoint-dir", str(store),
                "--resume",
                "--checkpoint", str(resumed),
            ]
        )
        assert code in (0, 1)
        capsys.readouterr()
        full_best, full_genomes = _champion_payloads(full)
        resumed_best, resumed_genomes = _champion_payloads(resumed)
        assert resumed_best == full_best
        assert resumed_genomes == full_genomes


class TestChaosCommand:
    def test_rejects_bad_fault_spec(self, capsys):
        code = main(["chaos", "CartPole-v0", "--fault", "kill,target=1"])
        assert code == 2
        assert "scope" in capsys.readouterr().err

    def test_rejects_bad_plan_file(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text("{nope")
        code = main(["chaos", "CartPole-v0", "--plan", str(plan)])
        assert code == 2
        assert "JSON" in capsys.readouterr().err

    def test_learn_chaos_recovers_and_reports(self, tmp_path, capsys):
        report = tmp_path / "outcome.json"
        code = main(
            [
                "chaos", "CartPole-v0",
                "--workload", "learn",
                "--clans", "2",
                "--pop", "16",
                "--generations", "2",
                "--seed", "4",
                "--fault",
                "kill,scope=worker,target=0,kind=clan_step,at=1",
                "--json", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "kill worker 0" in out
        assert "fully recovered" in out
        assert "faults: 1/1 fired" in out
        import json

        outcome = json.loads(report.read_text())
        assert outcome["churn"]["respawns"] == 1
        assert outcome["faults_fired"] == 1

    def test_plan_file_drives_the_run(self, tmp_path, capsys):
        from repro.chaos import Fault, FaultPlan

        plan_path = tmp_path / "plan.json"
        FaultPlan(
            seed=3,
            faults=(
                Fault(
                    action="kill", scope="worker", target=0,
                    kind="clan_step", at=1,
                ),
            ),
        ).save(plan_path)
        code = main(
            [
                "chaos", "CartPole-v0",
                "--workload", "learn",
                "--clans", "2",
                "--pop", "16",
                "--generations", "2",
                "--seed", "4",
                "--plan", str(plan_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos seed 3" in out
        assert "fully recovered" in out

    def test_unfired_fault_fails_the_run(self, capsys):
        code = main(
            [
                "chaos", "CartPole-v0",
                "--workload", "learn",
                "--clans", "2",
                "--pop", "16",
                "--generations", "1",
                "--seed", "4",
                "--fault",
                "kill,scope=worker,target=0,kind=clan_step,at=99",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "never matched an event" in out
        assert "NOT fully recovered" in out

    def test_serve_chaos_recovers(self, capsys):
        code = main(
            [
                "chaos", "CartPole-v0",
                "--workload", "serve",
                "--replicas", "2",
                "--rate", "500",
                "--requests", "100",
                "--seed", "2",
                "--fault", "kill,scope=replica,target=0,kind=infer,at=2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fully recovered" in out
        assert "replica respawns" in out
