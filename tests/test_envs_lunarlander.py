"""Physics and reward tests for the LunarLander re-implementation."""

import pytest

from repro.envs.base import rollout
from repro.envs.lunarlander import LunarLanderEnv


class TestLanderDynamics:
    def test_observation_is_eight_dim(self):
        env = LunarLanderEnv(seed=0)
        obs = env.reset()
        assert len(obs) == 8

    def test_starts_high_with_no_leg_contact(self):
        env = LunarLanderEnv(seed=0)
        obs = env.reset()
        assert obs[1] == pytest.approx(1.0)  # normalised altitude
        assert obs[6] == 0.0 and obs[7] == 0.0

    def test_gravity_pulls_down(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        vy0 = env._vy
        env.step(0)
        assert env._vy < vy0

    def test_main_engine_counteracts_gravity(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env._angle = 0.0
        vy0 = env._vy
        env.step(env.ACTION_MAIN)
        assert env._vy > vy0 + (-env.GRAVITY * env.DT) * 0.5

    def test_side_engines_rotate(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env._omega = 0.0
        env.step(env.ACTION_LEFT)
        omega_left = env._omega
        env2 = LunarLanderEnv(seed=0)
        env2.reset()
        env2._omega = 0.0
        env2.step(env2.ACTION_RIGHT)
        assert omega_left < 0 < env2._omega

    def test_free_fall_crashes(self):
        env = LunarLanderEnv(seed=0)
        result = rollout(env, lambda obs: 0, seed=2)
        assert result.terminated
        assert env.outcome == "crashed"

    def test_crash_costs_100(self):
        env = LunarLanderEnv(seed=0)
        result = rollout(env, lambda obs: 0, seed=2)
        # shaping is potential-based; the -100 crash penalty must dominate
        assert result.total_reward < -50

    def test_main_engine_fuel_cost(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env._prev_shaping = env._shaping()  # freeze shaping baseline
        x = env._x
        # compare identical physics with and without fuel penalty via the
        # constant: reward includes -0.3 for the main engine
        _obs, reward_main, _d, _i = env.step(env.ACTION_MAIN)
        assert reward_main < 10  # dominated by shaping, but finite
        assert env.MAIN_ENGINE_COST == pytest.approx(0.3)
        assert env.SIDE_ENGINE_COST == pytest.approx(0.03)
        assert x == pytest.approx(x)

    def test_out_of_bounds_terminates(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env._x = env.WORLD_HALF_WIDTH * 0.999
        env._vx = 50.0
        _obs, reward, done, info = env.step(0)
        assert done
        assert info["outcome"] == "out_of_bounds"

    def test_soft_touchdown_scores_positive(self):
        # place the craft just above the pad, slow and upright
        env = LunarLanderEnv(seed=0)
        env.reset()
        env._x, env._y = 0.0, 0.01
        env._vx, env._vy = 0.0, -0.5
        env._angle, env._omega = 0.0, 0.0
        env._prev_shaping = env._shaping()
        _obs, reward, done, info = env.step(0)
        assert done
        assert info["outcome"] == "landed"
        assert reward > 90  # +100 minus small shaping delta

    def test_hard_touchdown_crashes(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env._x, env._y = 0.0, 0.05
        env._vx, env._vy = 0.0, -5.0
        env._prev_shaping = env._shaping()
        _obs, _reward, done, info = env.step(0)
        assert done
        assert info["outcome"] == "crashed"

    def test_landing_off_pad_is_crash(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env._x, env._y = env.PAD_HALF_WIDTH * 3, 0.01
        env._vx, env._vy = 0.0, -0.5
        env._angle = 0.0
        env._prev_shaping = env._shaping()
        _obs, _reward, done, info = env.step(0)
        assert done
        assert info["outcome"] == "crashed"

    def test_braking_reduces_touchdown_speed(self):
        def braking(obs):
            return 2 if obs[3] < -0.3 else 0  # fire main when falling fast

        env_free = LunarLanderEnv(seed=0)
        rollout(env_free, lambda obs: 0, seed=9)
        env_braked = LunarLanderEnv(seed=0)
        rollout(env_braked, braking, seed=9)
        assert abs(env_braked._vy) < abs(env_free._vy)

    def test_solved_threshold(self):
        assert LunarLanderEnv.solved_threshold == pytest.approx(200.0)
