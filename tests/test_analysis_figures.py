"""Tests for the figure builders: each must reproduce the paper's
qualitative claim at reduced scale."""

import pytest

from repro.analysis.figures import (
    fig3_block_costs,
    fig4_comm_breakdown,
    fig5_dcs_scaling,
    fig7b_clan_accuracy,
    fig8_share,
    fig11_ppp,
    paper_floats,
    ppp_ratio,
    scaling_series,
)
from repro.core.messages import CENTER, Message, MessageType

POP = 24
GENS = 3


class TestPaperFloats:
    def test_genome_messages_count_genes(self):
        message = Message(
            MessageType.SENDING_GENOMES, CENTER, 0, n_floats=430, n_genes=100
        )
        assert paper_floats(message) == 100

    def test_fitness_counts_one_per_genome(self):
        message = Message(
            MessageType.SENDING_FITNESS, 0, CENTER, n_floats=20, n_units=10
        )
        assert paper_floats(message) == 10

    def test_plan_messages_count_raw_words(self):
        message = Message(
            MessageType.SENDING_PARENT_LIST, CENTER, 0, n_floats=40
        )
        assert paper_floats(message) == 40


class TestFig3:
    def test_inference_dominates(self):
        costs = fig3_block_costs(("CartPole-v0",), POP, GENS, seed=0)
        for point in costs["CartPole-v0"]:
            assert point.inference_genes > point.speciation_genes
            assert point.speciation_genes > point.reproduction_genes / 10

    def test_one_series_per_workload(self):
        costs = fig3_block_costs(
            ("CartPole-v0", "MountainCar-v0"), POP, GENS, seed=0
        )
        assert set(costs) == {"CartPole-v0", "MountainCar-v0"}
        assert all(len(series) == GENS for series in costs.values())


class TestFig4:
    @pytest.fixture(scope="class")
    def breakdown(self):
        return fig4_comm_breakdown(
            {"Cartpole-v0": ("CartPole-v0",)}, POP, GENS, n_agents=3, seed=0
        )

    def test_dds_highest_total(self, breakdown):
        per_config = breakdown["Cartpole-v0"]
        totals = {
            name: sum(categories.values())
            for name, categories in per_config.items()
        }
        assert totals["CLAN_DDS"] > totals["CLAN_DCS"] > totals["CLAN_DDA"]

    def test_dda_dominated_by_fitness_after_init(self, breakdown):
        dda = breakdown["Cartpole-v0"]["CLAN_DDA"]
        # genome traffic amortises over generations; fitness recurs
        assert dda["Sending Children"] == 0
        assert dda["Sending Parent Genomes"] == 0
        assert dda["Sending Fitness"] > 0

    def test_dcs_has_no_plan_traffic(self, breakdown):
        dcs = breakdown["Cartpole-v0"]["CLAN_DCS"]
        assert dcs["Sending Parent List"] == 0
        assert dcs["Sending Spawn Count"] == 0

    def test_dds_pays_children_and_parents(self, breakdown):
        dds = breakdown["Cartpole-v0"]["CLAN_DDS"]
        assert dds["Sending Children"] > 0
        assert dds["Sending Parent Genomes"] > 0


class TestScalingSeries:
    def test_inference_shrinks_with_nodes(self):
        series = scaling_series(
            "CartPole-v0", "CLAN_DCS", (1, 4, 8), POP, GENS, seed=0
        )
        assert series[4].inference_s < series[1].inference_s
        assert series[8].inference_s < series[4].inference_s

    def test_communication_grows_with_nodes(self):
        series = scaling_series(
            "CartPole-v0", "CLAN_DCS", (2, 8, 15), POP, GENS, seed=0
        )
        assert series[15].communication_s > series[2].communication_s

    def test_dda_skips_oversized_clusters(self):
        series = scaling_series(
            "CartPole-v0", "CLAN_DDA", (2, POP), POP, GENS, seed=0
        )
        assert POP not in series  # pop cannot form pop clans of >= 2
        assert 2 in series

    def test_fig5_covers_workloads(self):
        result = fig5_dcs_scaling(
            ("CartPole-v0",), (1, 2), POP, GENS, seed=0
        )
        assert set(result) == {"CartPole-v0"}
        assert set(result["CartPole-v0"]) == {1, 2}


class TestFig7b:
    def test_reports_all_clan_counts(self):
        points = fig7b_clan_accuracy(
            "CartPole-v0",
            clans_grid=(1, 2),
            pop_size=16,
            n_runs=2,
            max_generations=10,
            seed=0,
            fitness_threshold=50.0,
        )
        assert [p.n_clans for p in points] == [1, 2]
        assert all(p.total_runs == 2 for p in points)

    def test_mean_generations_bounded(self):
        points = fig7b_clan_accuracy(
            "CartPole-v0",
            clans_grid=(2,),
            pop_size=16,
            n_runs=2,
            max_generations=8,
            seed=0,
            fitness_threshold=1e9,  # never converges
        )
        assert points[0].mean_generations == 8.0
        assert points[0].converged_runs == 0


class TestFig8:
    def test_shares_sum_to_one(self):
        shares = fig8_share(("CartPole-v0",), POP, GENS, seed=0)
        for per_config in shares.values():
            for share in per_config.values():
                assert sum(share.values()) == pytest.approx(1.0)

    def test_small_workload_is_comm_bound(self):
        # the paper's Fig 8: >90% communication for CartPole in every config
        shares = fig8_share(("CartPole-v0",), POP, GENS, seed=0)
        for share in shares["CartPole-v0"].values():
            assert share["communication"] > 0.5


class TestFig11:
    @pytest.fixture(scope="class")
    def points(self):
        return fig11_ppp(("CartPole-v0",), (1, 2, 4), POP, GENS, seed=0)

    def test_platforms_and_pi_counts_present(self, points):
        labels = {p.label for p in points["CartPole-v0"]}
        assert {"HPC CPU", "HPC GPU", "Jetson CPU", "Jetson GPU"} <= labels
        assert {"1 pi", "2 pi", "4 pi"} <= labels

    def test_pi_cluster_price_scales(self, points):
        by_label = {p.label: p for p in points["CartPole-v0"]}
        assert by_label["4 pi"].price_usd == 4 * by_label["1 pi"].price_usd

    def test_hpc_faster_than_single_pi(self, points):
        by_label = {p.label: p for p in points["CartPole-v0"]}
        assert (
            by_label["HPC CPU"].time_per_generation_s
            < by_label["1 pi"].time_per_generation_s
        )

    def test_ppp_ratio(self, points):
        ratio = ppp_ratio(points["CartPole-v0"], "1 pi", "HPC CPU")
        assert ratio > 0
