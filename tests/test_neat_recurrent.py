"""Tests for recurrent network execution."""

import math
import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork
from repro.neat.recurrent import RecurrentNetwork

from tests.conftest import make_evolved_genome


def manual_genome(config, weights, activation="identity"):
    genome = Genome(0)
    node_keys = {k for _i, k in weights} | {
        k for k, _o in weights if k >= 0
    }
    node_keys |= set(config.output_keys)
    for key in sorted(node_keys):
        genome.nodes[key] = NodeGene(
            key, bias=0.0, response=1.0, activation=activation,
            aggregation="sum",
        )
    for key, weight in weights.items():
        genome.connections[key] = ConnectionGene(key, weight, True)
    return genome


class TestRecurrentSemantics:
    def test_accepts_self_loop(self):
        config = NEATConfig(num_inputs=1, num_outputs=1)
        genome = manual_genome(config, {(-1, 0): 1.0, (0, 0): 1.0})
        network = RecurrentNetwork.create(genome, config)
        # accumulator: y_t = x_t + y_{t-1}
        assert network.activate([1.0]) == [1.0]
        assert network.activate([1.0]) == [2.0]
        assert network.activate([1.0]) == [3.0]

    def test_feedforward_genome_rejected_by_ff_but_cycle_ok_here(self):
        config = NEATConfig(num_inputs=1, num_outputs=1)
        genome = manual_genome(
            config, {(-1, 2): 1.0, (2, 0): 1.0, (0, 2): 0.5}
        )
        with pytest.raises(ValueError):
            FeedForwardNetwork.create(genome, config)
        network = RecurrentNetwork.create(genome, config)
        outputs = network.activate([1.0])
        assert len(outputs) == 1

    def test_unit_delay_through_hidden_node(self):
        config = NEATConfig(num_inputs=1, num_outputs=1)
        genome = manual_genome(config, {(-1, 5): 1.0, (5, 0): 1.0})
        network = RecurrentNetwork.create(genome, config)
        # step 1: hidden sees x, output sees stale hidden (0)
        assert network.activate([3.0]) == [0.0]
        # step 2: output sees hidden's previous value (3)
        assert network.activate([0.0]) == [3.0]

    def test_reset_clears_state(self):
        config = NEATConfig(num_inputs=1, num_outputs=1)
        genome = manual_genome(config, {(-1, 0): 1.0, (0, 0): 1.0})
        network = RecurrentNetwork.create(genome, config)
        network.activate([1.0])
        network.activate([1.0])
        network.reset()
        assert network.activate([1.0]) == [1.0]

    def test_matches_feedforward_after_settling(self):
        # for an acyclic genome, after enough steps of constant input the
        # recurrent semantics converge to the feed-forward value
        config = NEATConfig(num_inputs=2, num_outputs=1)
        genome = manual_genome(
            config, {(-1, 7): 0.5, (-2, 7): -0.25, (7, 0): 2.0}
        )
        ff = FeedForwardNetwork.create(genome, config)
        rn = RecurrentNetwork.create(genome, config)
        inputs = [1.0, 2.0]
        expected = ff.activate(inputs)
        for _ in range(5):
            settled = rn.activate(inputs)
        assert settled == pytest.approx(expected)

    def test_evolved_genomes_run(self):
        config = NEATConfig(num_inputs=3, num_outputs=2)
        rng = random.Random(0)
        for seed in range(5):
            genome = make_evolved_genome(config, seed=seed, mutations=30)
            network = RecurrentNetwork.create(genome, config)
            for _ in range(10):
                outputs = network.activate(
                    [rng.uniform(-1, 1) for _ in range(3)]
                )
                assert all(math.isfinite(v) for v in outputs)

    def test_policy_in_action_space(self):
        config = NEATConfig(num_inputs=2, num_outputs=3)
        genome = manual_genome(
            config, {(-1, 0): 1.0, (-2, 1): 1.0, (-1, 2): -1.0}
        )
        network = RecurrentNetwork.create(genome, config)
        for inputs in ([1.0, 0.0], [0.0, 1.0], [-1.0, -1.0]):
            assert 0 <= network.policy(inputs) < 3

    def test_wrong_input_count(self):
        config = NEATConfig(num_inputs=2, num_outputs=1)
        genome = manual_genome(config, {(-1, 0): 1.0})
        network = RecurrentNetwork.create(genome, config)
        with pytest.raises(ValueError):
            network.activate([1.0])
