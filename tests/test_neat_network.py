"""Tests for the feed-forward network compiler."""

import math
import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork, required_for_output

from tests.conftest import make_evolved_genome


def manual_genome(config, weights):
    """Genome with explicit connection weights {(in, out): w} and zero
    biases, identity activation."""
    genome = Genome(0)
    node_keys = {k for _i, k in weights} | {k for k, _o in weights if k >= 0}
    node_keys |= set(config.output_keys)
    for key in sorted(node_keys):
        genome.nodes[key] = NodeGene(
            key, bias=0.0, response=1.0, activation="identity",
            aggregation="sum",
        )
    for key, weight in weights.items():
        genome.connections[key] = ConnectionGene(key, weight, True)
    return genome


class TestRequiredForOutput:
    def test_direct_path(self):
        required = required_for_output([-1], [0], [(-1, 0)])
        assert required == {0}

    def test_hidden_chain(self):
        required = required_for_output([-1], [0], [(-1, 2), (2, 0)])
        assert required == {0, 2}

    def test_dead_end_excluded(self):
        # node 3 feeds nothing
        required = required_for_output([-1], [0], [(-1, 0), (-1, 3)])
        assert 3 not in required

    def test_inputs_never_included(self):
        required = required_for_output([-1, -2], [0], [(-1, 0), (-2, 0)])
        assert required == {0}


class TestCompilation:
    def test_simple_identity_network(self):
        config = NEATConfig(num_inputs=2, num_outputs=1)
        genome = manual_genome(config, {(-1, 0): 2.0, (-2, 0): 3.0})
        network = FeedForwardNetwork.create(genome, config)
        assert network.activate([1.0, 1.0]) == [5.0]

    def test_hidden_layer(self):
        config = NEATConfig(num_inputs=1, num_outputs=1)
        genome = manual_genome(config, {(-1, 5): 2.0, (5, 0): 3.0})
        network = FeedForwardNetwork.create(genome, config)
        assert network.activate([1.0]) == [6.0]

    def test_bias_and_response(self):
        config = NEATConfig(num_inputs=1, num_outputs=1)
        genome = manual_genome(config, {(-1, 0): 1.0})
        genome.nodes[0].bias = 0.5
        genome.nodes[0].response = 2.0
        network = FeedForwardNetwork.create(genome, config)
        assert network.activate([1.0]) == [2.5]  # bias + response * sum

    def test_disabled_connection_ignored(self):
        config = NEATConfig(num_inputs=1, num_outputs=1)
        genome = manual_genome(config, {(-1, 0): 2.0})
        genome.connections[(-1, 0)].enabled = False
        network = FeedForwardNetwork.create(genome, config)
        assert network.activate([1.0]) == [0.0]

    def test_unconnected_output_uses_bias_only(self):
        config = NEATConfig(num_inputs=1, num_outputs=2)
        genome = manual_genome(config, {(-1, 0): 1.0})
        genome.nodes[1].bias = 0.7
        network = FeedForwardNetwork.create(genome, config)
        outputs = network.activate([0.0])
        # output 1 has no incoming links: value = activation(bias)
        assert outputs[1] == 0.7

    def test_cycle_detection(self):
        config = NEATConfig(num_inputs=1, num_outputs=1)
        genome = manual_genome(
            config, {(-1, 2): 1.0, (2, 3): 1.0, (3, 0): 1.0}
        )
        # introduce a cycle behind the compiler's back
        genome.connections[(3, 2)] = ConnectionGene((3, 2), 1.0, True)
        with pytest.raises(ValueError, match="cycle"):
            FeedForwardNetwork.create(genome, config)

    def test_wrong_input_count_raises(self):
        config = NEATConfig(num_inputs=2, num_outputs=1)
        genome = manual_genome(config, {(-1, 0): 1.0})
        network = FeedForwardNetwork.create(genome, config)
        with pytest.raises(ValueError):
            network.activate([1.0])

    def test_tanh_bounded_outputs(self):
        config = NEATConfig(num_inputs=4, num_outputs=2)
        genome = make_evolved_genome(config, seed=3, mutations=40)
        network = FeedForwardNetwork.create(genome, config)
        rng = random.Random(0)
        for _ in range(20):
            outputs = network.activate(
                [rng.uniform(-10, 10) for _ in range(4)]
            )
            assert all(math.isfinite(v) for v in outputs)
            assert all(-1.0 <= v <= 1.0 for v in outputs)

    def test_deterministic_across_compilations(self):
        config = NEATConfig(num_inputs=4, num_outputs=3)
        genome = make_evolved_genome(config, seed=9, mutations=50)
        n1 = FeedForwardNetwork.create(genome, config)
        n2 = FeedForwardNetwork.create(genome, config)
        inputs = [0.1, -0.2, 0.3, -0.4]
        assert n1.activate(inputs) == n2.activate(inputs)

    def test_stateless_between_activations(self):
        config = NEATConfig(num_inputs=2, num_outputs=1)
        genome = manual_genome(config, {(-1, 0): 1.0, (-2, 0): 1.0})
        network = FeedForwardNetwork.create(genome, config)
        first = network.activate([1.0, 2.0])
        network.activate([5.0, 5.0])
        again = network.activate([1.0, 2.0])
        assert first == again


class TestPolicy:
    def test_argmax(self):
        config = NEATConfig(num_inputs=1, num_outputs=3)
        genome = manual_genome(
            config, {(-1, 0): 0.1, (-1, 1): 5.0, (-1, 2): 1.0}
        )
        network = FeedForwardNetwork.create(genome, config)
        assert network.policy([1.0]) == 1

    def test_tie_breaks_to_lowest_index(self):
        config = NEATConfig(num_inputs=1, num_outputs=2)
        genome = manual_genome(config, {(-1, 0): 1.0, (-1, 1): 1.0})
        network = FeedForwardNetwork.create(genome, config)
        assert network.policy([1.0]) == 0
