"""Tests for the Fig 10 technology-study builder."""

import pytest

from repro.analysis.figures import fig10_technology


class TestFig10Builder:
    @pytest.fixture(scope="class")
    def panels(self):
        return fig10_technology(
            "CartPole-v0",
            measure_grid=(1, 2, 4, 6, 8),
            pop_size=20,
            generations=2,
            seed=0,
        )

    def test_three_panels(self, panels):
        assert set(panels) == {
            "a_comm_single_step",
            "b_comm_multi_step",
            "c_custom_hw_multi_step",
        }

    def test_each_panel_has_baseline_and_modified(self, panels):
        for study in panels.values():
            assert set(study.baseline.fits) == {"CLAN_DCS", "CLAN_DDA"}
            assert set(study.modified.fits) == {"CLAN_DCS", "CLAN_DDA"}

    def test_halved_link_never_slower(self, panels):
        for label in ("a_comm_single_step", "b_comm_multi_step"):
            study = panels[label]
            for n in study.baseline.grid:
                for protocol in ("CLAN_DCS", "CLAN_DDA"):
                    assert (
                        study.modified.fits[protocol].predict(n)
                        <= study.baseline.fits[protocol].predict(n) + 1e-9
                    )

    def test_custom_hw_faster_serial(self, panels):
        study = panels["c_custom_hw_multi_step"]
        assert study.modified.serial_time_s < study.baseline.serial_time_s
