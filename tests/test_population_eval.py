"""Population-mode evaluation: stacked inference + vectorized rollouts.

The contract under test: ``eval_mode="population"`` produces *exactly*
the same :class:`FitnessResult` per genome as the per-genome batched
path (same seeds, same lane trajectories, same aggregation), for every
workload, episode count and protocol engine. The scalar interpreter is
additionally compared on the classic-control workloads, where the two
inference engines agree bit-for-bit in practice.
"""

import numpy as np
import pytest

from repro.core.protocols import make_protocol
from repro.neat.config import NEATConfig
from repro.neat.evaluation import EVAL_MODES, GenomeEvaluator
from repro.neat.network import (
    BatchedFeedForwardNetwork,
    StackedPopulationNetwork,
    compile_batched,
)
from repro.neat.population import Population

from tests.conftest import make_evolved_genome


def evolved_population(env_id, n=10, mutations=25):
    config = NEATConfig.for_env(env_id, pop_size=max(n, 4))
    genomes = [
        make_evolved_genome(config, seed=i, mutations=mutations, key=i)
        for i in range(n)
    ]
    return config, genomes


class TestStackedNetwork:
    def test_matches_per_genome_batched_outputs(self, cartpole_config):
        genomes = [
            make_evolved_genome(cartpole_config, seed=i, mutations=30,
                                key=i)
            for i in range(8)
        ]
        plans = [compile_batched(g, cartpole_config) for g in genomes]
        stacked = StackedPopulationNetwork(plans)
        rng = np.random.default_rng(0)
        obs = rng.uniform(-2, 2, size=(8, 5, 4))
        out = stacked.activate_all(obs)
        acts = stacked.policy_all(obs)
        for g, plan in enumerate(plans):
            net = BatchedFeedForwardNetwork(plan)
            expected = net.activate_batch(obs[g])
            np.testing.assert_allclose(out[g], expected, atol=1e-12)
            assert np.array_equal(acts[g], net.policy_batch(obs[g]))

    def test_genome_subset_matches_full(self, cartpole_config):
        genomes = [
            make_evolved_genome(cartpole_config, seed=i, mutations=30,
                                key=i)
            for i in range(8)
        ]
        stacked = StackedPopulationNetwork.create(genomes, cartpole_config)
        rng = np.random.default_rng(1)
        obs = rng.uniform(-2, 2, size=(8, 3, 4))
        full = stacked.policy_all(obs)
        idx = np.asarray([1, 4, 6])
        sub = stacked.policy_all(obs[idx], genome_idx=idx)
        assert np.array_equal(sub, full[idx])
        # and again after the cache has been primed with another subset
        idx2 = np.asarray([0, 6])
        sub2 = stacked.policy_all(obs[idx2], genome_idx=idx2)
        assert np.array_equal(sub2, full[idx2])

    def test_generic_aggregations_supported(self):
        config = NEATConfig(
            num_inputs=3,
            num_outputs=2,
            pop_size=8,
            node_add_prob=0.4,
            conn_add_prob=0.5,
            aggregation_mutate_rate=0.5,
            allowed_aggregations=("sum", "product", "max", "mean"),
        )
        genomes = [
            make_evolved_genome(config, seed=i, mutations=40, key=i)
            for i in range(6)
        ]
        plans = [compile_batched(g, config) for g in genomes]
        assert any(
            layer.generic_nodes for plan in plans for layer in plan.layers
        ), "mutation burst should produce at least one non-sum node"
        stacked = StackedPopulationNetwork(plans)
        rng = np.random.default_rng(2)
        obs = rng.uniform(-1, 1, size=(6, 4, 3))
        out = stacked.activate_all(obs)
        for g, plan in enumerate(plans):
            expected = BatchedFeedForwardNetwork(plan).activate_batch(
                obs[g]
            )
            np.testing.assert_allclose(out[g], expected, atol=1e-12)

    def test_arity_mismatch_rejected(self, cartpole_config, small_config):
        a = make_evolved_genome(cartpole_config, seed=0, key=0)
        b = make_evolved_genome(small_config, seed=0, key=1)
        with pytest.raises(ValueError, match="arity"):
            StackedPopulationNetwork(
                [
                    compile_batched(a, cartpole_config),
                    compile_batched(b, small_config),
                ]
            )

    def test_empty_plan_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            StackedPopulationNetwork([])


class TestEvaluatorPopulationMode:
    @pytest.mark.parametrize(
        "env_id",
        (
            "CartPole-v0",
            "MountainCar-v0",
            "LunarLander-v2",
            "Airraid-ram-v0",
            "Amidar-ram-v0",
            "Alien-ram-v0",
        ),
    )
    @pytest.mark.parametrize("episodes", (1, 3))
    def test_matches_per_genome_batched_exactly(self, env_id, episodes):
        config, genomes = evolved_population(env_id)
        per_genome = GenomeEvaluator(
            env_id, episodes=episodes, seed=7, backend="batched"
        )
        population = GenomeEvaluator(
            env_id, episodes=episodes, seed=7, backend="batched",
            eval_mode="population",
        )
        expected = per_genome.evaluate_many(genomes, config, generation=3)
        got = population.evaluate_many(genomes, config, generation=3)
        assert got == expected

    @pytest.mark.parametrize(
        "env_id", ("CartPole-v0", "MountainCar-v0")
    )
    def test_matches_scalar_reference(self, env_id):
        config, genomes = evolved_population(env_id)
        scalar = GenomeEvaluator(env_id, episodes=2, seed=5)
        population = GenomeEvaluator(
            env_id, episodes=2, seed=5, backend="batched",
            eval_mode="population",
        )
        assert population.evaluate_many(
            genomes, config, generation=1
        ) == scalar.evaluate_many(genomes, config, generation=1)

    def test_single_step_study_parity(self):
        """max_steps=1 (the paper's single-step-inference study)."""
        config, genomes = evolved_population("CartPole-v0")
        per_genome = GenomeEvaluator(
            "CartPole-v0", max_steps=1, seed=2, backend="batched"
        )
        population = GenomeEvaluator(
            "CartPole-v0", max_steps=1, seed=2, backend="batched",
            eval_mode="population",
        )
        assert population.evaluate_many(
            genomes, config
        ) == per_genome.evaluate_many(genomes, config)

    def test_generation_seed_advances(self):
        config, genomes = evolved_population("CartPole-v0", n=4)
        evaluator = GenomeEvaluator(
            "CartPole-v0", seed=3, backend="batched",
            eval_mode="population",
        )
        gen0 = evaluator.evaluate_many(genomes, config, generation=0)
        gen1 = evaluator.evaluate_many(genomes, config, generation=1)
        assert gen0 != gen1  # fresh initial conditions per generation

    def test_empty_batch(self):
        evaluator = GenomeEvaluator(
            "CartPole-v0", backend="batched", eval_mode="population"
        )
        config = NEATConfig.for_env("CartPole-v0")
        assert evaluator.evaluate_many([], config) == {}

    def test_population_requires_batched_backend(self):
        with pytest.raises(ValueError, match="batched"):
            GenomeEvaluator("CartPole-v0", eval_mode="population")

    def test_population_rejects_env_factory(self):
        from repro.envs.cartpole import CartPoleEnv

        with pytest.raises(ValueError, match="env_factory"):
            GenomeEvaluator(
                "CartPole-v0",
                backend="batched",
                eval_mode="population",
                env_factory=CartPoleEnv,
            )

    def test_unknown_eval_mode_rejected(self):
        with pytest.raises(ValueError, match="eval_mode"):
            GenomeEvaluator("CartPole-v0", eval_mode="warp")
        assert EVAL_MODES == ("per_genome", "population")

    def test_with_eval_mode_round_trip(self):
        evaluator = GenomeEvaluator(
            "CartPole-v0", episodes=2, seed=9, backend="batched"
        )
        population = evaluator.with_eval_mode("population")
        assert population.eval_mode == "population"
        assert population.episodes == 2
        assert population.seed == 9
        assert population.with_eval_mode("population") is population
        back = population.with_eval_mode("per_genome")
        assert back.eval_mode == "per_genome"

    def test_with_backend_downgrades_eval_mode(self):
        population = GenomeEvaluator(
            "CartPole-v0", backend="batched", eval_mode="population"
        )
        scalar = population.with_backend("scalar")
        assert scalar.backend == "scalar"
        assert scalar.eval_mode == "per_genome"


class TestFullGenerationParity:
    def test_population_run_matches_per_genome_generation(self):
        """A full NEAT generation: identical fitness for every genome."""
        config = NEATConfig.for_env("CartPole-v0", pop_size=24)
        pop_a = Population(config, seed=6)
        pop_b = Population(config, seed=6)
        ev_a = GenomeEvaluator("CartPole-v0", episodes=2, seed=6,
                               backend="batched")
        ev_b = GenomeEvaluator(
            "CartPole-v0", episodes=2, seed=6, backend="batched",
            eval_mode="population",
        )

        def make_eval(evaluator, cfg):
            def evaluate(genomes, generation):
                return evaluator.evaluate_many(genomes, cfg, generation)

            return evaluate

        for _ in range(3):
            stats_a = pop_a.run_generation(make_eval(ev_a, config))
            stats_b = pop_b.run_generation(make_eval(ev_b, config))
            assert stats_a.best_fitness == stats_b.best_fitness
            assert stats_a.mean_fitness == stats_b.mean_fitness
        assert sorted(pop_a.genomes) == sorted(pop_b.genomes)

    @pytest.mark.parametrize(
        "protocol", ("Serial", "CLAN_DCS", "CLAN_DDS", "CLAN_DDA")
    )
    def test_protocol_trajectories_and_accounting_match(self, protocol):
        n_agents = 1 if protocol == "Serial" else 3
        a = make_protocol(
            protocol, "CartPole-v0", n_agents=n_agents, seed=4,
            episodes=2, backend="batched",
        )
        b = make_protocol(
            protocol, "CartPole-v0", n_agents=n_agents, seed=4,
            episodes=2, backend="batched", eval_mode="population",
        )
        run_a = a.run(3, fitness_threshold=1e9)
        run_b = b.run(3, fitness_threshold=1e9)
        for rec_a, rec_b in zip(run_a.records, run_b.records):
            assert rec_a.best_fitness == rec_b.best_fitness
            assert rec_a.mean_fitness == rec_b.mean_fitness
            assert rec_a.n_species == rec_b.n_species
            # message and flop accounting must be mode-independent
            assert len(rec_a.messages) == len(rec_b.messages)
            for msg_a, msg_b in zip(rec_a.messages, rec_b.messages):
                assert msg_a.n_floats == msg_b.n_floats
                assert msg_a.msg_type == msg_b.msg_type
            for load_a, load_b in zip(
                rec_a.agent_loads, rec_b.agent_loads
            ):
                assert (
                    load_a.inference_gene_ops == load_b.inference_gene_ops
                )
                assert load_a.env_steps == load_b.env_steps
                assert (
                    load_a.genomes_evaluated == load_b.genomes_evaluated
                )


class TestDistributedPopulationMode:
    def test_worker_pool_population_parity(self):
        """Workers sweeping shards vectorized return identical fitness."""
        from repro.cluster.transport import WorkerPool
        from repro.core.partition import round_robin

        config = NEATConfig.for_env("CartPole-v0", pop_size=12)
        _cfg, genomes = evolved_population("CartPole-v0", n=12)
        reference = GenomeEvaluator(
            "CartPole-v0", episodes=2, seed=3, backend="batched"
        )
        expected = {}
        for genome in genomes:
            expected[genome.key] = reference.evaluate(genome, config, 1)

        with WorkerPool(
            2, "CartPole-v0", config, evaluator_seed=3, episodes=2,
            backend="batched", eval_mode="population",
        ) as pool:
            shards = round_robin(
                sorted(genomes, key=lambda g: g.key), pool.n_workers
            )
            plans = [
                [compile_batched(g, config) for g in shard]
                for shard in shards
            ]
            results = {}
            for reply in pool.evaluate_shards(shards, 1, plans=plans):
                results.update(reply)
        assert results == expected

    def test_worker_pool_population_without_plans(self):
        """Workers compile locally when no plans ship with the shard."""
        from repro.cluster.transport import WorkerPool
        from repro.core.partition import round_robin

        config = NEATConfig.for_env("CartPole-v0", pop_size=8)
        _cfg, genomes = evolved_population("CartPole-v0", n=8)
        reference = GenomeEvaluator(
            "CartPole-v0", seed=5, backend="batched",
            eval_mode="population",
        )
        expected = reference.evaluate_many(genomes, config, 0)
        with WorkerPool(
            2, "CartPole-v0", config, evaluator_seed=5,
            backend="batched", eval_mode="population",
        ) as pool:
            shards = round_robin(
                sorted(genomes, key=lambda g: g.key), pool.n_workers
            )
            results = {}
            for reply in pool.evaluate_shards(shards, 0):
                results.update(reply)
        assert results == expected

    def test_parallel_runtime_population_mode(self):
        from repro.cluster.runtime import ParallelInferenceRuntime

        config = NEATConfig.for_env("CartPole-v0", pop_size=16)
        with ParallelInferenceRuntime(
            "CartPole-v0", n_workers=2, config=config, seed=2,
            backend="batched", eval_mode="population",
        ) as runtime:
            stats = runtime.run(2, fitness_threshold=1e9)
        # identical trajectory to the logical engine in population mode
        engine = make_protocol(
            "Serial", "CartPole-v0", config=config, seed=2,
            backend="batched", eval_mode="population",
        )
        logical = engine.run(2, fitness_threshold=1e9)
        assert stats.best_fitness_per_generation == [
            record.best_fitness for record in logical.records
        ]

    def test_distributed_clan_runtime_population_mode(self):
        from repro.cluster.runtime import DistributedClanRuntime

        config = NEATConfig.for_env("CartPole-v0", pop_size=16)
        with DistributedClanRuntime(
            "CartPole-v0", n_clans=2, config=config, seed=8,
            backend="batched", eval_mode="population",
        ) as runtime:
            stats = runtime.run(2, fitness_threshold=1e9)
        engine = make_protocol(
            "CLAN_DDA", "CartPole-v0", n_agents=2, config=config, seed=8,
            backend="batched", eval_mode="population",
        )
        logical = engine.run(2, fitness_threshold=1e9)
        assert stats.best_fitness_per_generation == [
            record.best_fitness for record in logical.records
        ]
