"""Tests for NEATConfig validation and derivation."""

import pytest

from repro.neat.config import NEATConfig


class TestValidation:
    def test_defaults_valid(self):
        config = NEATConfig()
        assert config.pop_size == 150  # the paper's population size

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_inputs", 0),
            ("num_outputs", 0),
            ("pop_size", 1),
            ("survival_threshold", 1.5),
            ("survival_threshold", -0.1),
            ("crossover_prob", 2.0),
            ("elitism", -1),
            ("min_species_size", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            NEATConfig(**{field: value})

    def test_invalid_initial_connection(self):
        with pytest.raises(ValueError, match="initial_connection"):
            NEATConfig(initial_connection="sparse")

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            NEATConfig(default_activation="swish")

    def test_unknown_allowed_activation_rejected(self):
        with pytest.raises(ValueError):
            NEATConfig(allowed_activations=("tanh", "swish"))

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError):
            NEATConfig(default_aggregation="median")


class TestDerivation:
    def test_evolve_with(self):
        config = NEATConfig(pop_size=50)
        derived = config.evolve_with(pop_size=20)
        assert derived.pop_size == 20
        assert config.pop_size == 50

    def test_evolve_with_validates(self):
        with pytest.raises(ValueError):
            NEATConfig().evolve_with(pop_size=0)

    def test_for_env_sizes_io(self):
        config = NEATConfig.for_env("LunarLander-v2")
        assert config.num_inputs == 8
        assert config.num_outputs == 4

    def test_for_env_atari(self):
        config = NEATConfig.for_env("Airraid-ram-v0")
        assert config.num_inputs == 128
        assert config.num_outputs == 6

    def test_for_env_overrides(self):
        config = NEATConfig.for_env("CartPole-v0", pop_size=42)
        assert config.pop_size == 42

    def test_input_keys_negative(self):
        config = NEATConfig(num_inputs=3, num_outputs=2)
        assert config.input_keys == (-1, -2, -3)

    def test_output_keys_nonnegative(self):
        config = NEATConfig(num_inputs=3, num_outputs=2)
        assert config.output_keys == (0, 1)

    def test_key_spaces_disjoint(self):
        config = NEATConfig(num_inputs=5, num_outputs=5)
        assert not set(config.input_keys) & set(config.output_keys)
