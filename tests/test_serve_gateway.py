"""Gateway behaviour: stats, hot-swap between batches, drain-on-close."""

import asyncio

import pytest

from repro.core.metrics import percentile
from repro.neat.config import NEATConfig
from repro.serve import (
    ChampionRegistry,
    InferenceGateway,
    RegistryClosed,
    ServiceClosed,
)

from tests.conftest import make_evolved_genome

pytestmark = pytest.mark.lock_check

CONFIG = NEATConfig.for_env("CartPole-v0")


def _registry(n_champions: int = 1) -> ChampionRegistry:
    registry = ChampionRegistry(CONFIG)
    for seed in range(n_champions):
        registry.publish(
            make_evolved_genome(CONFIG, seed=seed, mutations=30, key=seed)
        )
    return registry


class TestStats:
    def test_snapshot_after_traffic(self):
        async def run():
            gateway = InferenceGateway(
                _registry(), max_batch=8, max_wait_s=0.001
            )
            await gateway.start()
            await asyncio.gather(
                *(gateway.submit([0.1, 0.2, 0.3, 0.4]) for _ in range(20))
            )
            stats = gateway.stats()
            await gateway.close()
            return stats

        stats = asyncio.run(run())
        assert stats.requests == stats.served == 20
        assert stats.shed == 0
        assert stats.qps > 0
        assert 0 <= stats.p50_latency_s <= stats.p95_latency_s
        assert sum(
            size * count
            for size, count in stats.batch_size_histogram.items()
        ) == 20
        assert stats.mean_batch_size >= 1.0
        assert stats.champion_version == 1
        assert stats.swaps == 0

    def test_empty_gateway_reports_zeroes(self):
        async def run():
            gateway = InferenceGateway(_registry())
            await gateway.start()
            stats = gateway.stats()
            await gateway.close()
            return stats

        stats = asyncio.run(run())
        assert stats.served == 0
        assert stats.p50_latency_s == 0.0
        assert stats.qps == 0.0
        assert stats.mean_batch_size == 0.0

    def test_percentile_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 50) == 3.0
        assert percentile(samples, 95) == 5.0
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 5.0
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile(samples, 101)


class TestHotSwap:
    def test_swap_lands_between_batches(self):
        """Requests after a publish are served by the new version while
        the gateway keeps answering — zero downtime."""

        async def run():
            registry = _registry()
            gateway = InferenceGateway(
                registry, max_batch=8, max_wait_s=0.0005
            )
            await gateway.start()
            obs = [0.3, -0.1, 0.2, 0.4]
            before = await gateway.submit(obs)
            registry.publish(
                make_evolved_genome(CONFIG, seed=9, mutations=30, key=9)
            )
            after = await gateway.submit(obs)
            stats = gateway.stats()
            await gateway.close()
            return before, after, stats

        before, after, stats = asyncio.run(run())
        assert before.champion_version == 1
        assert after.champion_version == 2
        assert stats.swaps == 1
        assert stats.champion_version == 2

    def test_whole_batch_shares_one_version(self):
        async def run():
            registry = _registry(n_champions=2)
            gateway = InferenceGateway(
                registry, max_batch=32, max_wait_s=0.01
            )
            await gateway.start()
            results = await asyncio.gather(
                *(gateway.submit([0.0] * 4) for _ in range(12))
            )
            await gateway.close()
            return results

        results = asyncio.run(run())
        batches = {}
        for served in results:
            batches.setdefault(served.batch_size, set()).add(
                served.champion_version
            )
        for versions in batches.values():
            assert len(versions) == 1


class TestDrainOnClose:
    def test_no_accepted_request_is_dropped(self):
        """The satellite fix: close() answers everything accepted before
        the registry shuts — mirroring run_async's stale-message drain."""

        async def run():
            registry = _registry()
            gateway = InferenceGateway(
                registry, max_batch=4, max_wait_s=0.02
            )
            await gateway.start()
            tasks = [
                asyncio.ensure_future(gateway.submit([0.1] * 4))
                for _ in range(50)
            ]
            # requests are queued but mostly unflushed; close must drain
            await asyncio.sleep(0)
            close_task = asyncio.ensure_future(gateway.close())
            results = await asyncio.gather(*tasks)
            await close_task
            return results, registry

        results, registry = asyncio.run(run())
        assert len(results) == 50
        assert all(served.action in (0, 1) for served in results)
        # registry closed only after the drain
        assert registry.closed
        with pytest.raises(RegistryClosed):
            registry.current()

    def test_submit_after_close_rejected(self):
        async def run():
            gateway = InferenceGateway(_registry())
            await gateway.start()
            await gateway.close()
            with pytest.raises(ServiceClosed):
                await gateway.submit([0.0] * 4)

        asyncio.run(run())

    def test_close_is_idempotent(self):
        async def run():
            gateway = InferenceGateway(_registry())
            await gateway.start()
            await gateway.close()
            await gateway.close()

        asyncio.run(run())

    def test_borrowed_registry_stays_open(self):
        async def run():
            registry = _registry()
            gateway = InferenceGateway(registry, close_registry=False)
            await gateway.start()
            await gateway.submit([0.0] * 4)
            await gateway.close()
            return registry

        registry = asyncio.run(run())
        assert not registry.closed
        assert registry.current().version == 1
