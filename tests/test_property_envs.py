"""Property-based tests for environment invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs.base import rollout
from repro.envs.registry import available_env_ids, make

env_ids = st.sampled_from(available_env_ids())
seeds = st.integers(min_value=0, max_value=100_000)


class TestEnvironmentProperties:
    @given(env_ids, seeds)
    @settings(max_examples=40, deadline=None)
    def test_observations_stay_in_space(self, env_id, seed):
        env = make(env_id)
        env.seed(seed)
        obs = env.reset()
        assert env.observation_space.contains(obs)
        rng = random.Random(seed)
        for _ in range(30):
            obs, _r, done, _i = env.step(env.action_space.sample(rng))
            assert env.observation_space.contains(obs)
            if done:
                break

    @given(env_ids, seeds)
    @settings(max_examples=30, deadline=None)
    def test_identical_seeds_identical_episodes(self, env_id, seed):
        def run():
            env = make(env_id)
            rng = random.Random(seed + 1)
            return rollout(
                env, lambda obs: env.action_space.sample(rng), seed=seed
            )

        a, b = run(), run()
        assert a.total_reward == b.total_reward
        assert a.steps == b.steps
        assert a.rewards == b.rewards

    @given(env_ids, seeds)
    @settings(max_examples=30, deadline=None)
    def test_episode_never_exceeds_cap(self, env_id, seed):
        env = make(env_id)
        rng = random.Random(seed)
        result = rollout(
            env, lambda obs: env.action_space.sample(rng), seed=seed
        )
        assert 1 <= result.steps <= env.max_episode_steps

    @given(env_ids, seeds)
    @settings(max_examples=30, deadline=None)
    def test_fitness_finite(self, env_id, seed):
        env = make(env_id)
        rng = random.Random(seed)
        result = rollout(
            env, lambda obs: env.action_space.sample(rng), seed=seed
        )
        assert result.fitness == result.fitness  # not NaN
        assert abs(result.fitness) < 1e9
