"""Tests for run statistics and sparklines."""

import pytest

from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult
from repro.neat.population import Population
from repro.neat.statistics import (
    RunStatistics,
    sparkline,
    summarise,
)


def fake_evaluate(genomes, generation):
    return {
        g.key: FitnessResult(
            g.key, float(g.key % 11 + generation), 2, 0.0, False
        )
        for g in genomes
    }


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3], width=4)
        assert len(line) == 4
        assert line[0] == " "
        assert line[-1] == "@"

    def test_constant_series(self):
        line = sparkline([5, 5, 5], width=3)
        assert len(set(line)) == 1

    def test_pooling_to_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=40)) == 2


class TestSummarise:
    def test_fields(self):
        summary = summarise([1.0, 3.0, 2.0])
        assert summary.first == 1.0
        assert summary.last == 2.0
        assert summary.best == 3.0
        assert summary.mean == pytest.approx(2.0)
        assert summary.stdev > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise([])


class TestRunStatistics:
    @pytest.fixture
    def stats(self):
        config = NEATConfig(num_inputs=3, num_outputs=2, pop_size=20)
        population = Population(config, seed=2)
        run = RunStatistics()
        for _ in range(5):
            run.record(population.run_generation(fake_evaluate))
        return run

    def test_series_lengths(self, stats):
        assert len(stats.best_fitness_series()) == 5
        assert len(stats.species_count_series()) == 5
        assert len(stats.complexity_series()) == 5

    def test_best_fitness_grows_with_generation_bonus(self, stats):
        series = stats.best_fitness_series()
        assert series[-1] > series[0]  # fitness includes +generation

    def test_generations_to_reach(self, stats):
        series = stats.best_fitness_series()
        assert stats.generations_to_reach(series[0]) == 0
        assert stats.generations_to_reach(1e9) is None

    def test_report_renders(self, stats):
        report = stats.report()
        assert "best fitness" in report
        assert "species" in report
        assert "genome genes" in report

    def test_empty_report(self):
        assert "no generations" in RunStatistics().report()

    def test_record_all(self):
        config = NEATConfig(num_inputs=3, num_outputs=2, pop_size=20)
        population = Population(config, seed=2)
        log = population.run(
            fake_evaluate, max_generations=3, fitness_threshold=1e9
        )
        run = RunStatistics()
        run.record_all(log)
        assert len(run.generations) == 3
