"""End-to-end continuous serving: evolve in the background, hot-swap
mid-traffic, and keep every served action attributable to (and in exact
agreement with) the champion that served it."""

import asyncio

import pytest

from repro.neat.config import NEATConfig
from repro.serve import (
    ContinuousService,
    LoadGenerator,
    ServiceClosed,
    observation_sampler,
)


@pytest.fixture(scope="module")
def config():
    return NEATConfig.for_env("CartPole-v0", pop_size=24)


def _run_service(config, n_requests=400, rate_hz=400.0, **kwargs):
    """Serve a Poisson load while evolution runs; returns everything the
    assertions need after a clean close."""

    async def run():
        service = ContinuousService(
            "CartPole-v0",
            n_clans=2,
            config=config,
            seed=0,
            max_generations=kwargs.pop("max_generations", 30),
            fitness_threshold=kwargs.pop("fitness_threshold", 1e9),
            max_batch=16,
            max_wait_s=0.001,
            **kwargs,
        )
        bootstrap = await service.start()
        generator = LoadGenerator(
            service.submit,
            observation_sampler("CartPole-v0"),
            rate_hz=rate_hz,
            n_requests=n_requests,
            seed=7,
        )
        report = await generator.run()
        stats = service.stats()
        evolution = await service.close()
        return service, bootstrap, report, stats, evolution

    return asyncio.run(run())


class TestContinuousServing:
    @pytest.fixture(scope="class")
    def outcome(self, config):
        return _run_service(config)

    def test_bootstrap_champion_deploys_before_traffic(self, outcome):
        _, bootstrap, _, _, _ = outcome
        assert bootstrap.version == 1
        assert bootstrap.source == "bootstrap"
        assert bootstrap.fitness == float("-inf")

    def test_all_offered_requests_are_served(self, outcome):
        _, _, report, _, _ = outcome
        assert report.served == report.offered
        assert report.shed == 0
        assert report.rejected_closed == 0

    def test_at_least_one_hot_swap_mid_traffic(self, outcome):
        service, _, report, stats, _ = outcome
        assert len(service.promotions) >= 1
        # traffic actually observed more than the bootstrap champion
        assert len(report.distinct_versions) >= 2
        assert report.distinct_versions[0] == 1
        assert stats.swaps == len(service.promotions)

    def test_served_actions_match_then_current_champion(self, outcome):
        """The acceptance criterion: every response equals the scalar
        inference of the exact champion version that served it."""
        service, _, report, _, _ = outcome
        scalar_cache = {}
        for served, obs in zip(report.responses, report.observations):
            version = served.champion_version
            if version not in scalar_cache:
                record = service.registry.record_for(version)
                scalar_cache[version] = record.scalar_network()
            assert served.action == scalar_cache[version].policy(obs)
        assert len(scalar_cache) >= 2

    def test_promotions_have_strictly_increasing_fitness(self, outcome):
        service, _, _, _, _ = outcome
        fitnesses = [
            record.fitness for record, _event in service.promotions
        ]
        assert fitnesses == sorted(fitnesses)
        assert len(set(fitnesses)) == len(fitnesses)
        for record, event in service.promotions:
            assert record.fitness == event.fitness
            assert record.generation == event.generation
            assert record.source == f"clan{event.clan_id}"

    def test_evolution_stats_returned_on_close(self, outcome):
        _, _, _, _, evolution = outcome
        assert evolution is not None
        assert evolution.generations >= 1
        assert len(evolution.champions) >= 1
        assert evolution.champions[-1].fitness == evolution.best_fitness

    def test_stats_snapshot_is_consistent(self, outcome):
        _, _, report, stats, _ = outcome
        assert stats.served == report.served
        assert stats.qps > 0
        assert stats.p50_latency_s <= stats.p95_latency_s
        assert stats.champion_version == len(report.distinct_versions)


class TestServiceLifecycle:
    def test_submit_after_close_rejected(self, config):
        async def run():
            service = ContinuousService(
                "CartPole-v0",
                n_clans=2,
                config=config,
                seed=0,
                max_generations=2,
                fitness_threshold=1e9,
            )
            await service.start()
            await service.submit([0.0] * 4)
            await service.close()
            with pytest.raises(ServiceClosed):
                await service.submit([0.0] * 4)

        asyncio.run(run())

    def test_close_halts_evolution_early(self, config):
        """A service wound down mid-budget stops the clans instead of
        waiting out the full generation budget."""

        async def run():
            service = ContinuousService(
                "CartPole-v0",
                n_clans=2,
                config=config,
                seed=0,
                max_generations=10_000,
                fitness_threshold=1e9,
            )
            await service.start()
            await service.submit([0.0] * 4)
            return await service.close()

        evolution = asyncio.run(run())
        assert evolution is not None
        assert evolution.generations < 10_000

    def test_double_start_rejected(self, config):
        async def run():
            service = ContinuousService(
                "CartPole-v0",
                n_clans=2,
                config=config,
                seed=0,
                max_generations=2,
                fitness_threshold=1e9,
            )
            await service.start()
            with pytest.raises(RuntimeError):
                await service.start()
            await service.close()

        asyncio.run(run())

    def test_conflicting_pop_size_rejected(self, config):
        with pytest.raises(ValueError):
            ContinuousService(
                "CartPole-v0", config=config, pop_size=config.pop_size + 1
            )
