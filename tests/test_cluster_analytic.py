"""Tests for the analytic timing model."""

import pytest

from repro.cluster.analytic import (
    ClusterSpec,
    TimingBreakdown,
    effective_evolution_gene_ops,
    mean_generation_time,
    time_generation,
    time_run,
)
from repro.cluster.device import get_device
from repro.core.messages import CENTER, Message, MessageType
from repro.core.metrics import AgentLoad, GenerationRecord


def record_with(n_agents=2, **kwargs):
    record = GenerationRecord(
        generation=0,
        protocol="CLAN_DCS",
        n_agents=n_agents,
        agent_loads=[AgentLoad() for _ in range(n_agents)],
    )
    for key, value in kwargs.items():
        setattr(record, key, value)
    return record


class TestClusterSpec:
    def test_of_pis(self):
        spec = ClusterSpec.of_pis(4)
        assert spec.n_agents == 4
        assert spec.agent_device.name == "raspberry_pi"

    def test_center_defaults_to_agent_device(self):
        spec = ClusterSpec.of_pis(2)
        assert spec.center is spec.agent_device

    def test_total_price(self):
        assert ClusterSpec.of_pis(6).total_price_usd() == 240.0

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_agents=0, agent_device=get_device("raspberry_pi"))


class TestHeterogeneousSpec:
    def test_of_devices(self):
        spec = ClusterSpec.of_devices(
            ["jetson_nano", "raspberry_pi", "pi_zero"]
        )
        assert spec.n_agents == 3
        assert spec.heterogeneous
        assert spec.device_for(0).name == "jetson_nano"
        assert spec.device_for(2).name == "pi_zero"
        # scalar convenience field defaults to the first entry
        assert spec.agent_device.name == "jetson_nano"

    def test_homogeneous_spec_not_heterogeneous(self):
        assert not ClusterSpec.of_pis(4).heterogeneous
        uniform = ClusterSpec.of_devices(["raspberry_pi", "raspberry_pi"])
        assert not uniform.heterogeneous

    def test_device_list_length_must_match(self):
        with pytest.raises(ValueError):
            ClusterSpec(
                n_agents=3,
                agent_devices=(get_device("raspberry_pi"),),
            )

    def test_requires_some_device(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_agents=2)

    def test_total_price_sums_per_agent(self):
        spec = ClusterSpec.of_devices(["jetson_nano", "pi_zero"])
        assert spec.total_price_usd() == pytest.approx(
            get_device("jetson_nano").price_usd
            + get_device("pi_zero").price_usd
        )

    def test_out_of_range_agent_falls_back_to_scalar(self):
        spec = ClusterSpec.of_devices(["pi_zero", "raspberry_pi"])
        assert spec.device_for(7) is spec.agent_device

    def test_center_default_is_order_independent(self):
        # the centre must not silently follow the arbitrary order of the
        # device list; it defaults to the strongest evolution device
        one = ClusterSpec.of_devices(["pi_zero", "jetson_nano"])
        other = ClusterSpec.of_devices(["jetson_nano", "pi_zero"])
        assert one.center is other.center
        assert one.center.name == "jetson_nano"
        record = record_with(n_agents=2)
        record.center_speciation_gene_ops = 100_000
        assert time_generation(record, one, 0.0).total_s == pytest.approx(
            time_generation(record, other, 0.0).total_s
        )

    def test_center_device_override_wins(self):
        spec = ClusterSpec.of_devices(
            ["pi_zero", "jetson_nano"],
            center_device=get_device("raspberry_pi"),
        )
        assert spec.center.name == "raspberry_pi"

    def test_straggler_paces_inference(self):
        # one heavy Pi Zero must dominate the inference phase even when a
        # fast device carries the same load
        record = record_with(n_agents=2)
        for load in record.agent_loads:
            load.inference_gene_ops = 100_000
        het = ClusterSpec.of_devices(["jetson_nano", "pi_zero"])
        timing = time_generation(record, het, 0.0)
        assert timing.inference_s == pytest.approx(
            get_device("pi_zero").inference_time(100_000)
        )

    def test_homogeneous_numbers_unchanged_by_list_form(self):
        record = record_with(n_agents=2)
        for load in record.agent_loads:
            load.inference_gene_ops = 50_000
            load.speciation_gene_ops = 10_000
        scalar = ClusterSpec.of_pis(2)
        as_list = ClusterSpec.of_devices(["raspberry_pi", "raspberry_pi"])
        assert time_generation(record, scalar, 0.0).total_s == (
            pytest.approx(time_generation(record, as_list, 0.0).total_s)
        )


class TestTimingBreakdown:
    def test_total(self):
        timing = TimingBreakdown(1.0, 2.0, 3.0)
        assert timing.total_s == 6.0

    def test_add(self):
        total = TimingBreakdown(1, 1, 1) + TimingBreakdown(2, 2, 2)
        assert total.total_s == 9.0

    def test_scaled(self):
        timing = TimingBreakdown(2.0, 4.0, 6.0).scaled(0.5)
        assert timing.inference_s == 1.0
        assert timing.total_s == 6.0

    def test_share_sums_to_one(self):
        share = TimingBreakdown(1.0, 2.0, 3.0).share()
        assert sum(share.values()) == pytest.approx(1.0)

    def test_share_of_zero(self):
        share = TimingBreakdown().share()
        assert all(v == 0.0 for v in share.values())


class TestTimeGeneration:
    def test_inference_is_max_over_agents(self):
        record = record_with(n_agents=2)
        record.agent_loads[0].inference_gene_ops = 100_000
        record.agent_loads[1].inference_gene_ops = 50_000
        spec = ClusterSpec.of_pis(2)
        timing = time_generation(record, spec, pi_env_step_s=0.0)
        expected = spec.agent_device.inference_time(100_000)
        assert timing.inference_s == pytest.approx(expected)

    def test_env_steps_add_inference_time(self):
        record = record_with(n_agents=1)
        record.agent_loads[0].env_steps = 1000
        spec = ClusterSpec.of_pis(1)
        timing = time_generation(record, spec, pi_env_step_s=1e-3)
        assert timing.inference_s == pytest.approx(1.0)

    def test_center_evolution_timed_on_center_device(self):
        record = record_with(n_agents=1)
        record.center_speciation_gene_ops = 1_000_000
        fast_center = ClusterSpec(
            n_agents=1,
            agent_device=get_device("raspberry_pi"),
            center_device=get_device("hpc_cpu"),
        )
        pi_center = ClusterSpec.of_pis(1)
        fast = time_generation(record, fast_center, 0.0)
        slow = time_generation(record, pi_center, 0.0)
        assert fast.evolution_s < slow.evolution_s

    def test_no_messages_no_comm(self):
        record = record_with(n_agents=2)
        timing = time_generation(record, ClusterSpec.of_pis(2), 0.0)
        assert timing.communication_s == 0.0

    def test_message_units_charge_per_send(self):
        base = record_with(n_agents=1)
        base.messages.append(
            Message(MessageType.SENDING_GENOMES, CENTER, 0, 100, 50, 1)
        )
        chatty = record_with(n_agents=1)
        chatty.messages.append(
            Message(MessageType.SENDING_GENOMES, CENTER, 0, 100, 50, 10)
        )
        spec = ClusterSpec.of_pis(1)
        assert (
            time_generation(chatty, spec, 0.0).communication_s
            > time_generation(base, spec, 0.0).communication_s
        )

    def test_phase_sync_scales_quadratically(self):
        def comm_at(n):
            record = record_with(n_agents=n)
            record.messages.append(
                Message(MessageType.SENDING_FITNESS, 0, CENTER, 10, 0, 1)
            )
            return time_generation(
                record, ClusterSpec.of_pis(n), 0.0
            ).communication_s

        delta_small = comm_at(4) - comm_at(2)
        delta_large = comm_at(16) - comm_at(14)
        assert delta_large > delta_small

    def test_one_sync_cost_per_phase(self):
        one_phase = record_with(n_agents=2)
        one_phase.messages.append(
            Message(MessageType.SENDING_FITNESS, 0, CENTER, 10, 0, 1)
        )
        two_phase = record_with(n_agents=2)
        two_phase.messages.append(
            Message(MessageType.SENDING_FITNESS, 0, CENTER, 10, 0, 1)
        )
        two_phase.messages.append(
            Message(MessageType.SENDING_GENOMES, CENTER, 0, 10, 5, 1)
        )
        spec = ClusterSpec.of_pis(2)
        t1 = time_generation(one_phase, spec, 0.0).communication_s
        t2 = time_generation(two_phase, spec, 0.0).communication_s
        assert t2 > t1 + spec.phase_sync_s * 4 - 1e-9

    def test_plan_messages_share_one_phase(self):
        record = record_with(n_agents=2)
        for msg_type in (
            MessageType.SENDING_SPAWN_COUNT,
            MessageType.SENDING_PARENT_LIST,
            MessageType.SENDING_PARENT_GENOMES,
        ):
            record.messages.append(
                Message(msg_type, CENTER, 0, 10, 0, 1)
            )
        spec = ClusterSpec.of_pis(2)
        timing = time_generation(record, spec, 0.0)
        per_message = (
            spec.link.channel_setup_s + spec.link.base_latency_s
        ) * 3 + 3 * 10 * 4 * 8 / spec.link.bandwidth_bps
        sync = spec.phase_sync_s * 4  # one phase only
        assert timing.communication_s == pytest.approx(per_message + sync)

    def test_phase_tag_overrides_message_type(self):
        # resync-tagged traffic forms its own barrier phase instead of
        # re-entering genomes_down / children_up
        untagged = record_with(n_agents=2)
        untagged.messages.append(
            Message(MessageType.SENDING_GENOMES, CENTER, 0, 10, 5, 1)
        )
        tagged = record_with(n_agents=2)
        tagged.messages.append(
            Message(MessageType.SENDING_GENOMES, CENTER, 0, 10, 5, 1)
        )
        tagged.messages.append(
            Message(
                MessageType.SENDING_GENOMES, CENTER, 0, 10, 5, 1,
                phase="resync",
            )
        )
        spec = ClusterSpec.of_pis(2)
        delta = (
            time_generation(tagged, spec, 0.0).communication_s
            - time_generation(untagged, spec, 0.0).communication_s
        )
        per_message = (
            spec.link.channel_setup_s
            + spec.link.base_latency_s
            + 10 * 4 * 8 / spec.link.bandwidth_bps
        )
        # the tagged copy pays its transfer plus one extra phase sync
        assert delta == pytest.approx(
            per_message + spec.phase_sync_s * 4
        )


class TestRunAggregation:
    def test_time_run_sums(self):
        records = [record_with(n_agents=1) for _ in range(3)]
        for record in records:
            record.agent_loads[0].inference_gene_ops = 50_000
        spec = ClusterSpec.of_pis(1)
        total = time_run(records, spec, 0.0)
        single = time_generation(records[0], spec, 0.0)
        assert total.total_s == pytest.approx(3 * single.total_s)

    def test_mean_generation_time(self):
        records = [record_with(n_agents=1) for _ in range(4)]
        for record in records:
            record.agent_loads[0].inference_gene_ops = 50_000
        spec = ClusterSpec.of_pis(1)
        mean = mean_generation_time(records, spec, 0.0)
        assert mean.total_s == pytest.approx(
            time_generation(records[0], spec, 0.0).total_s
        )

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            mean_generation_time([], ClusterSpec.of_pis(1), 0.0)


class TestEffectiveEvolution:
    def test_speciation_cheaper_per_gene_than_inference(self):
        assert effective_evolution_gene_ops(100, 0, 0) < 100

    def test_components_additive(self):
        combined = effective_evolution_gene_ops(100, 200, 50)
        assert combined == pytest.approx(
            effective_evolution_gene_ops(100, 0, 0)
            + effective_evolution_gene_ops(0, 200, 0)
            + effective_evolution_gene_ops(0, 0, 50)
        )
