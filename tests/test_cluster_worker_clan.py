"""Unit tests for the in-worker clan (real CLAN_DDA state)."""

import pytest

from repro.cluster.serialization import decode_genome, encode_genomes
from repro.cluster.worker_clan import WorkerClan
from repro.core.partition import contiguous_blocks
from repro.core.protocols import ProtocolBase
from repro.neat.config import NEATConfig
from repro.neat.population import Population
from repro.utils.rng import RngFactory


@pytest.fixture
def setup():
    config = NEATConfig.for_env("CartPole-v0", pop_size=16)
    seed = 6
    rngs = RngFactory(seed)
    population = Population(config, seed=seed)
    blocks = contiguous_blocks(sorted(population.genomes), 2)
    evaluator = ProtocolBase.default_evaluator("CartPole-v0", seed)
    members = [population.genomes[key] for key in blocks[0]]
    clan = WorkerClan(
        env_id="CartPole-v0",
        config=config,
        evaluator=evaluator,
        clan_id=0,
        n_clans=2,
        members_wire=encode_genomes(members),
        rng_seed=rngs.child("clan:0").root_seed,
        next_genome_key=config.pop_size,
        num_outputs=config.num_outputs,
    )
    return clan, config


class TestWorkerClan:
    def test_clan_config_sized_to_members(self, setup):
        clan, config = setup
        assert clan.config.pop_size == 8
        assert len(clan.members) == 8

    def test_generation_preserves_clan_size(self, setup):
        clan, _config = setup
        for generation in range(3):
            summary = clan.run_generation(generation)
            assert summary.n_members == 8

    def test_summary_fields(self, setup):
        clan, _config = setup
        summary = clan.run_generation(0)
        assert summary.clan_id == 0
        assert summary.generation == 0
        assert summary.best_fitness >= summary.mean_fitness
        assert summary.n_species >= 1

    def test_new_keys_respect_stride(self, setup):
        clan, config = setup
        clan.run_generation(0)
        new_keys = [k for k in clan.members if k >= config.pop_size]
        assert new_keys
        assert all(key % 2 == 0 for key in new_keys)  # clan 0 of 2

    def test_best_genome_wire_round_trips(self, setup):
        clan, _config = setup
        clan.run_generation(0)
        champion = decode_genome(clan.best_genome_wire())
        assert champion.fitness is not None

    def test_best_requires_a_generation(self, setup):
        clan, _config = setup
        with pytest.raises(RuntimeError):
            clan.best_genome_wire()
