"""Smoke tests: every shipped example must run to completion."""

import pathlib
import subprocess
import sys

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "converged" in result.stdout
        assert "replay episode" in result.stdout

    def test_distributed_edge_cluster(self):
        result = run_example("distributed_edge_cluster.py")
        assert result.returncode == 0, result.stderr
        assert "bit-exact agreement: True" in result.stdout
        for protocol in ("CLAN_DCS", "CLAN_DDS", "CLAN_DDA"):
            assert protocol in result.stdout

    def test_continuous_adaptation(self):
        result = run_example("continuous_adaptation.py")
        assert result.returncode == 0, result.stderr
        assert "relearning" in result.stdout
        assert "phase 4" in result.stdout

    def test_scaling_study_single_step(self):
        result = run_example("scaling_study.py", "--single")
        assert result.returncode == 0, result.stderr
        assert "crossover vs serial" in result.stdout

    def test_price_performance(self):
        result = run_example("price_performance.py")
        assert result.returncode == 0, result.stderr
        assert "performance per dollar" in result.stdout

    def test_robot_swarm_patrol(self):
        result = run_example("robot_swarm_patrol.py")
        assert result.returncode == 0, result.stderr
        assert "single-step" in result.stdout
        assert "robots" in result.stdout

    def test_async_fleet(self):
        result = run_example("async_fleet.py")
        assert result.returncode == 0, result.stderr
        assert "barrier" in result.stdout
        assert "async" in result.stdout
        assert "per-clan generation counts" in result.stdout

    def test_population_eval(self):
        result = run_example("population_eval.py")
        assert result.returncode == 0, result.stderr
        assert "identical trajectories: True" in result.stdout
        assert "x faster" in result.stdout

    def test_continuous_serving(self):
        result = run_example("continuous_serving.py")
        assert result.returncode == 0, result.stderr
        assert "deployed bootstrap champion v1" in result.stdout
        assert "hot-swap -> v2" in result.stdout
        assert "hot-swap mid-traffic: True" in result.stdout
        assert (
            "served actions match their champion's scalar inference: "
            "True" in result.stdout
        )

    def test_fleet_serving(self):
        result = run_example("fleet_serving.py")
        assert result.returncode == 0, result.stderr
        assert "deployed to all 2 replicas" in result.stdout
        assert "replica 0" in result.stdout
        assert "replica 1" in result.stdout
        assert (
            "stale-version serves after hot-swap: 0" in result.stdout
        )
        assert "scalar parity mismatches: 0" in result.stdout

    def test_all_examples_have_docstrings_and_main(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            source = script.read_text()
            assert source.lstrip().startswith(
                ("#!/usr/bin/env python3", '"""')
            ), script.name
            assert 'if __name__ == "__main__":' in source, script.name
