"""Tests for generation planning and child formation."""

import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.reproduction import (
    compute_spawn_counts,
    execute_plan,
    make_child,
    plan_generation,
)
from repro.neat.species import SpeciesSet


def build_state(config, fitness_fn, seed=0):
    """Population + speciation ready for planning."""
    rng = random.Random(seed)
    population = {}
    for key in range(config.pop_size):
        genome = Genome(key)
        genome.configure_new(config, rng)
        genome.fitness = fitness_fn(key)
        population[key] = genome
    species_set = SpeciesSet()
    species_set.speciate(population, 0, config, rng)
    return population, species_set


class TestSpawnCounts:
    def test_exact_population_size(self):
        counts = compute_spawn_counts(
            {1: 0.5, 2: 0.3, 3: 0.2}, {1: 10, 2: 10, 3: 10}, 30, 2
        )
        assert sum(counts.values()) == 30

    def test_fitter_species_grow(self):
        counts = compute_spawn_counts(
            {1: 0.9, 2: 0.1}, {1: 10, 2: 10}, 20, 2
        )
        assert counts[1] > counts[2]

    def test_min_species_size_respected(self):
        counts = compute_spawn_counts(
            {1: 1.0, 2: 0.0}, {1: 18, 2: 2}, 20, 2
        )
        assert counts[2] >= 2

    def test_zero_fitness_sum_splits_evenly(self):
        counts = compute_spawn_counts(
            {1: 0.0, 2: 0.0}, {1: 10, 2: 10}, 20, 2
        )
        assert counts[1] == counts[2]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_spawn_counts({}, {}, 10, 2)

    def test_single_species_gets_everything(self):
        counts = compute_spawn_counts({7: 0.4}, {7: 10}, 25, 2)
        assert counts == {7: 25}


class TestPlanGeneration:
    def config(self, **overrides):
        params = dict(num_inputs=3, num_outputs=2, pop_size=20, elitism=2)
        params.update(overrides)
        return NEATConfig(**params)

    def test_plan_preserves_population_size(self):
        config = self.config()
        _pop, species_set = build_state(config, lambda k: float(k))
        plan = plan_generation(
            config, species_set, 0, random.Random(0),
            iter(range(100, 200)).__next__
        )
        assert plan.next_population_size() == config.pop_size

    def test_elites_are_fittest(self):
        config = self.config()
        population, species_set = build_state(config, lambda k: float(k))
        plan = plan_generation(
            config, species_set, 0, random.Random(0),
            iter(range(100, 200)).__next__,
        )
        # with one species, the two elites must be the top-fitness genomes
        if len(species_set.species) == 1:
            assert set(plan.elites) == {18, 19}

    def test_children_reference_surviving_parents(self):
        config = self.config()
        population, species_set = build_state(config, lambda k: float(k))
        plan = plan_generation(
            config, species_set, 0, random.Random(0),
            iter(range(100, 200)).__next__,
        )
        pools = {
            key for pool in plan.parent_pools.values() for key in pool
        }
        for spec in plan.children:
            assert spec.parent1_key in pools
            if spec.parent2_key is not None:
                assert spec.parent2_key in pools

    def test_survival_threshold_culls(self):
        config = self.config(survival_threshold=0.2)
        population, species_set = build_state(config, lambda k: float(k))
        plan = plan_generation(
            config, species_set, 0, random.Random(0),
            iter(range(100, 200)).__next__,
        )
        for species_id, pool in plan.parent_pools.items():
            species = species_set.species.get(species_id)
            if species is not None and len(species) >= 10:
                assert len(pool) <= max(
                    2, int(0.2 * len(species)) + 1
                )

    def test_unique_child_keys(self):
        config = self.config()
        _pop, species_set = build_state(config, lambda k: float(k))
        plan = plan_generation(
            config, species_set, 0, random.Random(0),
            iter(range(100, 200)).__next__,
        )
        keys = [spec.child_key for spec in plan.children]
        assert len(keys) == len(set(keys))

    def test_all_stagnant_raises(self):
        config = self.config(max_stagnation=0, species_elitism=0)
        _pop, species_set = build_state(config, lambda k: 1.0)
        plan = plan_generation(  # generation 0: just created, not stagnant
            config, species_set, 0, random.Random(0),
            iter(range(100, 200)).__next__,
        )
        assert plan is not None


class TestMakeChild:
    def test_asexual_child_is_mutated_clone(self, small_config):
        rng = random.Random(0)
        parent = Genome(0)
        parent.configure_new(small_config, rng)
        parent.fitness = 1.0
        tracker = InnovationTracker(next_node_id=small_config.num_outputs)
        from repro.neat.reproduction import ChildSpec

        spec = ChildSpec(
            child_key=5, species_key=1, parent1_key=0, parent2_key=None
        )
        child = make_child(
            spec, {0: parent}, small_config, random.Random(1), tracker
        )
        assert child.key == 5
        assert child.fitness is None

    def test_sexual_child_orders_parents_by_fitness(self, small_config):
        rng = random.Random(0)
        weak = Genome(0)
        weak.configure_new(small_config, rng)
        weak.fitness = 1.0
        strong = Genome(1)
        strong.configure_new(small_config, rng)
        strong.fitness = 9.0
        # strong has an extra connection the weak parent lacks
        tracker = InnovationTracker(next_node_id=small_config.num_outputs)
        strong.mutate_add_node(small_config, rng, tracker)
        extra_keys = set(strong.connections) - set(weak.connections)

        from repro.neat.reproduction import ChildSpec

        spec = ChildSpec(
            child_key=7, species_key=1, parent1_key=0, parent2_key=1
        )
        child = make_child(
            spec,
            {0: weak, 1: strong},
            small_config.evolve_with(
                conn_add_prob=0.0,
                conn_delete_prob=0.0,
                node_add_prob=0.0,
                node_delete_prob=0.0,
            ),
            random.Random(2),
            tracker,
        )
        # disjoint genes must come from the fitter parent (strong)
        assert extra_keys <= set(child.connections)


class TestExecutePlan:
    def test_full_cycle_produces_population(self, small_config):
        config = small_config
        population, species_set = build_state(config, lambda k: float(k))
        counter = iter(range(100, 200))
        plan = plan_generation(
            config, species_set, 0, random.Random(0), counter.__next__
        )
        tracker = InnovationTracker(next_node_id=config.num_outputs)
        next_population, stats = execute_plan(
            plan,
            population,
            config,
            lambda spec: random.Random(spec.child_key),
            tracker,
        )
        assert len(next_population) == config.pop_size
        assert stats.children_formed == len(plan.children)
        assert stats.genes_processed > 0

    def test_elites_carried_unchanged(self, small_config):
        config = small_config
        population, species_set = build_state(config, lambda k: float(k))
        counter = iter(range(100, 200))
        plan = plan_generation(
            config, species_set, 0, random.Random(0), counter.__next__
        )
        tracker = InnovationTracker(next_node_id=config.num_outputs)
        next_population, _stats = execute_plan(
            plan,
            population,
            config,
            lambda spec: random.Random(spec.child_key),
            tracker,
        )
        for elite_key in plan.elites:
            assert next_population[elite_key] is population[elite_key]
