"""Tests for ASCII report rendering."""

from repro.analysis.figures import (
    BlockCosts,
    ClanAccuracyPoint,
    PlatformPoint,
)
from repro.analysis.report import (
    render_block_costs,
    render_clan_accuracy,
    render_comm_breakdown,
    render_extrapolation,
    render_platforms,
    render_scaling_series,
    render_share,
)
from repro.cluster.analytic import TimingBreakdown
from repro.core.extrapolation import ExtrapolationStudy, ScalingFit


class TestRenderers:
    def test_block_costs(self):
        text = render_block_costs(
            "CartPole-v0",
            [BlockCosts(0, 1000, 100, 10), BlockCosts(1, 2000, 200, 20)],
        )
        assert "[Fig 3]" in text
        assert "CartPole-v0" in text
        assert "2.00K" in text

    def test_comm_breakdown(self):
        text = render_comm_breakdown(
            "Atari Games",
            {
                "CLAN_DCS": {"Sending Genomes": 100.0, "Sending Fitness": 5.0},
                "CLAN_DDA": {"Sending Genomes": 10.0, "Sending Fitness": 5.0},
            },
        )
        assert "[Fig 4]" in text
        assert "CLAN_DCS" in text
        assert "total" in text

    def test_scaling_series(self):
        text = render_scaling_series(
            "Fig 5",
            "LunarLander-v2",
            {1: TimingBreakdown(10, 1, 0), 4: TimingBreakdown(2.5, 1, 0.5)},
        )
        assert "nodes" in text
        assert "10.00s" in text

    def test_clan_accuracy(self):
        text = render_clan_accuracy(
            [ClanAccuracyPoint(1, 8.0, 3, 3),
             ClanAccuracyPoint(4, 12.5, 3, 3)],
            "LunarLander-v2",
        )
        assert "[Fig 7b]" in text
        assert "12.5" in text

    def test_share(self):
        text = render_share(
            "Airraid-ram-v0",
            {
                "CLAN_DCS": {
                    "inference": 0.32,
                    "evolution": 0.32,
                    "communication": 0.36,
                }
            },
        )
        assert "36%" in text

    def test_extrapolation(self):
        study = ExtrapolationStudy(
            serial_time_s=10.0,
            fits={
                "CLAN_DCS": ScalingFit(20, 5, 0.01, 0.0),
                "CLAN_DDA": ScalingFit(25, 1, 0.005, 0.0),
            },
            grid=(1, 10, 100),
        )
        text = render_extrapolation("Fig 9a", study)
        assert "serial baseline" in text
        assert "crossover" in text
        assert "stagnation" in text

    def test_platforms(self):
        text = render_platforms(
            "Atari Games",
            [
                PlatformPoint("HPC CPU", 1500.0, 100.0),
                PlatformPoint("6 pi", 240.0, 120.0),
            ],
        )
        assert "$1500" in text
        assert "perf per dollar" in text
