"""Integration: NEAT actually learns the workloads (the paper's premise)."""

import pytest

from repro.core.protocols import CLAN_DDA, SerialNEAT
from repro.neat.config import NEATConfig


class TestCartPoleConvergence:
    def test_serial_neat_solves_cartpole(self):
        engine = SerialNEAT(
            "CartPole-v0",
            config=NEATConfig.for_env("CartPole-v0", pop_size=80),
            seed=1,
        )
        result = engine.run(max_generations=30)
        assert result.converged, "NEAT failed to balance CartPole"
        assert engine.best_fitness >= 195.0

    def test_solution_replays_deterministically(self):
        from repro.envs.base import rollout
        from repro.envs.registry import make
        from repro.neat.network import FeedForwardNetwork

        config = NEATConfig.for_env("CartPole-v0", pop_size=80)
        engine = SerialNEAT("CartPole-v0", config=config, seed=1)
        engine.run(max_generations=30)
        network = FeedForwardNetwork.create(engine.best_genome, config)
        env = make("CartPole-v0")
        result = rollout(env, network.policy, seed=777)
        assert result.total_reward >= 100.0

    def test_distributed_clans_also_solve(self):
        engine = CLAN_DDA(
            "CartPole-v0",
            n_agents=4,
            config=NEATConfig.for_env("CartPole-v0", pop_size=80),
            seed=1,
        )
        result = engine.run(max_generations=30)
        assert result.converged


class TestFitnessProgress:
    @pytest.mark.parametrize(
        "env_id", ["MountainCar-v0", "Airraid-ram-v0"]
    )
    def test_best_fitness_improves(self, env_id):
        engine = SerialNEAT(
            env_id,
            config=NEATConfig.for_env(env_id, pop_size=40),
            seed=3,
        )
        result = engine.run(max_generations=8, fitness_threshold=float("inf"))
        first = result.records[0].best_fitness
        best_overall = max(r.best_fitness for r in result.records)
        assert best_overall >= first

    def test_lunarlander_fitness_above_random(self):
        import random

        from repro.envs.base import rollout
        from repro.envs.registry import make

        env = make("LunarLander-v2")
        rng = random.Random(0)
        random_scores = [
            rollout(
                env, lambda obs: rng.randrange(4), seed=seed
            ).total_reward
            for seed in range(5)
        ]
        random_mean = sum(random_scores) / len(random_scores)

        engine = SerialNEAT(
            "LunarLander-v2",
            config=NEATConfig.for_env("LunarLander-v2", pop_size=60),
            seed=2,
        )
        result = engine.run(
            max_generations=10, fitness_threshold=float("inf")
        )
        assert max(r.best_fitness for r in result.records) > random_mean


class TestGenomeGrowth:
    def test_structures_grow_over_generations(self):
        engine = SerialNEAT(
            "CartPole-v0",
            config=NEATConfig.for_env("CartPole-v0", pop_size=40),
            seed=5,
        )
        engine.run(max_generations=12, fitness_threshold=float("inf"))
        history = engine.population.history
        early = history[0].mean_genome_genes
        late = history[-1].mean_genome_genes
        # deletion mutations allow small dips, but the population must not
        # collapse, and the structural frontier must expand
        assert late > 0.7 * early
        assert history[-1].max_genome_genes >= history[0].max_genome_genes
