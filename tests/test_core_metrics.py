"""Tests for generation records and run summaries."""

from repro.core.messages import CENTER, Message, MessageType
from repro.core.metrics import (
    AgentLoad,
    GenerationRecord,
    RunResult,
    ServiceStats,
    percentile,
)


def record_with_messages():
    record = GenerationRecord(
        generation=0,
        protocol="CLAN_DDS",
        n_agents=2,
        agent_loads=[AgentLoad(), AgentLoad()],
    )
    record.messages = [
        Message(MessageType.SENDING_GENOMES, CENTER, 0, 100, 40, 5),
        Message(MessageType.SENDING_FITNESS, 0, CENTER, 10, 0, 5),
        Message(MessageType.SENDING_CHILDREN, 1, CENTER, 60, 25, 3),
    ]
    return record


class TestAgentLoad:
    def test_total_gene_ops(self):
        load = AgentLoad(
            inference_gene_ops=10,
            reproduction_gene_ops=5,
            speciation_gene_ops=3,
        )
        assert load.total_gene_ops() == 18

    def test_defaults_zero(self):
        assert AgentLoad().total_gene_ops() == 0


class TestGenerationRecord:
    def test_comm_floats(self):
        record = record_with_messages()
        assert record.comm_floats() == 170

    def test_comm_breakdown(self):
        breakdown = record_with_messages().comm_breakdown()
        assert breakdown[MessageType.SENDING_GENOMES] == 100
        assert breakdown[MessageType.SENDING_CHILDREN] == 60

    def test_total_inference(self):
        record = record_with_messages()
        record.agent_loads[0].inference_gene_ops = 7
        record.agent_loads[1].inference_gene_ops = 3
        assert record.total_inference_gene_ops() == 10

    def test_total_evolution_includes_center_and_agents(self):
        record = record_with_messages()
        record.center_speciation_gene_ops = 5
        record.agent_loads[0].reproduction_gene_ops = 2
        assert record.total_evolution_gene_ops() == 7

    def test_total_env_steps(self):
        record = record_with_messages()
        record.agent_loads[0].env_steps = 100
        record.agent_loads[1].env_steps = 50
        assert record.total_env_steps() == 150

    def test_slowest_agent(self):
        record = record_with_messages()
        record.agent_loads[0].inference_gene_ops = 10
        record.agent_loads[1].inference_gene_ops = 90
        assert record.slowest_agent() == 1

    def test_load_imbalance(self):
        record = record_with_messages()
        record.agent_loads[0].inference_gene_ops = 30
        record.agent_loads[1].inference_gene_ops = 90
        # max 90 over mean 60
        assert record.load_imbalance() == 1.5

    def test_load_imbalance_of_empty_load_is_balanced(self):
        assert record_with_messages().load_imbalance() == 1.0


class TestRunResult:
    def test_aggregates_over_records(self):
        result = RunResult(protocol="CLAN_DDS", env_id="x", n_agents=2)
        result.records = [record_with_messages(), record_with_messages()]
        assert result.generations == 2
        assert result.total_comm_floats() == 340
        assert result.mean_comm_floats_per_generation() == 170

    def test_breakdown_sums(self):
        result = RunResult(protocol="CLAN_DDS", env_id="x", n_agents=2)
        result.records = [record_with_messages()] * 3
        breakdown = result.comm_breakdown()
        assert breakdown[MessageType.SENDING_GENOMES] == 300

    def test_empty_run(self):
        result = RunResult(protocol="Serial", env_id="x", n_agents=1)
        assert result.generations == 0
        assert result.mean_comm_floats_per_generation() == 0.0


def service_stats(
    latencies,
    requests=None,
    shed=0,
    qps=100.0,
    histogram=None,
    version=1,
    swaps=0,
):
    served = len(latencies)
    return ServiceStats(
        requests=requests if requests is not None else served,
        served=served,
        shed=shed,
        qps=qps,
        p50_latency_s=percentile(latencies, 50),
        p95_latency_s=percentile(latencies, 95),
        batch_size_histogram=histogram or {},
        champion_version=version,
        swaps=swaps,
        latency_window=tuple(latencies),
    )


class TestServiceStatsMerge:
    def test_empty_parts_yield_zero_snapshot(self):
        merged = ServiceStats.merge([])
        assert merged.requests == merged.served == merged.shed == 0
        assert merged.qps == 0.0
        assert merged.p50_latency_s == merged.p95_latency_s == 0.0
        assert merged.latency_window == ()

    def test_none_parts_are_skipped(self):
        merged = ServiceStats.merge(
            [None, service_stats([0.1, 0.2]), None]
        )
        assert merged.served == 2
        assert merged.latency_window == (0.1, 0.2)

    def test_counters_and_qps_sum(self):
        merged = ServiceStats.merge(
            [
                service_stats([0.1], requests=3, shed=2, qps=50.0),
                service_stats([0.2, 0.3], shed=1, qps=75.0),
            ]
        )
        assert merged.requests == 5
        assert merged.served == 3
        assert merged.shed == 3
        assert merged.qps == 125.0

    def test_percentiles_rerank_concatenated_reservoirs(self):
        # a skewed mix: one fast replica, one slow replica. Averaging
        # the per-part p95s would give (0.005 + 1.0) / 2 = 0.5 — the
        # merged nearest-rank over the raw samples is the slow tail.
        fast = service_stats([0.001, 0.002, 0.003, 0.004, 0.005])
        slow = service_stats([0.2, 0.4, 0.6, 0.8, 1.0])
        merged = ServiceStats.merge([fast, slow])
        pooled = sorted(fast.latency_window + slow.latency_window)
        assert merged.p50_latency_s == percentile(pooled, 50)
        assert merged.p95_latency_s == percentile(pooled, 95)
        assert merged.p95_latency_s == 1.0
        # rank ceil(10 * 50 / 100) = 5 -> the 5th smallest sample
        assert merged.p50_latency_s == 0.005

    def test_skewed_sizes_weight_by_sample_count(self):
        # nearest-rank over the pooled reservoir weights each part by
        # how much it actually served — a busy slow replica dominates
        busy_slow = service_stats([0.5] * 19)
        idle_fast = service_stats([0.001])
        merged = ServiceStats.merge([busy_slow, idle_fast])
        assert merged.p50_latency_s == 0.5
        assert merged.p95_latency_s == 0.5

    def test_empty_replica_mix_keeps_other_reservoirs(self):
        merged = ServiceStats.merge(
            [service_stats([]), service_stats([0.3, 0.1])]
        )
        assert merged.served == 2
        assert merged.p95_latency_s == 0.3
        # windows concatenate in part order, not sorted
        assert merged.latency_window == (0.3, 0.1)

    def test_histograms_add_per_batch_size(self):
        merged = ServiceStats.merge(
            [
                service_stats([0.1], histogram={1: 2, 4: 1}),
                service_stats([0.1], histogram={4: 3, 8: 5}),
            ]
        )
        assert merged.batch_size_histogram == {1: 2, 4: 4, 8: 5}

    def test_version_and_swaps_take_max(self):
        merged = ServiceStats.merge(
            [
                service_stats([0.1], version=3, swaps=2),
                service_stats([0.1], version=5, swaps=4),
                service_stats([0.1], version=4, swaps=1),
            ]
        )
        assert merged.champion_version == 5
        assert merged.swaps == 4

    def test_merge_of_merges_equals_flat_merge(self):
        parts = [
            service_stats([0.1, 0.9]),
            service_stats([0.2]),
            service_stats([0.3, 0.5, 0.7]),
        ]
        flat = ServiceStats.merge(parts)
        nested = ServiceStats.merge(
            [ServiceStats.merge(parts[:2]), ServiceStats.merge(parts[2:])]
        )
        assert nested.p50_latency_s == flat.p50_latency_s
        assert nested.p95_latency_s == flat.p95_latency_s
        assert nested.served == flat.served
        assert sorted(nested.latency_window) == sorted(
            flat.latency_window
        )
