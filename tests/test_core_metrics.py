"""Tests for generation records and run summaries."""

from repro.core.messages import CENTER, Message, MessageType
from repro.core.metrics import AgentLoad, GenerationRecord, RunResult


def record_with_messages():
    record = GenerationRecord(
        generation=0,
        protocol="CLAN_DDS",
        n_agents=2,
        agent_loads=[AgentLoad(), AgentLoad()],
    )
    record.messages = [
        Message(MessageType.SENDING_GENOMES, CENTER, 0, 100, 40, 5),
        Message(MessageType.SENDING_FITNESS, 0, CENTER, 10, 0, 5),
        Message(MessageType.SENDING_CHILDREN, 1, CENTER, 60, 25, 3),
    ]
    return record


class TestAgentLoad:
    def test_total_gene_ops(self):
        load = AgentLoad(
            inference_gene_ops=10,
            reproduction_gene_ops=5,
            speciation_gene_ops=3,
        )
        assert load.total_gene_ops() == 18

    def test_defaults_zero(self):
        assert AgentLoad().total_gene_ops() == 0


class TestGenerationRecord:
    def test_comm_floats(self):
        record = record_with_messages()
        assert record.comm_floats() == 170

    def test_comm_breakdown(self):
        breakdown = record_with_messages().comm_breakdown()
        assert breakdown[MessageType.SENDING_GENOMES] == 100
        assert breakdown[MessageType.SENDING_CHILDREN] == 60

    def test_total_inference(self):
        record = record_with_messages()
        record.agent_loads[0].inference_gene_ops = 7
        record.agent_loads[1].inference_gene_ops = 3
        assert record.total_inference_gene_ops() == 10

    def test_total_evolution_includes_center_and_agents(self):
        record = record_with_messages()
        record.center_speciation_gene_ops = 5
        record.agent_loads[0].reproduction_gene_ops = 2
        assert record.total_evolution_gene_ops() == 7

    def test_total_env_steps(self):
        record = record_with_messages()
        record.agent_loads[0].env_steps = 100
        record.agent_loads[1].env_steps = 50
        assert record.total_env_steps() == 150

    def test_slowest_agent(self):
        record = record_with_messages()
        record.agent_loads[0].inference_gene_ops = 10
        record.agent_loads[1].inference_gene_ops = 90
        assert record.slowest_agent() == 1

    def test_load_imbalance(self):
        record = record_with_messages()
        record.agent_loads[0].inference_gene_ops = 30
        record.agent_loads[1].inference_gene_ops = 90
        # max 90 over mean 60
        assert record.load_imbalance() == 1.5

    def test_load_imbalance_of_empty_load_is_balanced(self):
        assert record_with_messages().load_imbalance() == 1.0


class TestRunResult:
    def test_aggregates_over_records(self):
        result = RunResult(protocol="CLAN_DDS", env_id="x", n_agents=2)
        result.records = [record_with_messages(), record_with_messages()]
        assert result.generations == 2
        assert result.total_comm_floats() == 340
        assert result.mean_comm_floats_per_generation() == 170

    def test_breakdown_sums(self):
        result = RunResult(protocol="CLAN_DDS", env_id="x", n_agents=2)
        result.records = [record_with_messages()] * 3
        breakdown = result.comm_breakdown()
        assert breakdown[MessageType.SENDING_GENOMES] == 300

    def test_empty_run(self):
        result = RunResult(protocol="Serial", env_id="x", n_agents=1)
        assert result.generations == 0
        assert result.mean_comm_floats_per_generation() == 0.0
