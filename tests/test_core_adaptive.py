"""Tests for the Fig 1 closed adaptive loop."""

import pytest

from repro.cluster.analytic import ClusterSpec
from repro.core.adaptive import AdaptiveAgent
from repro.envs.cartpole import CartPoleEnv
from repro.neat.config import NEATConfig


def make_agent(**overrides):
    env = CartPoleEnv(seed=0)
    params = dict(
        env=env,
        cluster=ClusterSpec.of_pis(4),
        fitness_threshold=60.0,
        window=3,
        protocol="CLAN_DDA",
        config=NEATConfig.for_env("CartPole-v0", pop_size=32),
        seed=5,
        relearn_generations=25,
        relearn_target=100.0,
    )
    params.update(overrides)
    return AdaptiveAgent(**params), params["env"]


class TestDeployment:
    def test_episode_requires_expert(self):
        agent, _env = make_agent()
        with pytest.raises(RuntimeError):
            agent.run_episode()

    def test_learn_deploys_expert(self):
        agent, _env = make_agent()
        run = agent.learn()
        assert agent.expert is not None
        assert run.best_genome is agent.expert

    def test_rolling_fitness_tracks_episodes(self):
        agent, _env = make_agent()
        agent.learn()
        for episode in range(3):
            agent.run_episode(seed=episode)
        assert agent.rolling_fitness != float("inf")


class TestDriftDetection:
    def test_no_relearn_while_healthy(self):
        agent, _env = make_agent()
        agent.learn()
        for episode in range(3):
            agent.run_episode(seed=episode)
        if agent.rolling_fitness >= agent.fitness_threshold:
            assert not agent.needs_relearning()

    def test_needs_window_before_deciding(self):
        agent, _env = make_agent(window=5)
        agent.learn()
        agent.run_episode(seed=0)
        assert not agent.needs_relearning()  # only 1 of 5 episodes seen

    def test_environment_drift_triggers_relearn(self):
        agent, env = make_agent()
        outcome_before = agent.learn()
        assert outcome_before is not None
        # drift: make gravity crushing so the old expert fails
        env.GRAVITY = 90.0
        env.POLE_HALF_LENGTH = 0.05
        result = agent.live(episodes=6, episode_seed_base=100)
        assert result.relearn_events >= 1

    def test_live_learns_initial_expert(self):
        agent, _env = make_agent()
        result = agent.live(episodes=2)
        assert agent.expert is not None
        assert len(result.learning_runs) >= 1
        assert result.episodes == 2


class TestDriftRecovery:
    def test_relearning_happens_in_drifted_environment(self):
        # invert the actuators: the old expert collapses to ~9 points;
        # relearning must evolve against the *inverted* dynamics and
        # restore performance (the paper's Fig 1 story end-to-end)
        agent, env = make_agent(fitness_threshold=50.0, relearn_target=150.0)
        agent.learn()
        env.FORCE_MAG = -env.FORCE_MAG
        collapsed = [agent.run_episode(seed=s) for s in range(3)]
        assert max(collapsed) < 50.0
        assert agent.needs_relearning()
        agent.learn()
        recovered = [agent.run_episode(seed=s) for s in range(100, 103)]
        assert max(recovered) > max(collapsed)
        assert sum(recovered) / 3 > 50.0


class TestValidation:
    def test_window_must_be_positive(self):
        env = CartPoleEnv(seed=0)
        with pytest.raises(ValueError):
            AdaptiveAgent(
                env,
                ClusterSpec.of_pis(2),
                fitness_threshold=10.0,
                window=0,
            )
