"""Tests for the event-driven cluster simulator."""

import pytest

from repro.cluster.analytic import ClusterSpec, time_generation
from repro.cluster.profiles import pi_env_step_seconds
from repro.cluster.simulator import GenerationSimulator
from repro.core.protocols import CLAN_DCS, CLAN_DDA, CLAN_DDS, SerialNEAT
from repro.neat.config import NEATConfig


@pytest.fixture(scope="module")
def engines():
    """One short run per protocol, shared across tests."""
    config = NEATConfig.for_env("CartPole-v0", pop_size=30)
    out = {}
    for cls, n in ((SerialNEAT, 1), (CLAN_DCS, 3), (CLAN_DDS, 3),
                   (CLAN_DDA, 3)):
        if cls is SerialNEAT:
            engine = cls("CartPole-v0", config=config, seed=11)
        else:
            engine = cls("CartPole-v0", n_agents=n, config=config, seed=11)
        engine.run(max_generations=3, fitness_threshold=1e9)
        out[cls.name] = engine
    return out


STEP_S = pi_env_step_seconds("CartPole-v0")


class TestBarrierModeAgreement:
    @pytest.mark.parametrize(
        "protocol,n", [("Serial", 1), ("CLAN_DCS", 3), ("CLAN_DDS", 3),
                       ("CLAN_DDA", 3)]
    )
    def test_matches_analytic_model(self, engines, protocol, n):
        spec = ClusterSpec.of_pis(n)
        simulator = GenerationSimulator(spec, STEP_S, mode="barrier")
        for record in engines[protocol].records:
            analytic = time_generation(record, spec, STEP_S).total_s
            simulated = simulator.simulate(record).total_s
            assert simulated == pytest.approx(analytic, rel=1e-3)

    def test_total_time_sums_generations(self, engines):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S)
        records = engines["CLAN_DCS"].records
        total = simulator.total_time(records)
        assert total == pytest.approx(
            sum(simulator.simulate(r).total_s for r in records)
        )


class TestPipelinedMode:
    def test_never_slower_than_barrier(self, engines):
        spec = ClusterSpec.of_pis(3)
        barrier = GenerationSimulator(spec, STEP_S, mode="barrier")
        pipelined = GenerationSimulator(spec, STEP_S, mode="pipelined")
        for record in engines["CLAN_DCS"].records:
            assert (
                pipelined.simulate(record).total_s
                <= barrier.simulate(record).total_s + 1e-9
            )

    def test_helps_dcs_genome_distribution(self, engines):
        # DCS ships genomes before inference; overlap must buy time
        spec = ClusterSpec.of_pis(3)
        barrier = GenerationSimulator(spec, STEP_S, mode="barrier")
        pipelined = GenerationSimulator(spec, STEP_S, mode="pipelined")
        record = engines["CLAN_DCS"].records[0]
        assert (
            pipelined.simulate(record).total_s
            < barrier.simulate(record).total_s
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            GenerationSimulator(ClusterSpec.of_pis(1), STEP_S, mode="warp")


class TestSimulationDetail:
    def test_phase_ends_monotone(self, engines):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S)
        sim = simulator.simulate(engines["CLAN_DDS"].records[0])
        times = list(sim.phase_end_s.values())
        assert times == sorted(times)

    def test_radio_busy_only_with_messages(self, engines):
        spec = ClusterSpec.of_pis(1)
        simulator = GenerationSimulator(spec, STEP_S)
        serial = simulator.simulate(engines["Serial"].records[0])
        assert serial.radio_busy_s == 0.0
        dcs = GenerationSimulator(ClusterSpec.of_pis(3), STEP_S).simulate(
            engines["CLAN_DCS"].records[0]
        )
        assert dcs.radio_busy_s > 0.0

    def test_agent_busy_reflects_loads(self, engines):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S)
        record = engines["CLAN_DCS"].records[0]
        sim = simulator.simulate(record)
        for agent, load in enumerate(record.agent_loads):
            if load.inference_gene_ops > 0:
                assert sim.agent_busy_s[agent] > 0.0
