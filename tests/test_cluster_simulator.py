"""Tests for the event-driven cluster simulator."""

import dataclasses

import pytest

from repro.cluster.analytic import ClusterSpec, time_generation
from repro.cluster.profiles import pi_env_step_seconds
from repro.cluster.simulator import GenerationSimulator
from repro.core.protocols import CLAN_DCS, CLAN_DDA, CLAN_DDS, SerialNEAT
from repro.neat.config import NEATConfig


@pytest.fixture(scope="module")
def engines():
    """One short run per protocol, shared across tests."""
    config = NEATConfig.for_env("CartPole-v0", pop_size=30)
    out = {}
    for cls, n in ((SerialNEAT, 1), (CLAN_DCS, 3), (CLAN_DDS, 3),
                   (CLAN_DDA, 3)):
        if cls is SerialNEAT:
            engine = cls("CartPole-v0", config=config, seed=11)
        else:
            engine = cls("CartPole-v0", n_agents=n, config=config, seed=11)
        engine.run(max_generations=3, fitness_threshold=1e9)
        out[cls.name] = engine
    return out


@pytest.fixture(scope="module")
def resync_engine():
    """A CLAN_DDA run whose generation 2 carries global-resync traffic."""
    config = NEATConfig.for_env("CartPole-v0", pop_size=30)
    engine = CLAN_DDA(
        "CartPole-v0", n_agents=3, config=config, seed=11, resync_period=2
    )
    engine.run(max_generations=3, fitness_threshold=1e9)
    return engine


STEP_S = pi_env_step_seconds("CartPole-v0")


class TestBarrierModeAgreement:
    @pytest.mark.parametrize(
        "protocol,n", [("Serial", 1), ("CLAN_DCS", 3), ("CLAN_DDS", 3),
                       ("CLAN_DDA", 3)]
    )
    def test_matches_analytic_model(self, engines, protocol, n):
        spec = ClusterSpec.of_pis(n)
        simulator = GenerationSimulator(spec, STEP_S, mode="barrier")
        for record in engines[protocol].records:
            analytic = time_generation(record, spec, STEP_S).total_s
            simulated = simulator.simulate(record).total_s
            assert simulated == pytest.approx(analytic, rel=1e-3)

    def test_total_time_sums_generations(self, engines):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S)
        records = engines["CLAN_DCS"].records
        total = simulator.total_time(records)
        assert total == pytest.approx(
            sum(simulator.simulate(r).total_s for r in records)
        )


class TestPipelinedMode:
    def test_never_slower_than_barrier(self, engines):
        spec = ClusterSpec.of_pis(3)
        barrier = GenerationSimulator(spec, STEP_S, mode="barrier")
        pipelined = GenerationSimulator(spec, STEP_S, mode="pipelined")
        for record in engines["CLAN_DCS"].records:
            assert (
                pipelined.simulate(record).total_s
                <= barrier.simulate(record).total_s + 1e-9
            )

    def test_helps_dcs_genome_distribution(self, engines):
        # DCS ships genomes before inference; overlap must buy time
        spec = ClusterSpec.of_pis(3)
        barrier = GenerationSimulator(spec, STEP_S, mode="barrier")
        pipelined = GenerationSimulator(spec, STEP_S, mode="pipelined")
        record = engines["CLAN_DCS"].records[0]
        assert (
            pipelined.simulate(record).total_s
            < barrier.simulate(record).total_s
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            GenerationSimulator(ClusterSpec.of_pis(1), STEP_S, mode="warp")


class TestResyncPhase:
    """Regression: resync traffic must not leak into pre-inference phases.

    ``_global_resync`` logs SENDING_CHILDREN / SENDING_GENOMES at the
    *end* of a generation; before the phase tag those messages landed in
    the ``children_up`` / ``genomes_down`` buckets, and pipelined mode
    wrongly gated inference start on "genome arrivals" from traffic that
    happens after inference.
    """

    @staticmethod
    def _resync_record(resync_engine):
        record = resync_engine.records[2]
        assert any(m.phase == "resync" for m in record.messages)
        return record

    @staticmethod
    def _without_resync(record):
        return dataclasses.replace(
            record,
            messages=[m for m in record.messages if m.phase != "resync"],
        )

    def test_pipelined_inference_not_gated_on_resync(self, resync_engine):
        # with the bug, the redistribute shipments count as genome
        # arrivals and push the simulated inference start (and end) out
        spec = ClusterSpec.of_pis(3)
        pipelined = GenerationSimulator(spec, STEP_S, mode="pipelined")
        record = self._resync_record(resync_engine)
        with_resync = pipelined.simulate(record)
        without = pipelined.simulate(self._without_resync(record))
        assert with_resync.phase_end_s["inference"] == pytest.approx(
            without.phase_end_s["inference"]
        )

    def test_resync_phase_runs_last(self, resync_engine):
        spec = ClusterSpec.of_pis(3)
        sim = GenerationSimulator(spec, STEP_S).simulate(
            self._resync_record(resync_engine)
        )
        assert "resync" in sim.phase_end_s
        assert sim.phase_end_s["resync"] == max(sim.phase_end_s.values())

    def test_pipelined_resync_cost_is_additive(self, resync_engine):
        # the resync only appends radio time after the compute phases, so
        # pipelined totals differ by exactly the resync transfer cost
        spec = ClusterSpec.of_pis(3)
        pipelined = GenerationSimulator(spec, STEP_S, mode="pipelined")
        record = self._resync_record(resync_engine)
        with_resync = pipelined.simulate(record).total_s
        without = pipelined.simulate(self._without_resync(record)).total_s
        resync_cost = sum(
            pipelined._send_cost(m)
            for m in record.messages
            if m.phase == "resync"
        ) + pipelined._sync_cost()
        assert with_resync == pytest.approx(without + resync_cost)

    def test_barrier_still_matches_analytic_with_resync(self, resync_engine):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S, mode="barrier")
        for record in resync_engine.records:
            analytic = time_generation(record, spec, STEP_S).total_s
            assert simulator.simulate(record).total_s == pytest.approx(
                analytic, rel=1e-3
            )


class TestAsyncMode:
    def test_requires_dda_shaped_records(self, engines):
        simulator = GenerationSimulator(
            ClusterSpec.of_pis(3), STEP_S, mode="async"
        )
        for protocol in ("CLAN_DCS", "CLAN_DDS"):
            with pytest.raises(ValueError):
                simulator.simulate(engines[protocol].records[0])

    def test_never_slower_than_barrier(self, engines):
        spec = ClusterSpec.of_pis(3)
        barrier = GenerationSimulator(spec, STEP_S, mode="barrier")
        records = engines["CLAN_DDA"].records
        asynchronous = GenerationSimulator(spec, STEP_S, mode="async")
        assert (
            asynchronous.total_time(records)
            <= barrier.total_time(records) + 1e-9
        )

    def test_beats_barrier_on_heterogeneous_straggler_spec(self, engines):
        records = engines["CLAN_DDA"].records
        het = ClusterSpec.of_devices(
            ["jetson_nano", "raspberry_pi", "pi_zero"]
        )
        barrier = GenerationSimulator(het, STEP_S, mode="barrier")
        asynchronous = GenerationSimulator(het, STEP_S, mode="async")
        assert asynchronous.total_time(records) < barrier.total_time(
            records
        )

    def test_per_clan_finish_times_and_straggler_gap(self, engines):
        het = ClusterSpec.of_devices(
            ["jetson_nano", "raspberry_pi", "pi_zero"]
        )
        simulator = GenerationSimulator(het, STEP_S, mode="async")
        sim = simulator.simulate(engines["CLAN_DDA"].records[1])
        assert len(sim.clan_finish_s) == 3
        assert sim.straggler_gap_s == pytest.approx(
            max(sim.clan_finish_s) - min(sim.clan_finish_s)
        )
        assert sim.straggler_gap_s > 0
        assert 0.0 <= sim.radio_idle_share <= 1.0

    def test_clocks_carry_across_generations(self, engines):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S, mode="async")
        sims = simulator.simulate_run(engines["CLAN_DDA"].records)
        # absolute clocks: each generation ends after the previous one
        totals = [s.total_s for s in sims]
        assert totals == sorted(totals)
        assert simulator.total_time(engines["CLAN_DDA"].records) == (
            totals[-1]
        )

    def test_run_carries_radio_contention_across_generations(self, engines):
        # regression: simulate_run shares one radio, so a fast clan's
        # next-generation report queues behind a straggler's previous one
        # still on the air; chaining fresh radios (clan clocks only)
        # underestimates on a saturating link
        from repro.cluster.device import get_device
        from repro.cluster.netmodel import WiFiModel

        spec = ClusterSpec(
            n_agents=3,
            agent_device=get_device("raspberry_pi"),
            link=WiFiModel().scaled(50.0),
        )
        simulator = GenerationSimulator(spec, STEP_S, mode="async")
        records = engines["CLAN_DDA"].records
        shared = simulator.simulate_run(records)
        fresh_radio = []
        start = None
        for record in records:
            sim = simulator.simulate(record, clan_start=start)
            fresh_radio.append(sim)
            start = list(sim.clan_ready_s)
        assert shared[-1].total_s > fresh_radio[-1].total_s

    def test_clan_ready_precedes_next_start(self, engines):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S, mode="async")
        records = engines["CLAN_DDA"].records
        first = simulator.simulate(records[0])
        second = simulator.simulate(
            records[1], clan_start=first.clan_ready_s
        )
        assert min(second.clan_finish_s) >= min(first.clan_ready_s)

    def test_resync_is_a_global_barrier(self, resync_engine):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S, mode="async")
        sims = simulator.simulate_run(resync_engine.records)
        resynced = sims[2]
        assert "resync" in resynced.phase_end_s
        # every clan restarts at the redistribute's completion
        assert all(
            ready == resynced.phase_end_s["resync"]
            for ready in resynced.clan_ready_s
        )

    def test_clan_start_rejected_outside_async(self, engines):
        spec = ClusterSpec.of_pis(3)
        barrier = GenerationSimulator(spec, STEP_S, mode="barrier")
        with pytest.raises(ValueError):
            barrier.simulate(
                engines["CLAN_DDA"].records[0], clan_start=[0.0] * 3
            )


class TestSimulationDetail:
    def test_phase_ends_monotone(self, engines):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S)
        sim = simulator.simulate(engines["CLAN_DDS"].records[0])
        times = list(sim.phase_end_s.values())
        assert times == sorted(times)

    def test_radio_busy_only_with_messages(self, engines):
        spec = ClusterSpec.of_pis(1)
        simulator = GenerationSimulator(spec, STEP_S)
        serial = simulator.simulate(engines["Serial"].records[0])
        assert serial.radio_busy_s == 0.0
        dcs = GenerationSimulator(ClusterSpec.of_pis(3), STEP_S).simulate(
            engines["CLAN_DCS"].records[0]
        )
        assert dcs.radio_busy_s > 0.0

    def test_agent_busy_reflects_loads(self, engines):
        spec = ClusterSpec.of_pis(3)
        simulator = GenerationSimulator(spec, STEP_S)
        record = engines["CLAN_DCS"].records[0]
        sim = simulator.simulate(record)
        for agent, load in enumerate(record.agent_loads):
            if load.inference_gene_ops > 0:
                assert sim.agent_busy_s[agent] > 0.0
