"""Tests for the cross-generation compiled-plan cache.

Contract: a cache hit instantiates a plan *bit-identical* to a fresh
``compile_batched`` — same layer arrays, same outputs — while skipping
the pruning/topological-sort/layout work. Signatures are exact
structural keys, so any topology change (gene added/removed, enabled
flag flipped, activation changed) is a miss.
"""

import random

import numpy as np
import pytest

from repro.neat.config import NEATConfig
from repro.neat.evaluation import GenomeEvaluator
from repro.neat.network import (
    BatchedFeedForwardNetwork,
    PlanCache,
    compile_batched,
    structural_signature,
)
from repro.neat.population import Population
from repro.serve.registry import ChampionRegistry

from tests.conftest import make_evolved_genome


def assert_plans_identical(left, right):
    assert left.input_keys == right.input_keys
    assert left.output_keys == right.output_keys
    assert left.total_slots == right.total_slots
    assert np.array_equal(left.output_slots, right.output_slots)
    assert left.n_layers == right.n_layers
    for layer_l, layer_r in zip(left.layers, right.layers):
        assert np.array_equal(layer_l.node_slots, layer_r.node_slots)
        assert np.array_equal(layer_l.weights, layer_r.weights)
        assert np.array_equal(layer_l.bias, layer_r.bias)
        assert np.array_equal(layer_l.response, layer_r.response)
        assert len(layer_l.act_groups) == len(layer_r.act_groups)
        for (name_l, rows_l), (name_r, rows_r) in zip(
            layer_l.act_groups, layer_r.act_groups
        ):
            assert name_l == name_r
            assert np.array_equal(rows_l, rows_r)
        assert len(layer_l.generic_nodes) == len(layer_r.generic_nodes)
        for (row_l, agg_l, src_l, w_l), (row_r, agg_r, src_r, w_r) in zip(
            layer_l.generic_nodes, layer_r.generic_nodes
        ):
            assert (row_l, agg_l) == (row_r, agg_r)
            assert np.array_equal(src_l, src_r)
            assert np.array_equal(w_l, w_r)


def weight_only_child(genome, new_key, seed=0):
    child = genome.copy(new_key=new_key)
    rng = random.Random(seed)
    for key in sorted(child.connections):
        child.connections[key].weight += rng.uniform(-0.5, 0.5)
    for key in sorted(child.nodes):
        child.nodes[key].bias += rng.uniform(-0.5, 0.5)
    return child


class TestStructuralSignature:
    def test_weight_only_child_shares_signature(self, small_config):
        genome = make_evolved_genome(small_config, seed=2, mutations=30)
        child = weight_only_child(genome, 99)
        assert structural_signature(
            genome, small_config
        ) == structural_signature(child, small_config)

    def test_enabled_flip_changes_signature(self, small_config):
        genome = make_evolved_genome(small_config, seed=2, mutations=30)
        child = genome.copy(new_key=99)
        key = next(iter(sorted(child.connections)))
        child.connections[key].enabled = (
            not child.connections[key].enabled
        )
        assert structural_signature(
            genome, small_config
        ) != structural_signature(child, small_config)

    def test_structural_mutation_changes_signature(self, small_config):
        from repro.neat.innovation import InnovationTracker

        genome = make_evolved_genome(small_config, seed=2, mutations=30)
        child = genome.copy(new_key=99)
        tracker = InnovationTracker(
            next_node_id=genome.max_node_id() + 1
        )
        assert child.mutate_add_node(
            small_config, random.Random(0), tracker
        )
        assert structural_signature(
            genome, small_config
        ) != structural_signature(child, small_config)


class TestPlanCache:
    def test_hit_is_bit_identical_to_fresh_compile(self, small_config):
        cache = PlanCache()
        parent = make_evolved_genome(small_config, seed=5, mutations=40)
        compile_batched(parent, small_config, cache=cache)
        child = weight_only_child(parent, 123, seed=3)
        cached_plan = compile_batched(child, small_config, cache=cache)
        fresh_plan = compile_batched(child, small_config)
        assert cache.hits == 1 and cache.misses == 1
        assert_plans_identical(cached_plan, fresh_plan)
        observations = np.random.default_rng(0).normal(size=(32, 3))
        cached_out = BatchedFeedForwardNetwork(cached_plan).activate_batch(
            observations
        )
        fresh_out = BatchedFeedForwardNetwork(fresh_plan).activate_batch(
            observations
        )
        assert np.array_equal(cached_out, fresh_out)

    def test_instantiated_plan_owns_its_value_arrays(self, small_config):
        cache = PlanCache()
        parent = make_evolved_genome(small_config, seed=5, mutations=40)
        parent_plan = compile_batched(parent, small_config, cache=cache)
        child = weight_only_child(parent, 123, seed=3)
        child_plan = compile_batched(child, small_config, cache=cache)
        # refilling the child's plan must not corrupt the cached parent
        before = [layer.weights.copy() for layer in parent_plan.layers]
        for layer in child_plan.layers:
            layer.weights += 1.0
        for layer, expected in zip(parent_plan.layers, before):
            assert np.array_equal(layer.weights, expected)

    def test_structural_change_misses(self, small_config):
        from repro.neat.innovation import InnovationTracker

        cache = PlanCache()
        parent = make_evolved_genome(small_config, seed=5, mutations=40)
        compile_batched(parent, small_config, cache=cache)
        child = parent.copy(new_key=7)
        tracker = InnovationTracker(
            next_node_id=parent.max_node_id() + 1
        )
        assert child.mutate_add_node(
            small_config, random.Random(1), tracker
        )
        cached_plan = compile_batched(child, small_config, cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        assert_plans_identical(
            cached_plan, compile_batched(child, small_config)
        )

    def test_lru_eviction(self, small_config):
        cache = PlanCache(maxsize=2)
        genomes = [
            make_evolved_genome(small_config, seed=s, mutations=25, key=s)
            for s in range(3)
        ]
        for genome in genomes:
            compile_batched(genome, small_config, cache=cache)
        assert len(cache) == 2
        # genome 0 was evicted; recompiling it misses again
        compile_batched(genomes[0], small_config, cache=cache)
        assert cache.misses == 4
        compile_batched(genomes[0], small_config, cache=cache)
        assert cache.hits == 1
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_hit_rate(self, small_config):
        cache = PlanCache()
        assert cache.hit_rate == 0.0
        genome = make_evolved_genome(small_config, seed=5, mutations=10)
        compile_batched(genome, small_config, cache=cache)
        compile_batched(genome, small_config, cache=cache)
        assert cache.hit_rate == pytest.approx(0.5)


class TestEvaluatorWiring:
    def test_batched_evaluator_owns_a_cache(self):
        assert GenomeEvaluator("CartPole-v0").plan_cache is None
        evaluator = GenomeEvaluator("CartPole-v0", backend="batched")
        assert isinstance(evaluator.plan_cache, PlanCache)

    def test_cached_results_identical_across_generations(self):
        """A weight-only evolution run hits the cache; results match a
        cache-less evaluator exactly."""
        config = NEATConfig.for_env(
            "CartPole-v0",
            pop_size=16,
            # weight-mutation-dominated: no topology changes at all
            node_add_prob=0.0, node_delete_prob=0.0,
            conn_add_prob=0.0, conn_delete_prob=0.0,
            enabled_mutate_rate=0.0,
        )
        cached = GenomeEvaluator("CartPole-v0", seed=2, backend="batched")
        population = Population(config, seed=2)

        def evaluate(genomes, generation):
            results = cached.evaluate_many(genomes, config, generation)
            reference = GenomeEvaluator(
                "CartPole-v0", seed=2, backend="batched"
            )
            reference.plan_cache = None
            assert results == reference.evaluate_many(
                genomes, config, generation
            )
            return results

        population.run(evaluate, max_generations=3)
        assert cached.plan_cache.hits > 0
        assert cached.plan_cache.hit_rate >= 0.8


class TestRegistryWiring:
    def test_publish_reuses_plan_for_weight_refinements(self):
        config = NEATConfig.for_env("CartPole-v0", pop_size=4)
        registry = ChampionRegistry(config)
        champion = make_evolved_genome(config, seed=1, mutations=20)
        registry.publish(champion, source="bootstrap")
        assert registry.plan_cache.misses == 1
        refined = weight_only_child(champion, 50)
        record = registry.publish(refined, source="clan0")
        assert registry.plan_cache.hits == 1
        fresh = compile_batched(refined, config)
        assert_plans_identical(record.plan, fresh)
