"""Tests for the Table I / Table IV reconstructions."""

import pytest

from repro.analysis.tables import (
    DQN_PARAMETERS,
    dqn_training_bytes,
    table1_memory,
    table4_platforms,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def comparison(self):
        return table1_memory(
            env_id="Airraid-ram-v0", pop_size=30, generations=2, seed=0
        )

    def test_dqn_weights_around_7mb(self, comparison):
        # paper: "close to 7 MB" for 1.7M fp32 parameters
        assert comparison.dqn_weights_mb == pytest.approx(6.8, rel=0.05)

    def test_dqn_batch_training_exceeds_weights(self, comparison):
        assert comparison.dqn_batch_training_mb > comparison.dqn_weights_mb

    def test_neat_population_under_one_mb_per_genome_scale(self, comparison):
        # GeneSys: NEAT memory < 1 MB even for Atari; our population of 30
        # large-workload genomes must stay well under the DQN footprint
        assert comparison.neat_population_mb < comparison.dqn_weights_mb

    def test_reduction_factor_large(self, comparison):
        assert comparison.reduction_factor > 1.0

    def test_dqn_training_bytes_formula(self):
        no_batch = dqn_training_bytes(batch_size=0)
        assert no_batch == DQN_PARAMETERS * 4


class TestTable4:
    def test_all_platforms_listed(self):
        rows = table4_platforms()
        names = {row["platform"] for row in rows}
        assert {
            "raspberry_pi",
            "jetson_cpu",
            "jetson_gpu",
            "hpc_cpu",
            "hpc_gpu",
        } <= names

    def test_prices_match_table_iv(self):
        rows = {row["platform"]: row for row in table4_platforms()}
        assert rows["raspberry_pi"]["price_usd"] == 40.0
        assert rows["hpc_cpu"]["price_usd"] == 1500.0
        assert rows["jetson_cpu"]["price_usd"] == 600.0

    def test_rows_have_descriptions(self):
        assert all(row["description"] for row in table4_platforms())
