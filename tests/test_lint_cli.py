"""``repro lint`` CLI: the repo's own self-test plus flag plumbing."""

from __future__ import annotations

import json
import pathlib

import pytest

import repro
from repro.cli import main

pytestmark = pytest.mark.lock_check

PACKAGE_DIR = str(pathlib.Path(repro.__file__).parent)


def test_lint_self_clean(capsys):
    """The shipped package lints clean — the acceptance gate CI enforces."""
    assert main(["lint", PACKAGE_DIR]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_lint_reports_findings_and_exit_code(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "1 finding" in out


def test_lint_json_report(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import random\n"
        "x = random.random()\n"
        "y = random.random()  # repro-lint: disable=RPR001 -- fixture\n"
    )
    report = tmp_path / "report.json"
    assert main(["lint", str(bad), "--json", str(report)]) == 1
    document = json.loads(report.read_text())
    assert document["report"] == "repro_lint"
    assert document["results"]["finding_count"] == 1
    assert document["results"]["findings"][0]["code"] == "RPR001"
    suppressions = document["results"]["suppressions"]
    assert suppressions == [
        {
            "path": str(bad).replace("\\", "/"),
            "line": 3,
            "codes": ["RPR001"],
            "reason": "fixture",
        }
    ]


def test_lint_select_scopes_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main(["lint", str(bad), "--select", "RPR004"]) == 0
    assert main(["lint", str(bad), "--select", "RPR001"]) == 1


def test_lint_select_rejects_unknown_codes(tmp_path, capsys):
    assert main(["lint", str(tmp_path), "--select", "RPR999"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_lint_missing_path_is_usage_error(capsys):
    assert main(["lint", "does/not/exist"]) == 2
    assert "neither" in capsys.readouterr().err


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR005", "RPR101", "RPR103", "RPR900"):
        assert code in out


def test_lint_verbose_lists_suppressions(tmp_path, capsys):
    bad = tmp_path / "ok.py"
    bad.write_text(
        "import random\n"
        "x = random.random()  # repro-lint: disable=RPR001 -- fixture\n"
    )
    assert main(["lint", str(bad), "-v"]) == 0
    out = capsys.readouterr().out
    assert "suppressed findings" in out and "fixture" in out
