"""Tests for scaling-curve fitting and extrapolation (Fig 9 machinery)."""

import pytest

from repro.core.extrapolation import (
    ExtrapolationStudy,
    ScalingFit,
    fit_scaling_curve,
)


def synth_times(ns, a, b, c):
    return [a / n + b + c * n * n for n in ns]


class TestFit:
    def test_recovers_exact_coefficients(self):
        ns = [1, 2, 4, 8, 12, 15]
        fit = fit_scaling_curve(ns, synth_times(ns, 10.0, 2.0, 0.01))
        assert fit.a == pytest.approx(10.0, rel=1e-6)
        assert fit.b == pytest.approx(2.0, rel=1e-6)
        assert fit.c == pytest.approx(0.01, rel=1e-6)
        assert fit.residual < 1e-9

    def test_predict_matches_formula(self):
        fit = ScalingFit(a=10.0, b=2.0, c=0.01, residual=0.0)
        assert fit.predict(5) == pytest.approx(10 / 5 + 2 + 0.01 * 25)

    def test_negative_coefficients_clamped(self):
        # pure serial data (flat): no way to need negative a or c
        ns = [1, 2, 4, 8, 15]
        times = [5.0, 5.1, 4.9, 5.0, 5.05]
        fit = fit_scaling_curve(ns, times)
        assert fit.a >= 0.0
        assert fit.c >= 0.0

    def test_requires_three_distinct_points(self):
        with pytest.raises(ValueError):
            fit_scaling_curve([1, 1, 2], [1.0, 1.0, 2.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_scaling_curve([1, 2, 3], [1.0, 2.0])

    def test_rejects_invalid_nodes(self):
        with pytest.raises(ValueError):
            fit_scaling_curve([0, 1, 2], [1.0, 2.0, 3.0])


class TestPredictions:
    def test_stagnation_point_matches_calculus(self):
        # d/dn (a/n + c n^2) = 0 at n = (a / 2c)^(1/3)
        fit = ScalingFit(a=100.0, b=0.0, c=0.01, residual=0.0)
        expected = round((100 / (2 * 0.01)) ** (1 / 3))
        assert abs(fit.stagnation_point() - expected) <= 1

    def test_monotone_curve_stagnates_at_max(self):
        fit = ScalingFit(a=100.0, b=0.0, c=0.0, residual=0.0)
        assert fit.stagnation_point(n_max=50) == 50

    def test_crossover_detection(self):
        fit = ScalingFit(a=10.0, b=1.0, c=0.01, residual=0.0)
        serial = 5.0
        crossover = fit.crossover_with(serial)
        assert crossover is not None
        assert fit.predict(crossover) > serial
        assert fit.predict(crossover - 1) <= serial

    def test_no_crossover_below_serial(self):
        fit = ScalingFit(a=10.0, b=0.0, c=0.0, residual=0.0)
        assert fit.crossover_with(100.0, n_max=50) is None

    def test_crossover_ignores_initial_hump(self):
        # worse than serial at n=1, better in the middle, worse at scale
        fit = ScalingFit(a=50.0, b=1.0, c=0.02, residual=0.0)
        serial = 20.0
        assert fit.predict(1) > serial
        crossover = fit.crossover_with(serial)
        assert crossover is not None
        assert crossover > fit.stagnation_point()

    def test_predict_rejects_zero(self):
        with pytest.raises(ValueError):
            ScalingFit(1, 1, 1, 0).predict(0)


class TestStudy:
    def study(self):
        return ExtrapolationStudy(
            serial_time_s=10.0,
            fits={
                "CLAN_DCS": ScalingFit(20.0, 5.0, 0.01, 0.0),
                "CLAN_DDA": ScalingFit(25.0, 1.0, 0.005, 0.0),
            },
            grid=(1, 6, 12, 24, 40, 60, 100),
        )

    def test_curves_cover_grid(self):
        study = self.study()
        curves = study.curves()
        assert set(curves) == {"CLAN_DCS", "CLAN_DDA"}
        assert all(len(v) == len(study.grid) for v in curves.values())

    def test_dda_crossover_beyond_dcs(self):
        crossovers = self.study().crossovers()
        assert crossovers["CLAN_DDA"] > crossovers["CLAN_DCS"]

    def test_mean_advantage(self):
        study = self.study()
        advantage = study.mean_advantage("CLAN_DDA", "CLAN_DCS")
        assert advantage > 1.0

    def test_mean_advantage_up_to(self):
        study = self.study()
        assert study.mean_advantage(
            "CLAN_DDA", "CLAN_DCS", up_to=12
        ) != pytest.approx(
            study.mean_advantage("CLAN_DDA", "CLAN_DCS", up_to=100)
        )

    def test_mean_advantage_empty_limit(self):
        with pytest.raises(ValueError):
            self.study().mean_advantage("CLAN_DDA", "CLAN_DCS", up_to=0)
