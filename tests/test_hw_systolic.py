"""Tests for the SCALE-sim-style systolic-array model."""

import pytest

from repro.hw.systolic import SystolicArrayModel
from repro.neat.config import NEATConfig
from repro.neat.population import Population

from tests.conftest import make_evolved_genome


@pytest.fixture
def array():
    return SystolicArrayModel()  # 32x32 @ 200 MHz, the paper's assumption


class TestMatmulModel:
    def test_single_fold(self, array):
        # M,N within the array: one fold
        cycles = array.matmul_cycles(1, 10, 32)
        assert cycles == 32 + 32 + 10 - 2

    def test_folding_over_columns(self, array):
        one = array.matmul_cycles(1, 10, 32)
        two = array.matmul_cycles(1, 10, 64)
        assert two == 2 * one

    def test_folding_over_rows(self, array):
        one = array.matmul_cycles(32, 10, 32)
        two = array.matmul_cycles(64, 10, 32)
        assert two == 2 * one

    def test_partial_fold_rounds_up(self, array):
        assert array.matmul_cycles(1, 10, 33) == 2 * array.matmul_cycles(
            1, 10, 32
        )

    def test_seconds_scale_with_clock(self):
        slow = SystolicArrayModel(clock_hz=100e6)
        fast = SystolicArrayModel(clock_hz=200e6)
        assert slow.matmul_seconds(8, 8, 8) == pytest.approx(
            2 * fast.matmul_seconds(8, 8, 8)
        )

    def test_utilisation_below_one(self, array):
        assert 0 < array.utilisation(32, 100, 32) <= 1.0

    def test_utilisation_poor_for_vectors(self, array):
        # M=1 wastes 31 of 32 rows: the NE-inference regime
        assert array.utilisation(1, 100, 32) < 0.05

    def test_invalid_dims(self, array):
        with pytest.raises(ValueError):
            array.matmul_cycles(0, 1, 1)

    def test_invalid_array(self):
        with pytest.raises(ValueError):
            SystolicArrayModel(rows=0)
        with pytest.raises(ValueError):
            SystolicArrayModel(clock_hz=0)


class TestGenomeMapping:
    def test_initial_genome_single_layer(self, array):
        config = NEATConfig.for_env("CartPole-v0", pop_size=4)
        genome = next(iter(Population(config, seed=0).genomes.values()))
        layers = array.genome_layers(genome, config)
        assert len(layers) == 1
        fan_in, width = layers[0]
        assert fan_in == config.num_inputs
        assert width == config.num_outputs

    def test_evolved_genome_layers(self, array):
        config = NEATConfig(num_inputs=8, num_outputs=4)
        genome = make_evolved_genome(config, seed=5, mutations=60)
        layers = array.genome_layers(genome, config)
        assert layers
        assert all(fan_in >= 1 and width >= 1 for fan_in, width in layers)

    def test_inference_cycles_positive(self, array):
        config = NEATConfig.for_env("Airraid-ram-v0", pop_size=4)
        genome = next(iter(Population(config, seed=0).genomes.values()))
        assert array.genome_inference_cycles(genome, config) > 0

    def test_array_speedup_is_generous_upper_bound(self, array):
        config = NEATConfig.for_env("Airraid-ram-v0", pop_size=4)
        genome = next(iter(Population(config, seed=0).genomes.values()))
        assert array.speedup_vs_pi(genome, config) > 1000

    def test_system_speedup_justifies_registry_factor(self, array):
        # the systolic_32x32 device entry claims ~100x at the system level
        config = NEATConfig.for_env("Airraid-ram-v0", pop_size=4)
        genome = next(iter(Population(config, seed=0).genomes.values()))
        system = array.system_speedup_vs_pi(genome, config)
        assert 50 <= system <= 300

    def test_host_overhead_dominates_small_batches(self, array):
        config = NEATConfig.for_env("Airraid-ram-v0", pop_size=4)
        genome = next(iter(Population(config, seed=0).genomes.values()))
        assert array.system_speedup_vs_pi(
            genome, config
        ) < array.speedup_vs_pi(genome, config)

    def test_bigger_array_fewer_folds_for_wide_layers(self):
        # array size pays off for wide matmuls, not M=1 vectors
        small = SystolicArrayModel(rows=8, cols=8)
        large = SystolicArrayModel(rows=64, cols=64)
        assert large.matmul_cycles(64, 32, 128) < small.matmul_cycles(
            64, 32, 128
        )
