"""Tests for the protocol message taxonomy."""

import pytest

from repro.core.messages import (
    CENTER,
    Message,
    MessageType,
    breakdown_by_type,
    total_floats,
)


class TestMessage:
    def test_bytes_are_words_times_four(self):
        message = Message(MessageType.SENDING_FITNESS, 0, CENTER, 10)
        assert message.n_bytes == 40

    def test_downlink_detection(self):
        down = Message(MessageType.SENDING_GENOMES, CENTER, 3, 10)
        up = Message(MessageType.SENDING_FITNESS, 3, CENTER, 10)
        assert down.downlink
        assert not up.downlink

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            Message(MessageType.SENDING_FITNESS, 0, CENTER, -1)

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            Message(MessageType.SENDING_FITNESS, 0, CENTER, 1, n_units=0)

    def test_rejects_self_message(self):
        with pytest.raises(ValueError):
            Message(MessageType.SENDING_FITNESS, 2, 2, 1)

    def test_fig4_categories_complete(self):
        # the six legend entries of Fig 4
        assert {t.value for t in MessageType} == {
            "Sending Genomes",
            "Sending Fitness",
            "Sending Spawn Count",
            "Sending Parent List",
            "Sending Parent Genomes",
            "Sending Children",
        }


class TestAggregation:
    def test_total_floats(self):
        messages = [
            Message(MessageType.SENDING_GENOMES, CENTER, 0, 100),
            Message(MessageType.SENDING_FITNESS, 0, CENTER, 10),
        ]
        assert total_floats(messages) == 110

    def test_breakdown_by_type(self):
        messages = [
            Message(MessageType.SENDING_GENOMES, CENTER, 0, 100),
            Message(MessageType.SENDING_GENOMES, CENTER, 1, 50),
            Message(MessageType.SENDING_FITNESS, 0, CENTER, 10),
        ]
        breakdown = breakdown_by_type(messages)
        assert breakdown[MessageType.SENDING_GENOMES] == 150
        assert breakdown[MessageType.SENDING_FITNESS] == 10
        assert breakdown[MessageType.SENDING_CHILDREN] == 0
