"""Nested tracing spans for the evolve→deploy pipeline.

A :class:`Tracer` records :class:`SpanEvent` intervals — ``with
span("generation", gen=3): ...`` — onto named *tracks* (one per clan,
replica, or driver thread) so a whole heterogeneous run can be laid out
on a timeline.  Three properties drive the design:

* **Free when off.**  The module-level :func:`span`/:func:`instant`
  helpers check one global and return a shared no-op context manager
  when no tracer is active; instrumented hot paths pay an attribute
  test, not an allocation.  ``repro`` runs untraced by default.
* **Thread- and task-safe nesting.**  The current span stack lives in a
  :mod:`contextvars` context variable, so concurrent threads and
  asyncio tasks each see their own ancestry; the completed-event buffer
  is lock-guarded.
* **Deterministic payloads.**  Recording only reads
  :mod:`repro.obs.clock` — never an RNG stream — so enabling tracing
  leaves every evolution trajectory byte-identical to the untraced run
  (asserted by ``tests/test_obs_integration.py``).

Cross-process collection: worker clans and fleet replicas run their own
``Tracer`` (track-tagged ``"clan:3"`` / ``"replica:1"``), periodically
:meth:`~Tracer.drain` it into a list of primitive dicts, and ship the
batch over their existing control pipes; the driver merges batches with
:meth:`~Tracer.absorb`, which preserves each track's arrival order.
Exporters for the merged trace live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import contextvars
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs import clock

#: ancestry of the running spans in this thread/task: a tuple of span
#: names, innermost last.  Tuples (not lists) so forked tasks snapshot
#: the stack instead of sharing it.
_STACK: contextvars.ContextVar[tuple[str, ...]] = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)


@dataclass
class SpanEvent:
    """One completed interval (or point event) on a track.

    Plain mutable dataclass — no slots — so instances pickle cleanly
    across the 3.10–3.13 support matrix; cross-process shipping uses
    :meth:`as_dict` anyway to keep pipe payloads primitive.
    """

    #: span name, e.g. ``"generation"``, ``"speciate"``, ``"batch_flush"``
    name: str
    #: timeline the event belongs to, e.g. ``"driver"``, ``"clan:2"``
    track: str
    #: start timestamp from :func:`repro.obs.clock.perf`, seconds
    start_s: float
    #: duration in seconds (0.0 for instant events)
    dur_s: float
    #: nesting depth at entry (0 = top level in its thread/task)
    depth: int = 0
    #: name of the enclosing span, if any
    parent: str | None = None
    #: free-form annotations (``gen=3``, ``size=8``, ``seq=5``)
    args: dict[str, Any] = field(default_factory=dict)
    #: ``"span"`` for intervals, ``"instant"`` for point events
    kind: str = "span"

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "track": self.track,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "depth": self.depth,
            "parent": self.parent,
            "args": dict(self.args),
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpanEvent":
        return cls(
            name=payload["name"],
            track=payload["track"],
            start_s=payload["start_s"],
            dur_s=payload["dur_s"],
            depth=payload.get("depth", 0),
            parent=payload.get("parent"),
            args=dict(payload.get("args") or {}),
            kind=payload.get("kind", "span"),
        )


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add(self, **args: Any) -> None:
        """Accept (and drop) late annotations, mirroring :class:`_Span`."""


NULL_SPAN = _NullSpan()


class _Span:
    """A live interval; created by :meth:`Tracer.span`, closed on exit."""

    __slots__ = (
        "_tracer", "name", "track", "args",
        "_start", "_token", "_depth", "_parent",
    )

    def __init__(
        self, tracer: "Tracer", name: str, track: str, args: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self.args = args

    def add(self, **args: Any) -> None:
        """Attach annotations discovered mid-span (e.g. batch size)."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        stack = _STACK.get()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        self._token = _STACK.set(stack + (self.name,))
        self._start = clock.perf()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = clock.perf()
        _STACK.reset(self._token)
        self._tracer._record(
            SpanEvent(
                name=self.name,
                track=self.track,
                start_s=self._start,
                dur_s=end - self._start,
                depth=self._depth,
                parent=self._parent,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects span/instant events onto tracks; thread-safe.

    ``track`` names the default timeline for events recorded through
    this tracer; per-call ``track=`` overrides let one in-process tracer
    host several timelines (the logical engines tag each clan's phases
    ``clan:<id>`` this way).  ``max_events`` bounds memory on very long
    runs — past it new events are counted in :attr:`dropped` instead of
    stored, and the exporters surface the loss.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        track: str = "driver",
        max_events: int = 1_000_000,
    ) -> None:
        self.enabled = enabled
        self.track = track
        self.max_events = max_events
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._events: list[SpanEvent] = []
        # guarded-by: _lock
        self.dropped = 0

    # -- recording -----------------------------------------------------------

    def span(self, name: str, *, track: str | None = None, **args: Any):
        """Open a nested interval: ``with tracer.span("speciate"): ...``."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, track or self.track, args)

    def instant(
        self, name: str, *, track: str | None = None, **args: Any
    ) -> None:
        """Record a point event (clan death, respawn, deploy)."""
        if not self.enabled:
            return
        stack = _STACK.get()
        self._record(
            SpanEvent(
                name=name,
                track=track or self.track,
                start_s=clock.perf(),
                dur_s=0.0,
                depth=len(stack),
                parent=stack[-1] if stack else None,
                args=args,
                kind="instant",
            )
        )

    def _record(self, event: SpanEvent) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
            else:
                self._events.append(event)

    # -- collection ----------------------------------------------------------

    def events(self) -> list[SpanEvent]:
        """Snapshot of everything recorded so far (insertion order)."""
        with self._lock:
            return list(self._events)

    def drain(self) -> list[dict[str, Any]]:
        """Pop all buffered events as primitive dicts for pipe shipping."""
        with self._lock:
            batch = [event.as_dict() for event in self._events]
            self._events.clear()
        return batch

    def absorb(
        self,
        batch: Iterable[Mapping[str, Any]],
        *,
        track: str | None = None,
    ) -> int:
        """Merge a drained batch (from another process) into this trace.

        Events are appended in batch order, so as long as each producer
        drains in order — the pipes are FIFO — every per-track sequence
        is preserved in the merged trace.  ``track`` re-tags events that
        were recorded before the producer knew its identity.
        """
        absorbed = 0
        for payload in batch:
            event = SpanEvent.from_dict(payload)
            if track is not None:
                event.track = track
            self._record(event)
            absorbed += 1
        return absorbed

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0


#: the process-wide active tracer, or None (tracing off — the default)
_active: Tracer | None = None


def activate(tracer: Tracer) -> Tracer | None:
    """Install ``tracer`` as the process-wide active tracer; returns the
    previous one (restore it in ``finally`` to scope tracing)."""
    global _active
    previous = _active
    _active = tracer
    return previous


def deactivate() -> Tracer | None:
    """Turn tracing off; returns the tracer that was active."""
    return activate(None)  # type: ignore[arg-type]


def current() -> Tracer | None:
    """The active tracer, or None when tracing is off."""
    return _active


def span(name: str, *, track: str | None = None, **args: Any):
    """Module-level ``with obs.span("generation", gen=g): ...``.

    The disabled fast path is one global load and one ``is None`` /
    ``enabled`` test before returning the shared :data:`NULL_SPAN`.
    """
    tracer = _active
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return _Span(tracer, name, track or tracer.track, args)


def instant(name: str, *, track: str | None = None, **args: Any) -> None:
    """Module-level point event; no-op when tracing is off."""
    tracer = _active
    if tracer is None or not tracer.enabled:
        return
    tracer.instant(name, track=track, **args)


def current_stack() -> tuple[str, ...]:
    """Names of the spans enclosing the caller (outermost first)."""
    return _STACK.get()
