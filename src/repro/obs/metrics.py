"""A named-metric registry unifying the repo's scattered counters.

:class:`MetricsRegistry` holds counters, gauges, and histograms keyed by
``(name, labels)`` and renders them in Prometheus text exposition
format.  It does **not** replace the existing measurement dataclasses —
:class:`~repro.core.metrics.ServiceStats`,
:class:`~repro.core.metrics.ChurnStats`, and
:class:`~repro.core.metrics.RunResult` stay the sources of truth their
subsystems fill — it *subsumes* them: the ``ingest_*`` methods map each
dataclass onto registry metrics once, so every exporter (Prometheus
text, the ``repro learn``/``repro serve`` summary lines, JSON dumps)
reads one uniform surface instead of reaching into per-subsystem
structs.

Everything is stdlib-only and lock-guarded; iteration orders are
insertion-then-sorted so exposition output is deterministic.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:
    # imported lazily at runtime: instrumented modules (repro.neat,
    # repro.core) import repro.obs, so a module-level import back into
    # repro.core.metrics would be circular
    from repro.core.metrics import ChurnStats, RunResult, ServiceStats

#: default histogram bucket upper bounds, in seconds — tuned for the
#: sub-millisecond-to-seconds range the gateway and clan phases span
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing count (requests served, deaths, ...)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go either way (queue depth, hit rate, uptime)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` files a sample into every bucket whose upper bound
    admits it; exposition emits ``_bucket{le=...}``, ``_sum``, and
    ``_count`` series plus the implicit ``+Inf`` bucket.
    """

    __slots__ = ("_lock", "bounds", "_bucket_counts", "_count", "_sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            # per-bucket tallies; exposition accumulates them into the
            # cumulative le-series Prometheus expects
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            running = 0
            out: list[tuple[float, int]] = []
            for bound, n in zip(self.bounds, self._bucket_counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), self._count))
            return out


class _Family:
    """All samples of one metric name (one ``# TYPE`` block)."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_
        self.samples: dict[_LabelKey, Any] = {}


class MetricsRegistry:
    """Get-or-create registry of named metrics with optional labels.

    Metric names follow Prometheus conventions (``repro_`` prefix,
    ``_total`` suffix on counters, base-unit ``_seconds``).  Registering
    the same name with a different type is an error — that is the
    "subsume, don't duplicate" contract.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._families: dict[str, _Family] = {}

    # -- get-or-create -------------------------------------------------------

    def _sample(
        self,
        name: str,
        kind: str,
        help_: str,
        labels: Mapping[str, Any],
        factory,
    ):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}"
                )
            sample = family.samples.get(key)
            if sample is None:
                sample = factory()
                family.samples[key] = sample
            return sample

    def counter(self, name: str, help_: str = "", **labels: Any) -> Counter:
        return self._sample(name, "counter", help_, labels, Counter)

    def gauge(self, name: str, help_: str = "", **labels: Any) -> Gauge:
        return self._sample(name, "gauge", help_, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._sample(
            name, "histogram", help_, labels, lambda: Histogram(buckets)
        )

    # -- ingest: map the existing dataclasses onto the registry --------------

    def ingest_service_stats(
        self, stats: "ServiceStats", **labels: Any
    ) -> None:
        """Fold one gateway/fleet :class:`ServiceStats` snapshot in.

        Counters are *set-by-increment from zero* semantics: ingest each
        snapshot once (they are cumulative already).
        """
        for outcome, value in (
            ("accepted", stats.requests),
            ("served", stats.served),
            ("shed", stats.shed),
        ):
            self.counter(
                "repro_serve_requests_total",
                "requests by outcome at the inference gateway",
                outcome=outcome,
                **labels,
            ).inc(value)
        self.gauge(
            "repro_serve_qps",
            "served requests per second since start",
            **labels,
        ).set(stats.qps)
        self.gauge(
            "repro_serve_latency_seconds",
            "submit-to-answer latency quantiles",
            quantile="0.5",
            **labels,
        ).set(stats.p50_latency_s)
        self.gauge(
            "repro_serve_latency_seconds",
            "submit-to-answer latency quantiles",
            quantile="0.95",
            **labels,
        ).set(stats.p95_latency_s)
        batch_hist = self.histogram(
            "repro_serve_batch_size",
            "requests coalesced per forward pass",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            **labels,
        )
        for size in sorted(stats.batch_size_histogram):
            for _ in range(stats.batch_size_histogram[size]):
                batch_hist.observe(size)
        self.gauge(
            "repro_serve_champion_version",
            "registry version currently deployed",
            **labels,
        ).set(stats.champion_version)
        self.counter(
            "repro_serve_champion_swaps_total",
            "champion deployment changes since first publish",
            **labels,
        ).inc(stats.swaps)

    def ingest_churn(self, churn: "ChurnStats", **labels: Any) -> None:
        """Fold the fault-tolerance counters of one run in."""
        for name, value, help_ in (
            ("repro_churn_deaths_total", churn.deaths,
             "worker processes observed dead or heartbeat-killed"),
            ("repro_churn_respawns_total", churn.respawns,
             "successful respawn-from-checkpoint recoveries"),
            ("repro_churn_clans_lost_total", churn.clans_lost,
             "clans abandoned after exhausting the respawn budget"),
            ("repro_churn_lost_generations_total",
             churn.lost_generations,
             "completed-but-uncheckpointed generations re-run or lost"),
            ("repro_churn_reassigned_generations_total",
             churn.reassigned_generations,
             "budget of lost clans re-assigned to survivors"),
        ):
            self.counter(name, help_, **labels).inc(value)
        recovery = self.histogram(
            "repro_churn_recovery_latency_seconds",
            "failure detection to respawned clan resuming",
            **labels,
        )
        for latency in churn.recovery_latency_s:
            recovery.observe(latency)
        self.gauge(
            "repro_churn_mean_recovery_latency_seconds",
            "mean respawn recovery latency over the run",
            **labels,
        ).set(churn.mean_recovery_latency_s())

    def ingest_fleet_health(self, health: Mapping[str, Any],
                            **labels: Any) -> None:
        """Fold a serving fleet's self-healing counters in.

        ``health`` is the dict :meth:`repro.serve.fleet.ServingFleet
        .health` returns — respawn/retry/hedge totals, per-replica
        circuit-breaker states, and the chaos injector's fired-fault
        tally (empty without a fault plan). Ingest one final snapshot
        per run, like the other ``ingest_*`` surfaces.
        """
        for name, key, help_ in (
            ("repro_replica_respawns_total", "replica_respawns",
             "serving replicas respawned after a death"),
            ("repro_requests_retried_total", "requests_retried",
             "in-flight requests transparently re-dispatched after a "
             "replica death"),
            ("repro_requests_hedged_total", "requests_hedged",
             "duplicate hedged dispatches racing a slow replica"),
        ):
            self.counter(name, help_, **labels).inc(
                health.get(key, 0)
            )
        for action, count in sorted(
            health.get("faults_injected", {}).items()
        ):
            self.counter(
                "repro_faults_injected_total",
                "chaos-plane faults fired, by action",
                action=action,
                **labels,
            ).inc(count)
        for replica_id, state in sorted(
            health.get("breaker_states", {}).items()
        ):
            self.gauge(
                "repro_replica_breaker_state",
                "per-replica circuit breaker: 0 closed, 0.5 half-open, "
                "1 open",
                replica=str(replica_id),
                **labels,
            ).set(state)

    def ingest_run_result(self, result: "RunResult", **labels: Any) -> None:
        """Fold a protocol run's evolution-side outcome in."""
        self.counter(
            "repro_evolve_generations_total",
            "generations executed over the run",
            **labels,
        ).inc(result.generations)
        self.gauge(
            "repro_evolve_best_fitness",
            "best fitness reached over the run",
            **labels,
        ).set(result.best_fitness)
        self.gauge(
            "repro_evolve_species",
            "species count in the final generation",
            **labels,
        ).set(result.final_n_species())
        for name, value, help_ in (
            ("repro_plan_cache_hits_total", result.plan_cache_hits,
             "compiled-plan cache hits over the run"),
            ("repro_plan_cache_misses_total", result.plan_cache_misses,
             "compiled-plan cache misses over the run"),
            ("repro_comm_floats_total", result.total_comm_floats(),
             "32-bit words transferred over the run"),
        ):
            self.counter(name, help_, **labels).inc(value)
        self.gauge(
            "repro_plan_cache_hit_rate",
            "hits / lookups over the run (0 when the cache never ran)",
            **labels,
        ).set(result.plan_cache_hit_rate())
        self.ingest_churn(result.churn, **labels)

    # -- export --------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """Read one sample's scalar value (histograms: the count)."""
        family = self._families[name]
        sample = family.samples[_label_key(labels)]
        if isinstance(sample, Histogram):
            return float(sample.count)
        return sample.value

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-dict dump for JSON sinks and assertions."""
        out: dict[str, dict[str, Any]] = {}
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            series: dict[str, Any] = {}
            for key in sorted(family.samples):
                sample = family.samples[key]
                label_str = _render_labels(key) or "{}"
                if isinstance(sample, Histogram):
                    series[label_str] = {
                        "count": sample.count,
                        "sum": sample.total,
                    }
                else:
                    series[label_str] = sample.value
            out[family.name] = {"type": family.kind, "series": series}
        return out

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.samples):
                sample = family.samples[key]
                if isinstance(sample, Histogram):
                    for bound, cumulative in sample.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        labels = _render_labels(key, f'le="{le}"')
                        lines.append(
                            f"{family.name}_bucket{labels} {cumulative}"
                        )
                    base = _render_labels(key)
                    lines.append(
                        f"{family.name}_sum{base} {sample.total!r}"
                    )
                    lines.append(
                        f"{family.name}_count{base} {sample.count}"
                    )
                else:
                    labels = _render_labels(key)
                    value = sample.value
                    text = repr(value) if value % 1 else str(int(value))
                    lines.append(f"{family.name}{labels} {text}")
        return "\n".join(lines) + "\n"
