"""Unified telemetry for the evolve→deploy pipeline.

Zero-dependency observability layer: nested tracing spans
(:mod:`repro.obs.tracer`), a named-metric registry
(:mod:`repro.obs.metrics`), the injectable wall-clock shim
(:mod:`repro.obs.clock`), and exporters for JSONL / Chrome-trace
(Perfetto) / Prometheus text (:mod:`repro.obs.export`).

Tracing is off by default and costs a single global check per
instrumented site.  Turn it on around a region::

    from repro import obs

    tracer = obs.Tracer(track="driver")
    previous = obs.activate(tracer)
    try:
        run()                      # instrumented code records spans
    finally:
        obs.activate(previous) if previous else obs.deactivate()
    obs.write_chrome_trace(tracer.events(), "trace.json")

or pass ``--trace-out`` / ``--chrome-trace`` / ``--metrics-out`` to
``repro learn`` / ``repro serve``.  See ``docs/observability.md``.
"""

from repro.obs import clock
from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    NULL_SPAN,
    SpanEvent,
    Tracer,
    activate,
    current,
    current_stack,
    deactivate,
    instant,
    span,
)

__all__ = [
    "clock",
    "NULL_SPAN",
    "SpanEvent",
    "Tracer",
    "activate",
    "current",
    "current_stack",
    "deactivate",
    "instant",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
