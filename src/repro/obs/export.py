"""Exporters for collected traces and metrics.

Three formats, all stdlib-only:

* **JSONL** — one :class:`~repro.obs.tracer.SpanEvent` dict per line;
  greppable, streamable, the lossless archival form.
* **Chrome trace event JSON** — the ``{"traceEvents": [...]}`` format
  consumed by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
  Each distinct event *track* becomes one named thread row (``tid``), so
  a 4-clan async run renders as four parallel clan timelines above the
  driver/serve rows.  Interval events use phase ``"X"`` (complete),
  point events phase ``"i"`` (instant); timestamps are microseconds
  rebased to the earliest event so Perfetto opens at t=0.
* **Prometheus text exposition** — rendered by
  :meth:`repro.obs.metrics.MetricsRegistry.to_prometheus`; the writer
  here just puts it on disk for a file-based scrape or CI artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanEvent


def _track_order(tracks: Iterable[str]) -> list[str]:
    """Stable display order: driver first, clans, replicas, then the rest
    (each group sorted by numeric suffix where present)."""

    def sort_key(track: str) -> tuple[int, str, int]:
        prefix, _, suffix = track.partition(":")
        rank = {"driver": 0, "clan": 1, "replica": 2}.get(prefix, 3)
        try:
            index = int(suffix)
        except ValueError:
            index = 0
        return (rank, prefix, index)

    return sorted(set(tracks), key=sort_key)


def to_chrome_trace(
    events: Sequence[SpanEvent], *, dropped: int = 0
) -> dict:
    """Build a Chrome-trace-format document from collected events."""
    tracks = _track_order(event.track for event in events)
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    origin = min((event.start_s for event in events), default=0.0)
    trace_events: list[dict] = []
    for track in tracks:
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 1,
                "tid": tids[track],
                "args": {"sort_index": tids[track]},
            }
        )
    for event in events:
        ts = round((event.start_s - origin) * 1e6, 3)
        entry = {
            "name": event.name,
            "cat": event.track.partition(":")[0],
            "pid": 1,
            "tid": tids[event.track],
            "ts": ts,
            "args": dict(event.args),
        }
        if event.kind == "instant":
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped tick mark
        else:
            entry["ph"] = "X"
            entry["dur"] = round(event.dur_s * 1e6, 3)
        trace_events.append(entry)
    doc: dict = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    if dropped:
        doc["otherData"]["dropped_events"] = dropped
    return doc


def write_chrome_trace(
    events: Sequence[SpanEvent], path: str | Path, *, dropped: int = 0
) -> Path:
    """Write :func:`to_chrome_trace` output; open the file in Perfetto."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_chrome_trace(events, dropped=dropped)),
        encoding="utf-8",
    )
    return path


def write_jsonl(events: Sequence[SpanEvent], path: str | Path) -> Path:
    """Write one event dict per line, in collection order."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.as_dict()))
            handle.write("\n")
    return path


def read_jsonl(path: str | Path) -> list[SpanEvent]:
    """Load a JSONL event log back into :class:`SpanEvent` objects."""
    events: list[SpanEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(SpanEvent.from_dict(json.loads(line)))
    return events


def write_prometheus(
    registry: MetricsRegistry, path: str | Path
) -> Path:
    """Write the registry in Prometheus text exposition format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry.to_prometheus(), encoding="utf-8")
    return path
