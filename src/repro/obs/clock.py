"""The one sanctioned door to the wall clock.

Every runtime module that needs real elapsed time (`serve/`,
`cluster/runtime.py`, the tracer itself) calls :func:`perf` /
:func:`monotonic` from here instead of reading :mod:`time` directly.
That buys two things:

* **Injectability** — tests and benchmarks swap in a fake clock
  (:class:`ManualClock`) via :func:`set_clock` to make
  latency-dependent paths deterministic without monkeypatching ``time``
  globally.
* **Lintability** — rule RPR003 (wall-clock-in-simulation) bans raw
  ``time.*`` reads across whole subsystems; this file is the single
  reasoned exemption (see ``LintConfig.clock_modules``), so a raw read
  anywhere else is a lint error rather than a judgement call.

The default :class:`SystemClock` is a thin veneer over :mod:`time`; the
indirection costs one global lookup and two calls, which is noise next
to the pipe I/O and numpy work it times.

Usage::

    from repro.obs import clock
    t0 = clock.perf()
    ...
    elapsed = clock.perf() - t0
"""

from __future__ import annotations

# This module is the clock shim itself: raw time reads are sanctioned
# here and banned (RPR003) everywhere else in serve/ and cluster/.
import time


class SystemClock:
    """Real wall clocks, straight from :mod:`time`."""

    __slots__ = ()

    def perf(self) -> float:
        """High-resolution monotonic timer for measuring intervals."""
        return time.perf_counter()

    def monotonic(self) -> float:
        """Monotonic timer for deadlines and heartbeats."""
        return time.monotonic()

    def wall(self) -> float:
        """Epoch seconds, for timestamping exported artifacts only."""
        return time.time()


class ManualClock:
    """A hand-cranked clock for deterministic tests.

    All three readings come from one counter advanced explicitly via
    :meth:`advance`; nothing moves unless the test says so.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("ManualClock cannot run backwards")
        self._now += seconds

    def perf(self) -> float:
        return self._now

    def monotonic(self) -> float:
        return self._now

    def wall(self) -> float:
        return self._now


_active = SystemClock()


def set_clock(impl) -> object:
    """Install ``impl`` as the process-wide clock; returns the previous
    one so callers can restore it in a ``finally`` block."""
    global _active
    previous = _active
    _active = impl
    return previous


def get_clock():
    return _active


def perf() -> float:
    """Interval timer (``time.perf_counter`` on the system clock)."""
    return _active.perf()


def monotonic() -> float:
    """Deadline/heartbeat timer (``time.monotonic`` on the system clock)."""
    return _active.monotonic()


def wall() -> float:
    """Epoch seconds; export-artifact timestamps only."""
    return _active.wall()
