"""SCALE-sim-style systolic-array timing model.

The paper's custom-hardware study (section IV-E) assumes "a 32x32 systolic
array implementation and evaluate[s] performance using SCALE-sim". SCALE-sim
computes cycle counts for matrix multiplications mapped onto an R x C
processing-element array; this module reimplements the output-stationary
first-order model:

* A matmul of shape ``(M x K) @ (K x N)`` is tiled into
  ``ceil(M/R) * ceil(N/C)`` folds.
* Each fold streams ``K`` partial sums through the array and pays the
  array's fill + drain latency: ``cycles_per_fold = R + C + K - 2``.

A NEAT genome is mapped layer by layer: the network compiler's topological
layers become vector-matrix products (batch ``M = 1``), which is exactly
the poorly-utilised regime real edge accelerators face for NE inference —
the model reproduces that honestly instead of assuming peak FLOPs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.device import PI_GENE_OPS_PER_S

#: per-forward-pass host overhead on an embedded SoC: observation DMA,
#: action readback and kernel dispatch (seconds)
HOST_OVERHEAD_S = 150e-6

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome


@dataclass(frozen=True)
class SystolicArrayModel:
    """An R x C output-stationary systolic array at ``clock_hz``."""

    rows: int = 32
    cols: int = 32
    clock_hz: float = 200e6  # embedded-class accelerator clock

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")

    # -- raw matmul model ---------------------------------------------------

    def matmul_cycles(self, m: int, k: int, n: int) -> int:
        """Cycles for an ``(m x k) @ (k x n)`` product (OS dataflow)."""
        if min(m, k, n) < 1:
            raise ValueError("matmul dimensions must be >= 1")
        folds = math.ceil(m / self.rows) * math.ceil(n / self.cols)
        cycles_per_fold = self.rows + self.cols + k - 2
        return folds * cycles_per_fold

    def matmul_seconds(self, m: int, k: int, n: int) -> float:
        return self.matmul_cycles(m, k, n) / self.clock_hz

    def utilisation(self, m: int, k: int, n: int) -> float:
        """MAC utilisation: useful MACs / (cycles * array size)."""
        cycles = self.matmul_cycles(m, k, n)
        return (m * k * n) / (cycles * self.rows * self.cols)

    # -- genome mapping -------------------------------------------------------

    def genome_layers(
        self, genome: "Genome", config: "NEATConfig"
    ) -> list[tuple[int, int]]:
        """Map a genome to (fan_in, width) layer shapes.

        Layers follow the feed-forward topological levels; each level is a
        vector-matrix product whose K is the maximum fan-in at that level
        (the array streams the longest input column) and whose N is the
        level width.
        """
        from repro.neat.network import FeedForwardNetwork

        network = FeedForwardNetwork.create(genome, config)
        # reconstruct levels: a node's level is 1 + max(level of inputs)
        level: dict[int, int] = {key: 0 for key in config.input_keys}
        layers: dict[int, list[int]] = {}
        for key, _act, _agg, _bias, _resp, links in network.node_evals:
            node_level = 1 + max(
                (level.get(src, 0) for src, _w in links), default=0
            )
            level[key] = node_level
            fan_in = max(len(links), 1)
            layers.setdefault(node_level, []).append(fan_in)
        shapes = []
        for node_level in sorted(layers):
            fan_ins = layers[node_level]
            shapes.append((max(fan_ins), len(fan_ins)))
        return shapes

    def genome_inference_cycles(
        self, genome: "Genome", config: "NEATConfig"
    ) -> int:
        """Cycles for one forward pass of ``genome``."""
        total = 0
        for fan_in, width in self.genome_layers(genome, config):
            total += self.matmul_cycles(1, fan_in, width)
        return max(total, 1)

    def genome_inference_seconds(
        self, genome: "Genome", config: "NEATConfig"
    ) -> float:
        return self.genome_inference_cycles(genome, config) / self.clock_hz

    def speedup_vs_pi(self, genome: "Genome", config: "NEATConfig") -> float:
        """Array-only forward-pass speed-up over the Pi software baseline.

        This is an upper bound: it ignores getting observations into and
        actions out of the accelerator. Use :meth:`system_speedup_vs_pi`
        for the deployable number.
        """
        pi_seconds = genome.gene_count() / PI_GENE_OPS_PER_S
        return pi_seconds / self.genome_inference_seconds(genome, config)

    def system_speedup_vs_pi(
        self,
        genome: "Genome",
        config: "NEATConfig",
        host_overhead_s: float = HOST_OVERHEAD_S,
    ) -> float:
        """System-level speed-up including per-inference host overhead.

        Each forward pass pays ``host_overhead_s`` on the embedded host
        (observation marshalling over the SoC interconnect, action
        readback, kernel launch) regardless of array speed. This is the
        figure the ``systolic_32x32`` device-registry entry encodes — for
        Atari-sized genomes it lands near 100x, far below the array-only
        bound, exactly the memory-bound behaviour SCALE-sim reports for
        small-batch inference.
        """
        pi_seconds = genome.gene_count() / PI_GENE_OPS_PER_S
        accel_seconds = (
            self.genome_inference_seconds(genome, config) + host_overhead_s
        )
        return pi_seconds / accel_seconds
