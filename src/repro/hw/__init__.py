"""Custom-hardware models for the paper's technology study (Fig 10c)."""

from repro.hw.systolic import SystolicArrayModel

__all__ = ["SystolicArrayModel"]
