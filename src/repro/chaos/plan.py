"""Fault plans: declarative, seeded, replayable failure scenarios.

A :class:`FaultPlan` is a list of :class:`Fault` entries, each firing at
a *protocol event* — the N-th command sent to worker W, the K-th
deployment publish to replica R — never at a wall-clock instant. That is
what makes chaos runs replayable: the same plan against the same
workload seed injects the same faults at the same logical points every
time, in CI, on any machine, at any machine speed.

The plan's ``seed`` feeds only the injector's *payload* randomness (e.g.
which byte a ``corrupt`` fault flips). Scheduling is pure counting, so a
plan with no faults draws zero random numbers and perturbs nothing — the
determinism contract ``docs/chaos.md`` spells out.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

__all__ = ["Fault", "FaultPlan", "parse_fault_spec", "PLAN_VERSION"]

#: format version of the serialised plan document
PLAN_VERSION = 1

#: everything a fault can do to a matched event
ACTIONS = ("kill", "stall", "drop", "duplicate", "delay", "corrupt")
#: where faults can attach
SCOPES = ("worker", "replica", "registry")

#: which actions are meaningful per (scope, message-kind) attachment
#: point. ``None`` kind = the fault matches any message kind, which
#: restricts it to actions that are kind-agnostic (kill/stall/drop).
_SUPPORTED: dict[tuple[str, str | None], tuple[str, ...]] = {
    ("worker", None): ("kill", "stall", "drop"),
    ("replica", None): ("kill",),
    ("replica", "publish"): ("kill", "drop", "duplicate", "delay", "corrupt"),
    ("replica", "infer"): ("kill", "drop", "duplicate"),
    ("registry", None): ("delay",),
    ("registry", "publish"): ("delay",),
}


@dataclasses.dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``at`` counts *matching* events (1-based): a fault with
    ``scope="replica", target=0, kind="publish", at=2`` fires on the
    second deployment message bound for replica 0 and never again —
    faults are one-shot. ``target=None`` matches any worker/replica.
    ``value`` carries seconds for ``stall``/``delay``.
    """

    action: str
    scope: str
    at: int = 1
    target: int | None = None
    kind: str | None = None
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.scope not in SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r}")
        if self.at < 1:
            raise ValueError(f"fault 'at' is 1-based, got {self.at}")
        key = (self.scope, self.kind)
        supported = _SUPPORTED.get(key)
        if supported is None:
            # unknown kind: fall back to the kind-agnostic action set
            supported = _SUPPORTED[(self.scope, None)]
        if self.action not in supported:
            raise ValueError(
                f"action {self.action!r} is not supported for scope "
                f"{self.scope!r} kind {self.kind!r} (supported: "
                f"{', '.join(supported)})"
            )
        if self.action in ("stall", "delay") and self.value <= 0.0:
            raise ValueError(
                f"{self.action!r} faults need a positive duration "
                f"(value=...), got {self.value}"
            )

    def matches(self, scope: str, target: int | None, kind: str) -> bool:
        """Whether an event at (scope, target, kind) is counted."""
        if scope != self.scope:
            return False
        if self.target is not None and target != self.target:
            return False
        if self.kind is not None and kind != self.kind:
            return False
        return True

    def describe(self) -> str:
        """Compact human-readable form for CLI/benchmark reports."""
        where = (
            f"{self.scope} {self.target}"
            if self.target is not None
            else f"any {self.scope}"
        )
        text = f"{self.action} {where} ({self.kind or 'any'} event #{self.at})"
        if self.value:
            text += f", {self.value}s"
        return text

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of faults."""

    seed: int = 0
    faults: tuple[Fault, ...] = ()

    def to_dict(self) -> dict:
        return {
            "version": PLAN_VERSION,
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        version = data.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(f"unsupported fault plan version {version!r}")
        faults = tuple(
            Fault.from_dict(entry) for entry in data.get("faults", ())
        )
        return cls(seed=data.get("seed", 0), faults=faults)

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        """Load a plan from a JSON file (see ``docs/chaos.md``)."""
        try:
            data = json.loads(pathlib.Path(path).read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"fault plan {path} is not valid JSON: {error}")
        if not isinstance(data, dict):
            raise ValueError(f"fault plan {path} must be a JSON object")
        return cls.from_dict(data)

    def save(self, path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2))


def parse_fault_spec(spec: str) -> Fault:
    """Parse the CLI's compact fault syntax into a :class:`Fault`.

    Grammar: ``ACTION[,key=value...]`` with keys ``scope``, ``target``,
    ``kind``, ``at``, ``value`` — e.g.::

        kill,scope=worker,target=1,kind=clan_step,at=3
        drop,scope=replica,target=0,kind=publish
        delay,scope=registry,value=0.05
    """
    parts = [part.strip() for part in spec.split(",") if part.strip()]
    if not parts:
        raise ValueError("empty fault spec")
    action = parts[0]
    kwargs: dict = {}
    for part in parts[1:]:
        if "=" not in part:
            raise ValueError(
                f"malformed fault field {part!r} (expected key=value)"
            )
        key, raw = part.split("=", 1)
        key = key.strip()
        raw = raw.strip()
        if key in ("target", "at"):
            kwargs[key] = int(raw)
        elif key == "value":
            kwargs[key] = float(raw)
        elif key in ("scope", "kind"):
            kwargs[key] = raw
        else:
            raise ValueError(f"unknown fault field {key!r}")
    if "scope" not in kwargs:
        raise ValueError(f"fault spec {spec!r} needs a scope=... field")
    return Fault(action=action, **kwargs)
