"""The chaos injector: turns a :class:`FaultPlan` into per-event decisions.

Hosts call :meth:`ChaosInjector.on_event` at their protocol choke points
(`WorkerPool._request`, the serving fleet's publish/infer send paths) and
apply the returned :class:`Decision`. The injector itself never touches a
process or a pipe — it only counts events and answers "what should happen
to this one?", which keeps the shims in the transport and fleet tiny and
the injector trivially unit-testable.

Determinism: scheduling is pure event counting. The plan seed feeds a
private RNG consumed **only** when a fault that needs payload randomness
(``corrupt``) actually fires, so a no-fault plan draws zero random
numbers and a partially-consumed plan never shifts unrelated streams.
"""

from __future__ import annotations

import random
import threading

from repro.chaos.plan import Fault, FaultPlan

__all__ = ["ChaosInjector", "Decision", "PASS"]


class Decision:
    """What the host should do with one intercepted event.

    ``deliveries`` is how many times to deliver the message (0 = drop,
    1 = pass, 2 = duplicate); ``kill`` / ``stall_s`` / ``delay_s`` /
    ``corrupt`` layer process- and payload-level faults on top. The
    shared :data:`PASS` instance is returned for unmatched events so the
    hot path allocates nothing.
    """

    __slots__ = ("deliveries", "kill", "stall_s", "delay_s", "corrupt")

    def __init__(self) -> None:
        self.deliveries = 1
        self.kill = False
        self.stall_s = 0.0
        self.delay_s = 0.0
        self.corrupt = False

    @property
    def intercepts(self) -> bool:
        """Whether this decision changes anything at all."""
        return (
            self.deliveries != 1
            or self.kill
            or self.stall_s > 0.0
            or self.delay_s > 0.0
            or self.corrupt
        )


#: the shared no-op decision (never mutated)
PASS = Decision()


class ChaosInjector:
    """Counts protocol events against a plan and issues decisions.

    Thread-safe: the serving fleet consults it from both its event loop
    (infer sends) and the registry's publisher thread (deployment
    sends), so counting happens under a lock. ``injected_counts`` is
    read after the run for reporting.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._counts = [0] * len(plan.faults)  # guarded-by: _lock
        self._fired = [False] * len(plan.faults)  # guarded-by: _lock
        #: action -> number of times a fault of that action fired
        self.injected: dict[str, int] = {}  # guarded-by: _lock

    # -- event interception ------------------------------------------------

    def on_event(
        self, scope: str, target: int | None, kind: str
    ) -> Decision:
        """Count one protocol event; say what should happen to it."""
        decision: Decision | None = None
        with self._lock:
            for index, fault in enumerate(self.plan.faults):
                if self._fired[index]:
                    continue
                if not fault.matches(scope, target, kind):
                    continue
                self._counts[index] += 1
                if self._counts[index] != fault.at:
                    continue
                self._fired[index] = True
                self.injected[fault.action] = (
                    self.injected.get(fault.action, 0) + 1
                )
                if decision is None:
                    decision = Decision()
                self._apply(fault, decision)
        return decision if decision is not None else PASS

    @staticmethod
    def _apply(fault: Fault, decision: Decision) -> None:
        if fault.action == "kill":
            decision.kill = True
        elif fault.action == "stall":
            decision.stall_s = max(decision.stall_s, fault.value)
        elif fault.action == "drop":
            decision.deliveries = 0
        elif fault.action == "duplicate":
            if decision.deliveries != 0:
                decision.deliveries = 2
        elif fault.action == "delay":
            decision.delay_s = max(decision.delay_s, fault.value)
        elif fault.action == "corrupt":
            decision.corrupt = True

    # -- payload mutation --------------------------------------------------

    def corrupt_bytes(self, data: bytes) -> bytes:
        """Flip one seeded bit somewhere in ``data`` (non-empty)."""
        if not data:
            return data
        with self._lock:
            index = self._rng.randrange(len(data))
            bit = 1 << self._rng.randrange(8)
        mutated = bytearray(data)
        mutated[index] ^= bit
        return bytes(mutated)

    # -- reporting ---------------------------------------------------------

    def injected_counts(self) -> dict[str, int]:
        """Copy of the action -> fired-count tally."""
        return dict(self.injected)

    @property
    def faults_fired(self) -> int:
        """Total faults that have fired so far."""
        return sum(self.injected.values())

    @property
    def faults_pending(self) -> int:
        """Faults scheduled but not yet fired."""
        return len(self.plan.faults) - sum(self._fired)
