"""Run a fault plan against a real workload and report what happened.

The runners here back the ``repro chaos`` CLI subcommand (and the chaos
benchmark): build the workload exactly the way ``repro learn`` /
``repro serve`` would, thread a :class:`~repro.chaos.injector
.ChaosInjector` through it, and return a plain-dict outcome — what the
workload produced, what the healing machinery did about the injected
faults, and which faults actually fired. Everything in the outcome is
JSON-serialisable so chaos runs drop straight into the benchmark-report
pipeline.

Determinism contract (see ``docs/chaos.md``): a learn outcome's
``champion_hex`` is byte-comparable across runs — the same plan against
the same workload seed yields the same champion, and an *empty* plan
yields the champion of a chaos-free run.
"""

from __future__ import annotations

import asyncio

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultPlan

__all__ = ["run_learn_plan", "run_serve_plan"]


def _chaos_summary(injector: ChaosInjector) -> dict:
    return {
        "faults_planned": len(injector.plan.faults),
        "faults_fired": injector.faults_fired,
        "faults_pending": injector.faults_pending,
        "faults_injected": injector.injected_counts(),
    }


def run_learn_plan(
    plan: FaultPlan,
    env_id: str,
    n_clans: int = 2,
    pop_size: int = 24,
    generations: int = 4,
    seed: int = 0,
    max_steps: int | None = None,
    heartbeat_timeout_s: float | None = 10.0,
    max_respawns: int = 2,
) -> dict:
    """Inject ``plan`` into a distributed clan run; return the outcome.

    The workload is a :class:`~repro.cluster.runtime
    .DistributedClanRuntime` barrier run — the same engine ``repro
    learn`` exercises physically — with the injector threaded through
    its worker pool, so ``worker``-scoped faults (kill / stall / drop)
    land on real clan processes and the supervision machinery has to
    recover from them.
    """
    from repro.cluster.runtime import DistributedClanRuntime
    from repro.neat.checkpoint import encode_genome_hex
    from repro.neat.config import NEATConfig

    injector = ChaosInjector(plan)
    config = NEATConfig.for_env(env_id, pop_size=pop_size)
    with DistributedClanRuntime(
        env_id,
        n_clans=n_clans,
        config=config,
        seed=seed,
        max_steps=max_steps,
        heartbeat_timeout_s=heartbeat_timeout_s,
        max_respawns=max_respawns,
        chaos=injector,
    ) as runtime:
        stats = runtime.run(max_generations=generations)
        champion = runtime.best_genome()
    churn = stats.churn
    outcome = {
        "workload": "learn",
        "env": env_id,
        "seed": seed,
        "n_clans": n_clans,
        "generations": stats.generations,
        "best_fitness": stats.best_fitness,
        "converged": stats.converged,
        "wall_time_s": stats.wall_time_s,
        "champion_fitness": champion.fitness,
        "champion_hex": encode_genome_hex(champion),
        "churn": {
            "deaths": churn.deaths,
            "respawns": churn.respawns,
            "clans_lost": churn.clans_lost,
            "lost_generations": churn.lost_generations,
        },
    }
    outcome.update(_chaos_summary(injector))
    return outcome


def run_serve_plan(
    plan: FaultPlan,
    env_id: str,
    replicas: int = 2,
    rate_hz: float = 400.0,
    n_requests: int = 200,
    seed: int = 0,
    publishes: int = 2,
    max_retries: int = 2,
    max_replica_respawns: int = 2,
) -> dict:
    """Inject ``plan`` into a serving-fleet run; return the outcome.

    The workload is a :class:`~repro.serve.fleet.ServingFleet` behind a
    :class:`~repro.serve.registry.ChampionRegistry`, fed seeded Poisson
    traffic by the :class:`~repro.serve.loadgen.LoadGenerator`.
    ``publishes`` deployments are spread across the traffic window (the
    first lands before any request), so ``replica``/``registry`` faults
    scoped to ``publish`` events have live deployments to hit and the
    catch-up / deployment-repair paths are exercised for real.
    """
    from repro.neat.config import NEATConfig
    from repro.neat.population import Population
    from repro.serve.fleet import ServingFleet
    from repro.serve.loadgen import LoadGenerator, observation_sampler
    from repro.serve.registry import ChampionRegistry

    if publishes < 1:
        raise ValueError("publishes must be >= 1")
    injector = ChaosInjector(plan)
    config = NEATConfig.for_env(env_id, pop_size=8)
    population = Population(config, seed=seed)
    candidates = [
        population.genomes[key] for key in sorted(population.genomes)
    ]

    async def run() -> dict:
        loop = asyncio.get_running_loop()
        registry = ChampionRegistry(config)
        fleet = ServingFleet(
            registry,
            replicas=replicas,
            seed=seed,
            max_replica_respawns=max_replica_respawns,
            chaos=injector,
        )
        await fleet.start()
        # publishes go through an executor thread: delay faults block
        # the publisher, and the registry delivery path must not stall
        # the event loop the fleet heals on
        await loop.run_in_executor(
            None, lambda: registry.publish(candidates[0], source="chaos")
        )
        await asyncio.wait_for(fleet.wait_deployed(), timeout=10.0)
        generator = LoadGenerator(
            fleet.submit,
            observation_sampler(env_id),
            rate_hz=rate_hz,
            n_requests=n_requests,
            seed=seed,
            max_retries=max_retries,
        )
        load_task = loop.create_task(generator.run())
        # remaining deployments land mid-traffic, spread evenly across
        # the expected load window
        window_s = n_requests / rate_hz
        for index in range(1, publishes):
            await asyncio.sleep(window_s / publishes)
            genome = candidates[index % len(candidates)]
            await loop.run_in_executor(
                None,
                lambda g=genome: registry.publish(g, source="chaos"),
            )
        report = await load_task
        stats = await fleet.scrape()
        traces = fleet.version_traces()
        health = fleet.health()
        await fleet.close()
        registry.close()

        # stale-serve audit: within each replica's served order the
        # deployed champion version must never regress (the monotone
        # seq guard's user-visible face)
        regressions = sum(
            1
            for trace in traces.values()
            for earlier, later in zip(trace, trace[1:])
            if later < earlier
        )
        outcome = {
            "workload": "serve",
            "env": env_id,
            "seed": seed,
            "replicas": replicas,
            "publishes": publishes,
            "offered": report.offered,
            "served": report.served,
            "shed": report.shed,
            "rejected_closed": report.rejected_closed,
            "retried": report.retried,
            "failed": report.failed,
            "success_rate": (
                report.served / report.offered if report.offered else 0.0
            ),
            "distinct_versions": report.distinct_versions,
            "version_regressions": regressions,
            "p95_latency_s": stats.p95_latency_s,
            "health": health,
        }
        outcome.update(_chaos_summary(injector))
        return outcome

    return asyncio.run(run())
