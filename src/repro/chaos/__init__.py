"""Deterministic chaos plane: seeded, schedulable, replayable faults.

Kill a worker at generation N. Drop the second deployment message bound
for replica 1. Corrupt a published plan's wire bytes. Every failure mode
the cluster runtime (PR 6) and the serving fleet handle implicitly
becomes an explicit, replayable scenario — runnable in CI via the
``repro chaos`` CLI subcommand (see ``docs/chaos.md``).

Composition: a :class:`FaultPlan` (what fires, where, at which protocol
event) feeds a :class:`ChaosInjector`, which the hosts —
``WorkerPool(chaos=...)``, ``ServingFleet(chaos=...)``, and
``DistributedClanRuntime(chaos=...)`` — consult at their message choke
points. The no-plan / no-fault path draws zero random numbers and sends
zero extra messages, so enabling the chaos plane without faults is
byte-identical to not having it at all.
"""

from repro.chaos.injector import ChaosInjector, Decision
from repro.chaos.plan import Fault, FaultPlan, parse_fault_spec
from repro.chaos.runner import run_learn_plan, run_serve_plan

__all__ = [
    "ChaosInjector",
    "Decision",
    "Fault",
    "FaultPlan",
    "parse_fault_spec",
    "run_learn_plan",
    "run_serve_plan",
]
