"""Population/agent partitioning helpers.

All CLAN protocols shard work across agents round-robin over sorted genome
keys: deterministic, balanced to within one item, and independent of dict
iteration order (which matters for cross-process reproducibility).
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def round_robin(items: Sequence[T], n_shards: int) -> list[list[T]]:
    """Deal ``items`` into ``n_shards`` lists, round-robin.

    >>> round_robin([1, 2, 3, 4, 5], 2)
    [[1, 3, 5], [2, 4]]
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    shards: list[list[T]] = [[] for _ in range(n_shards)]
    for index, item in enumerate(items):
        shards[index % n_shards].append(item)
    return shards


def contiguous_blocks(items: Sequence[T], n_shards: int) -> list[list[T]]:
    """Split ``items`` into ``n_shards`` contiguous, near-equal blocks.

    Sizes differ by at most one; used for clan formation in CLAN_DDA where
    each clan must be a stable, contiguous sub-population.

    >>> contiguous_blocks([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    base, extra = divmod(len(items), n_shards)
    blocks: list[list[T]] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        blocks.append(list(items[start: start + size]))
        start += size
    return blocks


def assign_genomes(
    genome_keys: Iterable[int], n_agents: int
) -> dict[int, int]:
    """Map genome key -> agent id, round-robin over sorted keys."""
    mapping: dict[int, int] = {}
    for index, key in enumerate(sorted(genome_keys)):
        mapping[key] = index % n_agents
    return mapping
