"""Scaling-curve extrapolation (the paper's Fig 9 methodology).

The paper's testbed stops at 15 Pis; to ask "how far can we push before
adding nodes stops helping, or a serial implementation wins?", the authors
fit the observed inference/evolution/communication trends and extrapolate
to 100 units. This module mirrors that: measured per-generation times at
testbed scales are fitted to the structural form

    t(n) = a / n + b + c * n**2

(``a/n``: population-level-parallel compute; ``b``: serial blocks and
constant message payloads; ``c * n**2``: per-phase synchronisation, see
:mod:`repro.cluster.analytic`), then extrapolated, and the two questions
the paper answers are answered: where does the curve stop improving
(stagnation), and where does a serial implementation become preferable
(crossover).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScalingFit:
    """Fitted t(n) = a/n + b + c*n^2."""

    a: float
    b: float
    c: float
    residual: float

    def predict(self, n: float) -> float:
        if n < 1:
            raise ValueError("node count must be >= 1")
        return self.a / n + self.b + self.c * n * n

    def predict_many(self, ns: list[int]) -> list[float]:
        return [self.predict(n) for n in ns]

    def stagnation_point(self, n_max: int = 200) -> int:
        """Smallest n in [1, n_max] minimising t(n) (integer scan)."""
        best_n, best_t = 1, self.predict(1)
        for n in range(2, n_max + 1):
            t = self.predict(n)
            if t < best_t - 1e-12:
                best_n, best_t = n, t
        return best_n

    def crossover_with(
        self, serial_time: float, n_max: int = 500
    ) -> int | None:
        """Smallest n > 1 where the distributed curve exceeds ``serial_time``.

        Returns ``None`` if the curve stays below serial through ``n_max``.
        Scanning starts past the curve's minimum so an initially-worse
        region near n=1 (where parallelism hasn't paid off yet) is not
        mistaken for the at-scale crossover.
        """
        start = max(self.stagnation_point(n_max), 2)
        for n in range(start, n_max + 1):
            if self.predict(n) > serial_time:
                return n
        return None


def fit_scaling_curve(
    node_counts: list[int], times_s: list[float]
) -> ScalingFit:
    """Least-squares fit of t(n) = a/n + b + c*n^2 to measurements.

    Requires at least three distinct node counts (three basis functions).
    The ``a`` and ``c`` coefficients are clamped to be non-negative (both
    are physically non-negative; tiny negative values from noise would
    produce absurd extrapolations at n=100).
    """
    if len(node_counts) != len(times_s):
        raise ValueError("node_counts and times_s must have equal length")
    if len(set(node_counts)) < 3:
        raise ValueError("need at least three distinct node counts to fit")
    if any(n < 1 for n in node_counts):
        raise ValueError("node counts must be >= 1")

    ns = np.asarray(node_counts, dtype=float)
    ts = np.asarray(times_s, dtype=float)
    basis = np.column_stack([1.0 / ns, np.ones_like(ns), ns * ns])
    coeffs, _res, _rank, _sv = np.linalg.lstsq(basis, ts, rcond=None)
    a, b, c = coeffs

    # clamp and refit the remaining coefficients if needed
    if a < 0 or c < 0:
        keep = [
            i
            for i, coeff in enumerate((a, b, c))
            if not (i == 0 and a < 0) and not (i == 2 and c < 0)
        ]
        sub = basis[:, keep]
        sub_coeffs, _r, _rk, _s = np.linalg.lstsq(sub, ts, rcond=None)
        full = [0.0, 0.0, 0.0]
        for index, coeff in zip(keep, sub_coeffs):
            full[index] = float(coeff)
        a, b, c = full
        a = max(a, 0.0)
        c = max(c, 0.0)

    predicted = a / ns + b + c * ns * ns
    residual = float(np.sqrt(np.mean((predicted - ts) ** 2)))
    return ScalingFit(a=float(a), b=float(b), c=float(c), residual=residual)


@dataclass(frozen=True)
class ExtrapolationStudy:
    """One Fig 9 panel: two configurations extrapolated against serial."""

    serial_time_s: float
    fits: dict[str, ScalingFit]
    grid: tuple[int, ...]

    def curves(self) -> dict[str, list[float]]:
        """Predicted total time per configuration over the grid."""
        return {
            name: fit.predict_many(list(self.grid))
            for name, fit in self.fits.items()
        }

    def crossovers(self, n_max: int = 500) -> dict[str, int | None]:
        """Node count where each configuration loses to serial."""
        return {
            name: fit.crossover_with(self.serial_time_s, n_max)
            for name, fit in self.fits.items()
        }

    def stagnation_points(self, n_max: int = 200) -> dict[str, int]:
        return {
            name: fit.stagnation_point(n_max)
            for name, fit in self.fits.items()
        }

    def mean_advantage(
        self, better: str, worse: str, up_to: int | None = None
    ) -> float:
        """Average t_worse / t_better across the grid (paper's "2x better")."""
        limit = up_to if up_to is not None else max(self.grid)
        ratios = []
        for n in self.grid:
            if n > limit:
                continue
            ratios.append(
                self.fits[worse].predict(n) / self.fits[better].predict(n)
            )
        if not ratios:
            raise ValueError("no grid points within limit")
        return float(np.mean(ratios))
