"""Top-level CLAN API: run a protocol on a workload over a modelled cluster.

``ClanDriver`` glues the three layers together: a protocol engine (what is
computed where), a cluster spec (devices + link) and the analytic timing
model (how long it takes). This is the entry point the examples and most
benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.analytic import (
    ClusterSpec,
    TimingBreakdown,
    mean_generation_time,
    time_run,
)
from repro.cluster.profiles import pi_env_step_seconds
from repro.core.metrics import RunResult
from repro.core.protocols import make_protocol
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome


@dataclass
class TimedRun:
    """A protocol run together with its modelled wall-clock cost."""

    result: RunResult
    timing_total: TimingBreakdown
    timing_per_generation: TimingBreakdown
    best_genome: Genome | None

    @property
    def converged(self) -> bool:
        return self.result.converged

    @property
    def generations(self) -> int:
        return self.result.generations


class ClanDriver:
    """Run CLAN on a workload and report both outcome and modelled time.

    Engine selection flows through ``**protocol_kwargs`` — notably
    ``backend="scalar" | "batched"`` (inference engine) and
    ``eval_mode="per_genome" | "population"`` (per-genome rollouts vs
    one vectorized sweep per agent block; see ``docs/vectorization.md``).
    Both execution choices leave trajectories and the modelled cost
    accounting unchanged.

    >>> from repro.core import ClanDriver
    >>> from repro.cluster.analytic import ClusterSpec
    >>> driver = ClanDriver("CartPole-v0", ClusterSpec.of_pis(4),
    ...                     protocol="CLAN_DDA", pop_size=40, seed=1)
    >>> run = driver.learn(max_generations=3, fitness_threshold=1e9)
    >>> run.generations
    3
    """

    def __init__(
        self,
        env_id: str,
        cluster: ClusterSpec,
        protocol: str = "CLAN_DDA",
        config: NEATConfig | None = None,
        pop_size: int | None = None,
        seed: int = 0,
        max_steps: int | None = None,
        genetics: str | None = None,
        **protocol_kwargs,
    ):
        """``genetics`` selects the evolution-phase engine
        (``"scalar"`` or ``"vectorized"``, see ``docs/genetics.md``) and
        folds into the derived config; like ``pop_size`` it conflicts
        with an explicit ``config`` carrying a different value."""
        if config is None:
            overrides = {}
            if pop_size is not None:
                overrides["pop_size"] = pop_size
            if genetics is not None:
                overrides["genetics"] = genetics
            config = NEATConfig.for_env(env_id, **overrides)
        else:
            if pop_size is not None and config.pop_size != pop_size:
                raise ValueError(
                    "pass either config or pop_size, not conflicting values"
                )
            if genetics is not None and config.genetics != genetics:
                raise ValueError(
                    "pass either config or genetics, not conflicting values"
                )
        self.env_id = env_id
        self.cluster = cluster
        self.protocol_name = protocol
        self.config = config
        self.seed = seed
        self.engine = make_protocol(
            protocol,
            env_id,
            n_agents=cluster.n_agents,
            config=config,
            seed=seed,
            max_steps=max_steps,
            **protocol_kwargs,
        )
        self._pi_env_step_s = pi_env_step_seconds(env_id)

    def simulate(self, mode: str = "barrier"):
        """Replay the engine's records through the event-driven simulator.

        Returns ``(generations, total_s)`` where ``generations`` is one
        :class:`~repro.cluster.simulator.SimulatedGeneration` per record.
        ``mode="async"`` (CLAN_DDA only) chains per-clan clocks across
        generations, so ``total_s`` is the barrier-free makespan rather
        than a sum of per-generation durations.
        """
        from repro.cluster.simulator import GenerationSimulator

        simulator = GenerationSimulator(
            self.cluster, self._pi_env_step_s, mode=mode
        )
        generations = simulator.simulate_run(self.engine.records)
        return generations, simulator.aggregate_total(generations)

    def learn(
        self,
        max_generations: int = 100,
        fitness_threshold: float | None = None,
        on_generation=None,
    ) -> TimedRun:
        """Evolve until convergence (or budget), then time the run.

        ``on_generation(engine, record)`` fires after every completed
        generation (see :meth:`ProtocolBase.run`) — the CLI's
        ``--checkpoint-dir`` streams crash-resume checkpoints through it.
        """
        result = self.engine.run(
            max_generations=max_generations,
            fitness_threshold=fitness_threshold,
            on_generation=on_generation,
        )
        total = time_run(result.records, self.cluster, self._pi_env_step_s)
        per_generation = mean_generation_time(
            result.records, self.cluster, self._pi_env_step_s
        )
        return TimedRun(
            result=result,
            timing_total=total,
            timing_per_generation=per_generation,
            best_genome=self.engine.best_genome,
        )
