"""The CLAN protocol engines (paper Fig 2).

Each engine runs real NEAT while logging where every compute block executes
and every message that would cross the WiFi network, producing one
:class:`~repro.core.metrics.GenerationRecord` per generation. Engines are
*logical* distributed executions: the algorithm, placement and communication
are exact, while wall-clock time is assigned later by the cluster timing
models (:mod:`repro.cluster.analytic` / :mod:`repro.cluster.simulator`).
A physically parallel backend with one OS process per agent lives in
:mod:`repro.cluster.runtime` and reuses these same engines.

Design note — placement-independent evolution: child genomes are formed
from RNG streams keyed by ``(seed, generation, child key)`` (see
:meth:`repro.neat.population.Population.child_rng_for_generation`), so
SerialNEAT, CLAN_DCS and CLAN_DDS produce *bit-identical* populations for
the same seed. Distribution changes who computes, not what is computed —
the tests assert this. CLAN_DDA genuinely changes the algorithm
(asynchronous speciation over clans), which is why the paper studies its
convergence cost separately (Fig 7b).
"""

from __future__ import annotations

from typing import Callable

from repro.obs import tracer as obs
from repro.core.messages import CENTER, Message, MessageType
from repro.core.metrics import AgentLoad, GenerationRecord, RunResult
from repro.core.partition import assign_genomes, contiguous_blocks
from repro.cluster.serialization import genome_wire_floats
from repro.envs.registry import workload_spec
from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult, GenomeEvaluator
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.population import Population
from repro.neat.reproduction import (
    GenerationPlan,
    brood_rng,
    execute_plan,
    plan_generation,
)
from repro.neat.species import SpeciationStats, SpeciesSet
from repro.utils.rng import RngFactory

#: 32-bit words per reported fitness entry: (genome key, fitness)
FITNESS_ENTRY_FLOATS = 2
#: 32-bit words per spawn-count entry: (species key, count)
SPAWN_ENTRY_FLOATS = 2
#: 32-bit words per child spec on the wire: (child, species, parent1,
#: parent2-or-sentinel)
CHILD_SPEC_FLOATS = 4


class ProtocolBase:
    """Shared engine scaffolding: evaluator, config, convergence tracking."""

    name = "Base"

    def __init__(
        self,
        env_id: str,
        n_agents: int,
        config: NEATConfig | None = None,
        seed: int = 0,
        max_steps: int | None = None,
        episodes: int = 1,
        evaluator: GenomeEvaluator | None = None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
    ):
        if n_agents < 1:
            raise ValueError("n_agents must be >= 1")
        self.env_id = env_id
        self.n_agents = n_agents
        self.config = config or NEATConfig.for_env(env_id)
        self.seed = seed
        self.rngs = RngFactory(seed)
        # an injected evaluator (e.g. a shared cache for n-sweeps) must be
        # seeded identically to the default one or trajectories change
        self.evaluator = evaluator or self.default_evaluator(
            env_id, seed, episodes=episodes, max_steps=max_steps,
            backend=backend, eval_mode=eval_mode,
        )
        self.solved_threshold = workload_spec(env_id).solved_threshold
        self.generation = 0
        self.records: list[GenerationRecord] = []
        self.best_fitness = float("-inf")
        self.best_genome: Genome | None = None

    @staticmethod
    def default_evaluator(
        env_id: str,
        seed: int,
        episodes: int = 1,
        max_steps: int | None = None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
    ) -> GenomeEvaluator:
        """The evaluator a protocol seeded with ``seed`` would build.

        ``backend`` selects the inference engine (``"scalar"`` or
        ``"batched"``); ``eval_mode`` selects how each agent evaluates
        its genome block (``"per_genome"`` or the vectorized
        ``"population"`` sweep). The engines agree to float64 rounding,
        so fitness trajectories match in practice (the suite asserts it
        on real workloads); keep the default scalar interpreter where
        bit-exact reproduction of the paper figures is the point.
        """
        return GenomeEvaluator(
            env_id,
            episodes=episodes,
            max_steps=max_steps,
            seed=RngFactory(seed).seed_for("episodes") % (2**31),
            backend=backend,
            eval_mode=eval_mode,
        )

    # -- template methods -----------------------------------------------------

    def run_generation(self) -> GenerationRecord:
        raise NotImplementedError

    def run(
        self,
        max_generations: int,
        fitness_threshold: float | None = None,
        on_generation=None,
    ) -> RunResult:
        """Run generations until convergence or the budget expires.

        ``fitness_threshold`` defaults to the workload's gym convergence
        criterion. ``on_generation(engine, record)``, if given, fires
        after every completed generation — the hook crash-resumable
        runs stream per-generation checkpoints through (it must not
        mutate engine state; it runs between generations, where the
        engine is at a clean replayable boundary).
        """
        threshold = (
            self.solved_threshold
            if fitness_threshold is None
            else fitness_threshold
        )
        result = RunResult(
            protocol=self.name, env_id=self.env_id, n_agents=self.n_agents
        )
        cache = getattr(self.evaluator, "plan_cache", None)
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        for _ in range(max_generations):
            with obs.span("generation", gen=self.generation):
                record = self.run_generation()
            result.records.append(record)
            if on_generation is not None:
                on_generation(self, record)
            if record.best_fitness >= threshold:
                result.converged = True
                result.generations_to_converge = record.generation + 1
                break
        result.best_fitness = self.best_fitness
        if cache is not None:
            result.plan_cache_hits = cache.hits - hits_before
            result.plan_cache_misses = cache.misses - misses_before
        return result

    # -- shared helpers -------------------------------------------------------

    def _new_record(self) -> GenerationRecord:
        return GenerationRecord(
            generation=self.generation,
            protocol=self.name,
            n_agents=self.n_agents,
            agent_loads=[AgentLoad() for _ in range(self.n_agents)],
        )

    def _note_best(self, genome: Genome) -> None:
        if genome.fitness is not None and genome.fitness > self.best_fitness:
            self.best_fitness = genome.fitness
            self.best_genome = genome.copy()

    def _evaluate_block_on_agent(
        self,
        genomes: list[Genome],
        load: AgentLoad,
        generation: int,
    ) -> dict[int, FitnessResult]:
        """Evaluate one agent's whole genome block as a single sweep.

        The evaluator's ``eval_mode`` decides execution: per-genome
        rollouts or one vectorized population sweep. Either way the
        gene-op/message accounting is charged per genome, so the cost
        model sees identical work regardless of how it was executed.

        Injected evaluators (``evaluator=`` kwarg) may implement only
        ``evaluate``; they are looped per genome like before.
        """
        evaluate_many = getattr(self.evaluator, "evaluate_many", None)
        if evaluate_many is not None:
            results = evaluate_many(genomes, self.config, generation)
        else:
            results = {
                genome.key: self.evaluator.evaluate(
                    genome, self.config, generation
                )
                for genome in genomes
            }
        for genome in genomes:
            result = results[genome.key]
            load.inference_gene_ops += genome.gene_count() * max(
                result.steps, 1
            )
            load.env_steps += result.steps
            load.genomes_evaluated += 1
        return results


class SerialNEAT(ProtocolBase):
    """Baseline: everything on a single device, zero communication."""

    name = "Serial"

    def __init__(self, env_id: str, **kwargs):
        kwargs.setdefault("n_agents", 1)
        if kwargs["n_agents"] != 1:
            raise ValueError("SerialNEAT runs on exactly one device")
        super().__init__(env_id, **kwargs)
        self.population = Population(self.config, seed=self.seed)

    def run_generation(self) -> GenerationRecord:
        record = self._new_record()
        load = record.agent_loads[0]

        def evaluate(genomes, generation):
            genomes = list(genomes)
            with obs.span(
                "evaluate", track="clan:0", genomes=len(genomes)
            ):
                return self._evaluate_block_on_agent(
                    genomes, load, generation
                )

        stats = self.population.run_generation(evaluate)
        load.speciation_gene_ops = stats.speciation_genes
        load.reproduction_gene_ops = stats.reproduction_genes
        record.speciation_comparisons = stats.speciation_comparisons
        record.best_fitness = stats.best_fitness
        record.mean_fitness = stats.mean_fitness
        record.n_species = stats.n_species
        record.population_size = stats.population_size
        record.solved = stats.solved
        self._note_best(self.population.best_genome)
        self.generation += 1
        self.records.append(record)
        return record


class CLAN_DCS(ProtocolBase):
    """Distributed inference, Central reproduction, Synchronous speciation.

    Every generation the centre ships each agent its shard of genomes
    (``Sending Genomes``), agents run inference and return fitness
    (``Sending Fitness``); speciation, planning and reproduction all happen
    on the centre (paper Fig 2b).
    """

    name = "CLAN_DCS"

    def __init__(self, env_id: str, n_agents: int, **kwargs):
        super().__init__(env_id, n_agents=n_agents, **kwargs)
        self.population = Population(self.config, seed=self.seed)

    def run_generation(self) -> GenerationRecord:
        record = self._new_record()

        def evaluate(genomes, generation):
            by_key = {g.key: g for g in genomes}
            shard_map = assign_genomes(by_key, self.n_agents)
            shards: list[list[Genome]] = [[] for _ in range(self.n_agents)]
            for key, agent in shard_map.items():
                shards[agent].append(by_key[key])
            results: dict[int, FitnessResult] = {}
            for agent, shard in enumerate(shards):
                if not shard:
                    continue
                record.messages.append(
                    Message(
                        MessageType.SENDING_GENOMES,
                        CENTER,
                        agent,
                        n_floats=sum(
                            genome_wire_floats(g) for g in shard
                        ),
                        n_genes=sum(g.gene_count() for g in shard),
                        n_units=len(shard),
                    )
                )
                load = record.agent_loads[agent]
                with obs.span(
                    "evaluate", track=f"clan:{agent}", genomes=len(shard)
                ):
                    results.update(
                        self._evaluate_block_on_agent(
                            shard, load, generation
                        )
                    )
                record.messages.append(
                    Message(
                        MessageType.SENDING_FITNESS,
                        agent,
                        CENTER,
                        n_floats=FITNESS_ENTRY_FLOATS * len(shard),
                        n_units=len(shard),
                    )
                )
            return results

        stats = self.population.run_generation(evaluate)
        record.center_speciation_gene_ops = stats.speciation_genes
        record.center_reproduction_gene_ops = stats.reproduction_genes
        record.center_planning_ops = stats.population_size
        record.speciation_comparisons = stats.speciation_comparisons
        record.best_fitness = stats.best_fitness
        record.mean_fitness = stats.mean_fitness
        record.n_species = stats.n_species
        record.population_size = stats.population_size
        record.solved = stats.solved
        self._note_best(self.population.best_genome)
        self.generation += 1
        self.records.append(record)
        return record


class CLAN_DDS(ProtocolBase):
    """Distributed inference + reproduction, Synchronous speciation.

    Children are formed *on the agents*; because speciation stays
    synchronous on the centre, every formed child must be shipped back
    (``Sending Children``) and every chosen parent shipped out
    (``Sending Parent Genomes``) when not already resident — the repeated
    back-and-forth the paper identifies as DDS's downfall (Fig 2c, Fig 4).
    """

    name = "CLAN_DDS"

    def __init__(self, env_id: str, n_agents: int, **kwargs):
        super().__init__(env_id, n_agents=n_agents, **kwargs)
        # the centre's algorithm state is a Population (same seed => same
        # trajectory as SerialNEAT); this engine adds placement on top
        self.population = Population(self.config, seed=self.seed)
        #: genome key -> agent currently holding a live copy
        self.residency: dict[int, int] = assign_genomes(
            self.population.genomes, self.n_agents
        )
        self._initial_distribution_pending = True

    def run_generation(self) -> GenerationRecord:
        record = self._new_record()

        if self._initial_distribution_pending:
            self._log_genome_shipment(
                record,
                MessageType.SENDING_GENOMES,
                self.population.genomes,
                self.residency,
            )
            self._initial_distribution_pending = False

        def evaluate(genomes, generation):
            results: dict[int, FitnessResult] = {}
            per_agent_counts = [0] * self.n_agents
            blocks: list[list[Genome]] = [[] for _ in range(self.n_agents)]
            for genome in genomes:
                agent = self.residency[genome.key]
                blocks[agent].append(genome)
                per_agent_counts[agent] += 1
            for agent, block in enumerate(blocks):
                if block:
                    with obs.span(
                        "evaluate",
                        track=f"clan:{agent}",
                        genomes=len(block),
                    ):
                        results.update(
                            self._evaluate_block_on_agent(
                                block,
                                record.agent_loads[agent],
                                generation,
                            )
                        )
            for agent, count in enumerate(per_agent_counts):
                if count:
                    record.messages.append(
                        Message(
                            MessageType.SENDING_FITNESS,
                            agent,
                            CENTER,
                            n_floats=FITNESS_ENTRY_FLOATS * count,
                            n_units=count,
                        )
                    )
            return results

        # Inference (distributed) + Speciation & planning (centre), via the
        # shared Population loop; reproduction placement is reconstructed
        # from the plan below.
        previous_genomes = dict(self.population.genomes)
        stats = self.population.run_generation(evaluate)
        plan = self.population.last_plan
        record.center_speciation_gene_ops = stats.speciation_genes
        record.center_planning_ops = stats.population_size
        record.speciation_comparisons = stats.speciation_comparisons

        self._place_reproduction(record, plan, previous_genomes)

        record.best_fitness = stats.best_fitness
        record.mean_fitness = stats.mean_fitness
        record.n_species = stats.n_species
        record.population_size = stats.population_size
        record.solved = stats.solved
        self._note_best(self.population.best_genome)
        self.generation += 1
        self.records.append(record)
        return record

    # -- placement ------------------------------------------------------------

    def _log_genome_shipment(
        self,
        record: GenerationRecord,
        msg_type: MessageType,
        genomes: dict[int, Genome],
        destination: dict[int, int],
    ) -> None:
        """Log centre -> agent genome transfers grouped per agent."""
        per_agent: dict[int, list[Genome]] = {}
        for key, genome in genomes.items():
            per_agent.setdefault(destination[key], []).append(genome)
        for agent in sorted(per_agent):
            batch = per_agent[agent]
            record.messages.append(
                Message(
                    msg_type,
                    CENTER,
                    agent,
                    n_floats=sum(genome_wire_floats(g) for g in batch),
                    n_genes=sum(g.gene_count() for g in batch),
                    n_units=len(batch),
                )
            )

    def _place_reproduction(
        self,
        record: GenerationRecord,
        plan: GenerationPlan,
        parents_view: dict[int, Genome],
    ) -> None:
        """Assign child formation to agents; log the plan/parent traffic."""
        new_population = self.population.genomes  # already formed
        child_agents = assign_genomes(
            [spec.child_key for spec in plan.children], self.n_agents
        )

        # plan messages: spawn counts + parent lists go to every agent with
        # work assigned
        children_per_agent: dict[int, list] = {}
        for spec in plan.children:
            children_per_agent.setdefault(
                child_agents[spec.child_key], []
            ).append(spec)

        new_residency: dict[int, int] = {}
        for elite_key in plan.elites:
            new_residency[elite_key] = self.residency[elite_key]

        for agent in sorted(children_per_agent):
            specs = children_per_agent[agent]
            record.messages.append(
                Message(
                    MessageType.SENDING_SPAWN_COUNT,
                    CENTER,
                    agent,
                    n_floats=SPAWN_ENTRY_FLOATS * len(plan.spawn_counts),
                )
            )
            record.messages.append(
                Message(
                    MessageType.SENDING_PARENT_LIST,
                    CENTER,
                    agent,
                    n_floats=CHILD_SPEC_FLOATS * len(specs),
                )
            )
            # parents not resident on this agent must be shipped there
            needed: dict[int, Genome] = {}
            for spec in specs:
                for parent_key in (spec.parent1_key, spec.parent2_key):
                    if parent_key is None:
                        continue
                    if self.residency.get(parent_key) != agent:
                        needed[parent_key] = parents_view[parent_key]
            if needed:
                record.messages.append(
                    Message(
                        MessageType.SENDING_PARENT_GENOMES,
                        CENTER,
                        agent,
                        n_floats=sum(
                            genome_wire_floats(g) for g in needed.values()
                        ),
                        n_genes=sum(
                            g.gene_count() for g in needed.values()
                        ),
                        n_units=len(needed),
                    )
                )

            # child formation work on this agent + children shipped back
            load = record.agent_loads[agent]
            children_floats = 0
            children_genes = 0
            for spec in specs:
                child = new_population[spec.child_key]
                genes = (
                    parents_view[spec.parent1_key].gene_count()
                    + child.gene_count()
                )
                if spec.parent2_key is not None:
                    genes += parents_view[spec.parent2_key].gene_count()
                load.reproduction_gene_ops += genes
                children_floats += genome_wire_floats(child)
                children_genes += child.gene_count()
                new_residency[spec.child_key] = agent
            record.messages.append(
                Message(
                    MessageType.SENDING_CHILDREN,
                    agent,
                    CENTER,
                    n_floats=children_floats,
                    n_genes=children_genes,
                    n_units=len(specs),
                )
            )

        self.residency = new_residency


class CLAN_DDA(ProtocolBase):
    """Distributed inference + reproduction, Asynchronous speciation.

    The population is split once into ``n_agents`` clans; each agent runs
    the full NEAT loop (I, S, planning, R) on its clan independently and
    only reports fitness to the centre. Genomes cross the network exactly
    once, at initialisation — the paper's key communication saving
    (Fig 2d, Fig 4). Optional ``resync_period`` implements the "periodic
    global speciation" the paper flags as future work: every k generations
    all clans are gathered, re-partitioned and redistributed.
    """

    name = "CLAN_DDA"

    def __init__(
        self,
        env_id: str,
        n_agents: int,
        resync_period: int | None = None,
        **kwargs,
    ):
        super().__init__(env_id, n_agents=n_agents, **kwargs)
        if self.config.pop_size < 2 * n_agents:
            raise ValueError(
                f"population of {self.config.pop_size} cannot form "
                f"{n_agents} clans of >= 2 members"
            )
        if resync_period is not None and resync_period < 1:
            raise ValueError("resync_period must be >= 1")
        self.resync_period = resync_period

        # centre builds the same initial population as serial NEAT, then
        # partitions it into contiguous clans
        seed_population = Population(self.config, seed=self.seed)
        initial = seed_population.genomes
        blocks = contiguous_blocks(sorted(initial), n_agents)

        self._clans: list[_Clan] = []
        self._initial_distribution_pending = True
        self._initial_blocks = blocks
        self._all_initial = initial
        next_key = self.config.pop_size
        for clan_id, block in enumerate(blocks):
            members = {key: initial[key] for key in block}
            self._clans.append(
                _Clan(
                    clan_id=clan_id,
                    n_clans=n_agents,
                    members=members,
                    config=self.config.evolve_with(pop_size=len(block)),
                    rngs=self.rngs.child(f"clan:{clan_id}"),
                    next_genome_key=next_key + clan_id,
                    genome_key_stride=n_agents,
                    num_outputs=self.config.num_outputs,
                )
            )

    @property
    def clan_sizes(self) -> list[int]:
        return [len(clan.members) for clan in self._clans]

    def run_generation(self) -> GenerationRecord:
        record = self._new_record()

        if self._initial_distribution_pending:
            for clan_id, block in enumerate(self._initial_blocks):
                genomes = [self._all_initial[key] for key in block]
                record.messages.append(
                    Message(
                        MessageType.SENDING_GENOMES,
                        CENTER,
                        clan_id,
                        n_floats=sum(
                            genome_wire_floats(g) for g in genomes
                        ),
                        n_genes=sum(g.gene_count() for g in genomes),
                        n_units=len(genomes),
                    )
                )
            self._initial_distribution_pending = False

        best_fitness = float("-inf")
        fitness_sum = 0.0
        total_members = 0
        n_species = 0
        solved = False
        for clan in self._clans:
            load = record.agent_loads[clan.clan_id]
            clan_best, clan_sum, clan_solved, clan_stats = (
                clan.run_generation(
                    self.generation, self, load
                )
            )
            record.speciation_comparisons += clan_stats.comparisons
            record.messages.append(
                Message(
                    MessageType.SENDING_FITNESS,
                    clan.clan_id,
                    CENTER,
                    n_floats=FITNESS_ENTRY_FLOATS * len(clan.members),
                    n_units=len(clan.members),
                )
            )
            best_fitness = max(best_fitness, clan_best)
            fitness_sum += clan_sum
            total_members += len(clan.members)
            n_species += clan_stats.n_species
            solved = solved or clan_solved
            if clan.best_genome is not None:
                self._note_best(clan.best_genome)

        if (
            self.resync_period is not None
            and self.generation > 0
            and self.generation % self.resync_period == 0
        ):
            with obs.span("resync", gen=self.generation):
                self._global_resync(record)

        record.best_fitness = best_fitness
        record.mean_fitness = fitness_sum / max(total_members, 1)
        record.n_species = n_species
        record.population_size = total_members
        record.solved = solved
        self.generation += 1
        self.records.append(record)
        return record

    def _global_resync(self, record: GenerationRecord) -> None:
        """Gather all clans, re-partition, redistribute (extension).

        Runs after the generation's local evolution, so every message is
        tagged ``phase="resync"`` — without the tag the timing models file
        the gather/redistribute under the pre-inference ``children_up`` /
        ``genomes_down`` phases and (in pipelined mode) wrongly gate the
        *next* inference start on this end-of-generation traffic.
        """
        merged: dict[int, Genome] = {}
        for clan in self._clans:
            floats = sum(
                genome_wire_floats(g) for g in clan.members.values()
            )
            genes = sum(g.gene_count() for g in clan.members.values())
            record.messages.append(
                Message(
                    MessageType.SENDING_CHILDREN,
                    clan.clan_id,
                    CENTER,
                    n_floats=floats,
                    n_genes=genes,
                    n_units=len(clan.members),
                    phase="resync",
                )
            )
            merged.update(clan.members)

        blocks = contiguous_blocks(sorted(merged), self.n_agents)
        for clan, block in zip(self._clans, blocks):
            with obs.span(
                "resync", track=f"clan:{clan.clan_id}", members=len(block)
            ):
                members = {key: merged[key] for key in block}
                floats = sum(
                    genome_wire_floats(g) for g in members.values()
                )
                genes = sum(g.gene_count() for g in members.values())
                record.messages.append(
                    Message(
                        MessageType.SENDING_GENOMES,
                        CENTER,
                        clan.clan_id,
                        n_floats=floats,
                        n_genes=genes,
                        n_units=len(members),
                        phase="resync",
                    )
                )
                clan.adopt_members(members)


class _Clan:
    """One agent's independent NEAT loop inside CLAN_DDA."""

    def __init__(
        self,
        clan_id: int,
        n_clans: int,
        members: dict[int, Genome],
        config: NEATConfig,
        rngs: RngFactory,
        next_genome_key: int,
        genome_key_stride: int,
        num_outputs: int,
    ):
        self.clan_id = clan_id
        self.members = members
        self.config = config
        self.rngs = rngs
        self.species_set = SpeciesSet(
            species_id_offset=clan_id, species_id_stride=n_clans
        )
        max_node = max(
            (genome.max_node_id() for genome in members.values()),
            default=num_outputs - 1,
        )
        self.innovation = InnovationTracker(
            next_node_id=max(max_node + 1, num_outputs),
            agent_offset=clan_id,
            agent_stride=n_clans,
        )
        self._next_key = next_genome_key
        self._key_stride = genome_key_stride
        self.best_genome: Genome | None = None

    def _allocate_key(self) -> int:
        key = self._next_key
        self._next_key += self._key_stride
        return key

    def adopt_members(self, members: dict[int, Genome]) -> None:
        """Replace the clan population after a global resync."""
        self.members = members
        self.species_set = SpeciesSet(
            species_id_offset=self.species_set._next_species_id,
            species_id_stride=self.species_set._stride,
        )
        for genome in members.values():
            self.innovation.observe_node_id(genome.max_node_id())
        self.config = self.config.evolve_with(pop_size=len(members))

    def run_generation(
        self,
        generation: int,
        protocol: "CLAN_DDA",
        load: AgentLoad,
    ) -> tuple[float, float, bool, "SpeciationStats"]:
        """One clan-local generation; returns (best, sum, solved, stats)."""
        track = f"clan:{self.clan_id}"
        solved = False
        with obs.span(
            "evaluate", track=track, gen=generation,
            genomes=len(self.members),
        ):
            results = protocol._evaluate_block_on_agent(
                list(self.members.values()), load, generation
            )
        for genome in self.members.values():
            result = results[genome.key]
            genome.fitness = result.fitness
            solved = solved or result.solved

        best = max(
            self.members.values(), key=lambda g: (g.fitness, -g.key)
        )
        if (
            self.best_genome is None
            or best.fitness > (self.best_genome.fitness or float("-inf"))
        ):
            self.best_genome = best.copy()
        fitness_sum = sum(g.fitness for g in self.members.values())

        with obs.span("speciate", track=track, gen=generation):
            speciation_stats = self.species_set.speciate(
                self.members,
                generation,
                self.config,
                self.rngs.get(f"speciate:{generation}"),
            )
        load.speciation_gene_ops += speciation_stats.genes_compared

        with obs.span("reproduce", track=track, gen=generation):
            plan = plan_generation(
                self.config,
                self.species_set,
                generation,
                self.rngs.get(f"plan:{generation}"),
                self._allocate_key,
            )
            child_rng: Callable = lambda spec: self.rngs.get(  # noqa: E731
                f"child:{generation}:{spec.child_key}"
            )
            next_members, repro_stats = execute_plan(
                plan, self.members, self.config, child_rng, self.innovation,
                np_rng=brood_rng(self.config, self.rngs, generation),
            )
        load.reproduction_gene_ops += repro_stats.genes_processed
        self.members = next_members
        self.innovation.advance_generation()
        return best.fitness, fitness_sum, solved, speciation_stats


_PROTOCOLS = {
    "Serial": SerialNEAT,
    "CLAN_DCS": CLAN_DCS,
    "CLAN_DDS": CLAN_DDS,
    "CLAN_DDA": CLAN_DDA,
}


def available_protocols() -> tuple[str, ...]:
    """Names accepted by :func:`make_protocol`."""
    return tuple(_PROTOCOLS)


def make_protocol(name: str, env_id: str, n_agents: int = 1, **kwargs):
    """Instantiate a protocol engine by name."""
    try:
        cls = _PROTOCOLS[name]
    except KeyError:
        known = ", ".join(_PROTOCOLS)
        raise KeyError(f"unknown protocol {name!r}; known: {known}") from None
    if cls is SerialNEAT:
        return cls(env_id, **kwargs)
    return cls(env_id, n_agents=n_agents, **kwargs)
