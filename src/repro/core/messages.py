"""Protocol message taxonomy.

The categories are exactly the legend of the paper's Fig 4 communication
breakdown: genomes out for inference, fitness back, spawn counts, parent
lists, parent genomes and formed children. Every protocol engine logs
:class:`Message` instances; cost models only ever aggregate them, so the
wire accounting is defined in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.cluster.serialization import WORD_BYTES

#: node id of the central coordinator in message logs
CENTER = -1


class MessageType(Enum):
    """Fig 4 legend entries."""

    #: centre -> agent: genomes shipped for inference (CLAN_DCS) or the
    #: one-off initial clan distribution (CLAN_DDA, generation 0)
    SENDING_GENOMES = "Sending Genomes"
    #: agent -> centre: one float per evaluated genome
    SENDING_FITNESS = "Sending Fitness"
    #: centre -> agent: per-species spawn counts (generation plan)
    SENDING_SPAWN_COUNT = "Sending Spawn Count"
    #: centre -> agent: per-child parent picks (generation plan)
    SENDING_PARENT_LIST = "Sending Parent List"
    #: centre -> agent: parent genome payloads for distributed reproduction
    SENDING_PARENT_GENOMES = "Sending Parent Genomes"
    #: agent -> centre: formed children for synchronous speciation
    SENDING_CHILDREN = "Sending Children"


@dataclass(frozen=True)
class Message:
    """One logical transfer between two cluster nodes.

    ``n_floats`` is the paper's Fig 4 unit ("number of floating point
    values transferred", i.e. 32-bit words); ``n_genes`` counts whole genes
    for gene-level accounting. ``n_units`` is the number of individual
    network sends the logical transfer comprises — the prototype the paper
    measures ships genomes one socket write at a time, so a shard of k
    genomes pays k per-message overheads (this is what makes communication
    the dominant share for small workloads, Fig 8).

    ``phase``, when set, overrides the barrier phase the timing models
    infer from ``msg_type``. CLAN_DDA's periodic global resync re-uses the
    ``SENDING_CHILDREN`` / ``SENDING_GENOMES`` categories (the Fig 4
    accounting is by payload kind) but happens *after* the generation's
    evolution, not before inference — those messages carry
    ``phase="resync"`` so the simulator doesn't gate inference on traffic
    from the end of the generation.
    """

    msg_type: MessageType
    src: int
    dst: int
    n_floats: int
    n_genes: int = 0
    n_units: int = 1
    phase: str | None = None

    def __post_init__(self) -> None:
        if self.n_floats < 0 or self.n_genes < 0:
            raise ValueError("message sizes cannot be negative")
        if self.n_units < 1:
            raise ValueError("a message comprises at least one send")
        if self.src == self.dst:
            raise ValueError("message source and destination are equal")

    @property
    def n_bytes(self) -> int:
        """Wire footprint in bytes (32-bit words)."""
        return self.n_floats * WORD_BYTES

    @property
    def downlink(self) -> bool:
        """True for centre -> agent transfers."""
        return self.src == CENTER


def total_floats(messages: list[Message]) -> int:
    """Total 32-bit words across ``messages``."""
    return sum(m.n_floats for m in messages)


def breakdown_by_type(messages: list[Message]) -> dict[MessageType, int]:
    """Fig 4 aggregation: floats transferred per message category."""
    out: dict[MessageType, int] = {t: 0 for t in MessageType}
    for message in messages:
        out[message.msg_type] += message.n_floats
    return out
