"""CLAN — Collaborative Learning using Asynchronous Neuroevolution.

The paper's contribution: three arrangements of the NEAT compute blocks
(Inference I, Reproduction R, Speciation S) over a centre + agents cluster,
named ``CLAN_<IRS>``:

* :class:`~repro.core.protocols.CLAN_DCS` — Distributed inference, Central
  reproduction, Synchronous speciation.
* :class:`~repro.core.protocols.CLAN_DDS` — Distributed inference and
  reproduction, Synchronous speciation.
* :class:`~repro.core.protocols.CLAN_DDA` — Distributed inference and
  reproduction, Asynchronous speciation over independent clans.

:mod:`repro.core.driver` wires a protocol to a workload and a cluster model;
:mod:`repro.core.adaptive` implements the paper's Fig 1 closed loop
(deploy expert, watch fitness, relearn on drift).
"""

from repro.core.messages import Message, MessageType
from repro.core.metrics import GenerationRecord, RunResult
from repro.core.protocols import (
    CLAN_DCS,
    CLAN_DDA,
    CLAN_DDS,
    SerialNEAT,
    make_protocol,
)
from repro.core.driver import ClanDriver, ClusterSpec
from repro.core.adaptive import AdaptiveAgent, AdaptiveLoopResult

__all__ = [
    "Message",
    "MessageType",
    "GenerationRecord",
    "RunResult",
    "SerialNEAT",
    "CLAN_DCS",
    "CLAN_DDS",
    "CLAN_DDA",
    "make_protocol",
    "ClanDriver",
    "ClusterSpec",
    "AdaptiveAgent",
    "AdaptiveLoopResult",
]
