"""The paper's Fig 1 closed loop: deploy, monitor fitness, relearn on drift.

An :class:`AdaptiveAgent` owns a deployed expert (a NEAT genome compiled to
a network). Every episode it performs the task and accumulates reward; when
the rolling fitness falls below a threshold — because the task or the
environment changed — the agent invokes collaborative learning (any CLAN
protocol) to evolve a new expert, then resumes inference with it. This is
the "Learning on autonomous agents" path of Fig 1, with zero cloud
interaction.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.analytic import ClusterSpec
from repro.core.driver import ClanDriver, TimedRun
from repro.envs.base import Environment, rollout
from repro.neat.config import NEATConfig
from repro.neat.evaluation import GenomeEvaluator
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork
from repro.utils.rng import RngFactory


@dataclass
class AdaptiveLoopResult:
    """What happened over one monitoring window."""

    episodes: int = 0
    relearn_events: int = 0
    episode_fitness: list[float] = field(default_factory=list)
    relearn_episodes: list[int] = field(default_factory=list)
    learning_runs: list[TimedRun] = field(default_factory=list)

    @property
    def final_fitness(self) -> float:
        return self.episode_fitness[-1] if self.episode_fitness else 0.0


class AdaptiveAgent:
    """Closed-loop continuous learner (paper Fig 1).

    Parameters
    ----------
    env:
        The deployment environment. The *caller* may mutate it between
        episodes (e.g. change physics constants) to model environment
        drift; the agent only observes the fitness consequences.
    cluster:
        Cluster available for collaborative relearning.
    fitness_threshold:
        Rolling mean fitness below which relearning is triggered.
    window:
        Number of recent episodes in the rolling fitness estimate.
    """

    def __init__(
        self,
        env: Environment,
        cluster: ClusterSpec,
        fitness_threshold: float,
        window: int = 5,
        protocol: str = "CLAN_DDA",
        config: NEATConfig | None = None,
        seed: int = 0,
        relearn_generations: int = 50,
        relearn_target: float | None = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.env = env
        self.cluster = cluster
        self.fitness_threshold = fitness_threshold
        self.window = window
        self.protocol = protocol
        self.config = config or NEATConfig.for_env(env.env_id)
        self.seed = seed
        self.relearn_generations = relearn_generations
        self.relearn_target = (
            relearn_target if relearn_target is not None else fitness_threshold
        )
        self.expert: Genome | None = None
        self._network: FeedForwardNetwork | None = None
        self._recent: deque[float] = deque(maxlen=window)
        self._relearn_count = 0

    # -- expert management -------------------------------------------------

    def deploy(self, expert: Genome) -> None:
        """Install a trained expert (the Fig 1 'Deployment' arrow)."""
        self.expert = expert
        self._network = FeedForwardNetwork.create(expert, self.config)
        self._recent.clear()

    @property
    def rolling_fitness(self) -> float:
        """Mean fitness over the recent window (inf when no data yet)."""
        if not self._recent:
            return float("inf")
        return sum(self._recent) / len(self._recent)

    def needs_relearning(self) -> bool:
        """Fig 1 decision diamond: has the expert deteriorated?"""
        return (
            len(self._recent) >= self.window
            and self.rolling_fitness < self.fitness_threshold
        )

    # -- the closed loop ----------------------------------------------------

    def run_episode(self, seed: int | None = None) -> float:
        """Perform the task once with the deployed expert; track fitness."""
        if self._network is None:
            raise RuntimeError("no expert deployed; call deploy() or learn()")
        result = rollout(self.env, self._network.policy, seed=seed)
        self._recent.append(result.fitness)
        return result.fitness

    def learn(self) -> TimedRun:
        """Invoke collaborative learning and deploy the new expert.

        Learning happens inside a *copy of the deployed environment* — if
        the physics drifted, the new expert is evolved against the drifted
        dynamics, not the pristine registry environment.
        """
        self._relearn_count += 1
        seed = self.seed + 1000 * self._relearn_count
        evaluator = GenomeEvaluator(
            self.env.env_id,
            seed=RngFactory(seed).seed_for("episodes") % (2**31),
            env_factory=lambda: copy.deepcopy(self.env),
        )
        driver = ClanDriver(
            self.env.env_id,
            self.cluster,
            protocol=self.protocol,
            config=self.config,
            seed=seed,
            evaluator=evaluator,
        )
        run = driver.learn(
            max_generations=self.relearn_generations,
            fitness_threshold=self.relearn_target,
        )
        if run.best_genome is None:
            raise RuntimeError("learning produced no genome")
        self.deploy(run.best_genome)
        return run

    def live(
        self, episodes: int, episode_seed_base: int = 0
    ) -> AdaptiveLoopResult:
        """Run the full Fig 1 loop for ``episodes`` task executions.

        If no expert is deployed yet, one is learned first (not counted as
        a relearn event).
        """
        outcome = AdaptiveLoopResult()
        if self._network is None:
            outcome.learning_runs.append(self.learn())
        for episode in range(episodes):
            fitness = self.run_episode(seed=episode_seed_base + episode)
            outcome.episodes += 1
            outcome.episode_fitness.append(fitness)
            if self.needs_relearning():
                outcome.relearn_events += 1
                outcome.relearn_episodes.append(episode)
                outcome.learning_runs.append(self.learn())
        return outcome
