"""Per-generation records and run summaries for the CLAN protocols.

A :class:`GenerationRecord` captures everything a timing model needs about
one distributed generation: how much of each compute block ran where, and
every message that crossed the network. Records are produced by the
protocol engines (:mod:`repro.core.protocols`) and by the placement cost
model (:mod:`repro.core.placement`), and consumed by the analytic timing
model and the discrete-event simulator in :mod:`repro.cluster`.

The serving-side counterparts live at the bottom: :func:`percentile` and
:class:`ServiceStats` summarise what the inference gateway
(:mod:`repro.serve`) observed — request latencies, throughput, and how
well micro-batching coalesced traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.messages import Message, MessageType, breakdown_by_type


@dataclass
class ChurnStats:
    """Device-churn counters for a fault-tolerant run.

    Filled by the supervision loop of
    :class:`repro.cluster.runtime.DistributedClanRuntime` (see
    ``docs/fault_tolerance.md``); logical protocol engines never
    experience churn and leave every counter at zero.
    """

    #: worker processes observed dead (pipe EOF / SIGKILL) or killed
    #: after a missed heartbeat window
    deaths: int = 0
    #: successful respawn-from-checkpoint recoveries
    respawns: int = 0
    #: clans abandoned after exhausting their respawn budget
    clans_lost: int = 0
    #: completed-but-uncheckpointed generations that had to be re-run
    #: (or were abandoned with a lost clan)
    lost_generations: int = 0
    #: generation budget of lost clans re-assigned to surviving clans
    reassigned_generations: int = 0
    #: seconds from failure detection to the respawned clan resuming,
    #: one entry per respawn
    recovery_latency_s: list[float] = field(default_factory=list)

    def mean_recovery_latency_s(self) -> float:
        """Mean respawn recovery latency (0.0 when nothing respawned)."""
        if not self.recovery_latency_s:
            return 0.0
        return sum(self.recovery_latency_s) / len(self.recovery_latency_s)

    def __bool__(self) -> bool:
        """True when any churn happened (deaths drive every other
        counter, so they are the sentinel)."""
        return self.deaths > 0


@dataclass
class AgentLoad:
    """Compute placed on one agent during one generation (cost units)."""

    #: forward-pass work: sum over evaluated genomes of genes * steps
    inference_gene_ops: int = 0
    #: environment simulation steps executed
    env_steps: int = 0
    #: child-formation work in gene-ops (CLAN_DDS / CLAN_DDA)
    reproduction_gene_ops: int = 0
    #: distance-comparison work in gene-ops (CLAN_DDA clans)
    speciation_gene_ops: int = 0
    #: genomes evaluated on this agent
    genomes_evaluated: int = 0

    def total_gene_ops(self) -> int:
        return (
            self.inference_gene_ops
            + self.reproduction_gene_ops
            + self.speciation_gene_ops
        )


@dataclass
class GenerationRecord:
    """One distributed generation: placement of compute + all messages."""

    generation: int
    protocol: str
    n_agents: int
    # per-agent placed compute, index = agent id (0..n_agents-1)
    agent_loads: list[AgentLoad] = field(default_factory=list)
    # compute blocks that ran on the centre
    center_speciation_gene_ops: int = 0
    center_reproduction_gene_ops: int = 0
    center_planning_ops: int = 0
    messages: list[Message] = field(default_factory=list)
    # population-level outcome (mirrors neat GenerationStats)
    best_fitness: float = float("-inf")
    mean_fitness: float = 0.0
    n_species: int = 0
    population_size: int = 0
    solved: bool = False
    #: distance comparisons computed this generation (Fig 3c cost unit
    #: alongside the speciation gene-ops; summed over clans for DDA)
    speciation_comparisons: int = 0
    #: clan deaths observed while this generation was in flight (always
    #: 0 for logical engines; filled by fault-injected replays of the
    #: live runtime — see docs/fault_tolerance.md)
    clan_deaths: int = 0
    #: respawn-from-checkpoint recoveries during this generation
    clan_respawns: int = 0

    def comm_floats(self) -> int:
        """Total 32-bit words transferred this generation."""
        return sum(m.n_floats for m in self.messages)

    def comm_breakdown(self) -> dict[MessageType, int]:
        """Fig 4 aggregation for this generation."""
        return breakdown_by_type(self.messages)

    def total_inference_gene_ops(self) -> int:
        return sum(load.inference_gene_ops for load in self.agent_loads)

    def total_env_steps(self) -> int:
        return sum(load.env_steps for load in self.agent_loads)

    def total_evolution_gene_ops(self) -> int:
        """All non-inference gene-ops, wherever they ran."""
        distributed = sum(
            load.reproduction_gene_ops + load.speciation_gene_ops
            for load in self.agent_loads
        )
        return (
            distributed
            + self.center_speciation_gene_ops
            + self.center_reproduction_gene_ops
        )

    def total_speciation_gene_ops(self) -> int:
        """Speciation gene-ops, wherever they ran (Fig 3c)."""
        return self.center_speciation_gene_ops + sum(
            load.speciation_gene_ops for load in self.agent_loads
        )

    def slowest_agent(self) -> int:
        """Agent id carrying the most placed gene-ops this generation."""
        if not self.agent_loads:
            raise ValueError("record places no agent load")
        return max(
            range(len(self.agent_loads)),
            key=lambda i: self.agent_loads[i].total_gene_ops(),
        )

    def load_imbalance(self) -> float:
        """Max-over-mean placed gene-ops across agents (1.0 = balanced).

        A straggler-heavy generation — the regime where barrier-free
        execution beats barrier synchronisation — shows up as a ratio
        well above 1; the async benchmark and docs use this to
        characterise specs.
        """
        totals = [load.total_gene_ops() for load in self.agent_loads]
        if not totals or sum(totals) == 0:
            return 1.0
        return max(totals) / (sum(totals) / len(totals))


@dataclass
class RunResult:
    """Outcome of a multi-generation protocol run."""

    protocol: str
    env_id: str
    n_agents: int
    records: list[GenerationRecord] = field(default_factory=list)
    converged: bool = False
    generations_to_converge: int | None = None
    best_fitness: float = float("-inf")
    #: compiled-plan cache counters over the whole run (batched backend
    #: only; both stay 0 when no :class:`repro.neat.network.PlanCache`
    #: is in play)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: device-churn counters over the run (all-zero for logical engines;
    #: the live runtime's supervision loop fills its own copy on
    #: :class:`repro.cluster.runtime.RealRunStats` and fault-injected
    #: replays can aggregate theirs here)
    churn: ChurnStats = field(default_factory=ChurnStats)

    @property
    def generations(self) -> int:
        return len(self.records)

    # -- Fig 3c cost counters, aggregated over the run --------------------

    def total_speciation_comparisons(self) -> int:
        return sum(r.speciation_comparisons for r in self.records)

    def total_speciation_gene_ops(self) -> int:
        return sum(r.total_speciation_gene_ops() for r in self.records)

    # -- churn counters, aggregated over the run --------------------------

    def total_clan_deaths(self) -> int:
        """Per-record deaths if any record carries them, else the run
        total from :attr:`churn` (the two sources are alternatives)."""
        per_record = sum(r.clan_deaths for r in self.records)
        return per_record if per_record else self.churn.deaths

    def total_clan_respawns(self) -> int:
        per_record = sum(r.clan_respawns for r in self.records)
        return per_record if per_record else self.churn.respawns

    def final_n_species(self) -> int:
        """Species count in the last generation (0 for an empty run)."""
        return self.records[-1].n_species if self.records else 0

    def plan_cache_hit_rate(self) -> float:
        """Hits / lookups over the run (0.0 when the cache never ran)."""
        lookups = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / lookups if lookups else 0.0

    def total_comm_floats(self) -> int:
        return sum(r.comm_floats() for r in self.records)

    def comm_breakdown(self) -> dict[MessageType, int]:
        """Fig 4 aggregation across the whole run."""
        totals: dict[MessageType, int] = {t: 0 for t in MessageType}
        for record in self.records:
            for msg_type, floats in record.comm_breakdown().items():
                totals[msg_type] += floats
        return totals

    def mean_comm_floats_per_generation(self) -> float:
        if not self.records:
            return 0.0
        return self.total_comm_floats() / len(self.records)


# -- serving-side metrics -----------------------------------------------------


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Nearest-rank keeps the result an *observed* value (no interpolation
    between two latencies that never happened); empty input yields 0.0 so
    a gateway that has served nothing reports a zeroed summary rather
    than raising mid-scrape.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of an inference gateway's service quality.

    Produced by :meth:`repro.serve.gateway.InferenceGateway.stats`;
    rendered by ``repro serve`` and dumped (as JSON) by
    ``benchmarks/bench_serving_latency.py``. Fleet-wide rollups come
    from :meth:`merge`, which re-ranks the *raw* latency reservoirs of
    the parts — percentiles of percentiles would be meaningless.
    """

    #: requests accepted into the batching queue
    requests: int
    #: requests answered (== requests once the gateway has drained)
    served: int
    #: requests rejected because the pending queue was full
    shed: int
    #: served / seconds-since-start (0 before the first request)
    qps: float
    #: median submit-to-answer latency, seconds
    p50_latency_s: float
    #: 95th-percentile submit-to-answer latency, seconds
    p95_latency_s: float
    #: batch size -> number of forward passes flushed at that size
    batch_size_histogram: dict[int, int] = field(default_factory=dict)
    #: registry version currently deployed (0 = nothing published)
    champion_version: int = 0
    #: champion deployment changes since the first publish
    swaps: int = 0
    #: the raw (bounded) latency reservoir behind the percentiles, in
    #: answer order — carried so rollups can merge reservoirs instead
    #: of averaging per-part percentiles
    latency_window: tuple[float, ...] = ()

    @classmethod
    def merge(cls, parts: Sequence["ServiceStats"]) -> "ServiceStats":
        """Roll per-replica snapshots up into one fleet-wide snapshot.

        Counters and qps sum (the replicas serve disjoint request
        streams over the same wall-clock window); p50/p95 are recomputed
        by nearest rank over the **concatenated raw reservoirs** — the
        only correct way to combine quantiles from skewed replicas.
        ``champion_version``/``swaps`` take the max (with monotone
        propagation every replica converges to the same deployment; the
        max is the most recent state any replica has acked). An empty
        ``parts`` yields an all-zero snapshot.
        """
        parts = [p for p in parts if p is not None]
        if not parts:
            return cls(
                requests=0,
                served=0,
                shed=0,
                qps=0.0,
                p50_latency_s=0.0,
                p95_latency_s=0.0,
            )
        window: list[float] = []
        histogram: dict[int, int] = {}
        for part in parts:
            window.extend(part.latency_window)
            for size, count in part.batch_size_histogram.items():
                histogram[size] = histogram.get(size, 0) + count
        return cls(
            requests=sum(p.requests for p in parts),
            served=sum(p.served for p in parts),
            shed=sum(p.shed for p in parts),
            qps=sum(p.qps for p in parts),
            p50_latency_s=percentile(window, 50),
            p95_latency_s=percentile(window, 95),
            batch_size_histogram=histogram,
            champion_version=max(p.champion_version for p in parts),
            swaps=max(p.swaps for p in parts),
            latency_window=tuple(window),
        )

    @property
    def mean_batch_size(self) -> float:
        """Requests per forward pass actually achieved (1.0 = no
        coalescing; the micro-batching speedup scales with this)."""
        flushes = sum(self.batch_size_histogram.values())
        if flushes == 0:
            return 0.0
        weighted = sum(
            size * count
            for size, count in self.batch_size_histogram.items()
        )
        return weighted / flushes
