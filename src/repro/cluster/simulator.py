"""Event-driven cluster simulator.

Executes a :class:`~repro.core.metrics.GenerationRecord` as timed events on
a modelled cluster: agents compute in parallel on their own device
resources while every transfer serialises through the centre's WiFi radio.
Phases are barrier-synchronised exactly as in the paper's Fig 2 time-lines,
so in ``barrier`` mode the simulator reproduces the analytic model of
:mod:`repro.cluster.analytic` (tests assert agreement to <0.1 %).

Beyond validation, two relaxed execution modes are supported:

* ``pipelined`` — each agent starts inference as soon as *its* genome
  shipment lands instead of waiting for the full distribution phase — the
  kind of overlap optimisation the paper leaves to algorithm-hardware
  co-design. The ablation benchmark quantifies what it would buy.
* ``async`` — the paper's headline design point, barrier-free CLAN_DDA:
  every clan's compute chain (inference -> local evolution) advances on
  its own clock, only fitness reports serialise through the centre radio,
  and there is no per-phase synchronisation cost. The generation "ends"
  when the slowest clan's report lands; fast clans are already evolving
  (and, across :meth:`GenerationSimulator.simulate_run`, already running
  their next generation). Heterogeneous fleets — ``ClusterSpec`` with
  per-agent ``agent_devices`` — are where the two modes diverge most; see
  ``docs/asynchrony.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.analytic import (
    ClusterSpec,
    effective_evolution_gene_ops,
)
from repro.cluster.events import EventQueue, Resource
from repro.core.messages import CENTER, Message, MessageType
from repro.core.metrics import GenerationRecord

#: phase execution order within one generation (barrier after each);
#: ``resync`` carries CLAN_DDA's optional end-of-generation gather /
#: redistribute traffic, which must run *after* the compute phases
_PHASE_ORDER = (
    "genomes_down",
    "inference",
    "fitness_up",
    "center_evolution",
    "plan_down",
    "agent_evolution",
    "children_up",
    "resync",
)

_COMM_PHASE_OF_TYPE = {
    MessageType.SENDING_GENOMES: "genomes_down",
    MessageType.SENDING_FITNESS: "fitness_up",
    MessageType.SENDING_SPAWN_COUNT: "plan_down",
    MessageType.SENDING_PARENT_LIST: "plan_down",
    MessageType.SENDING_PARENT_GENOMES: "plan_down",
    MessageType.SENDING_CHILDREN: "children_up",
}

MODES = ("barrier", "pipelined", "async")


def _phase_of(message: Message) -> str:
    """The barrier phase a message executes in (explicit tag wins)."""
    return message.phase or _COMM_PHASE_OF_TYPE[message.msg_type]


@dataclass
class SimulatedGeneration:
    """Timing produced by one simulated generation.

    ``clan_finish_s`` / ``clan_ready_s`` / ``straggler_gap_s`` are filled
    by ``async`` mode only: when each clan's fitness report landed at the
    centre, when each clan may start its next generation (local evolution
    done, resync barrier passed), and the spread between the first and the
    last report — the time barrier execution would have burned waiting.
    In async runs these clocks are absolute (they carry across
    generations), so ``total_s`` is the cumulative makespan, not a
    per-generation duration.
    """

    total_s: float
    phase_end_s: dict[str, float] = field(default_factory=dict)
    radio_busy_s: float = 0.0
    agent_busy_s: list[float] = field(default_factory=list)
    events_processed: int = 0
    clan_finish_s: list[float] = field(default_factory=list)
    clan_ready_s: list[float] = field(default_factory=list)
    straggler_gap_s: float = 0.0
    #: share of this generation's simulated window the centre radio spent
    #: idle (1 - busy/window); the async claim is that the radio, not the
    #: devices, stops being the bottleneck
    radio_idle_share: float = 0.0

    def phase_duration(self, phase: str, previous: float) -> float:
        return self.phase_end_s.get(phase, previous) - previous


class GenerationSimulator:
    """Simulates generation records on a cluster spec."""

    def __init__(
        self,
        spec: ClusterSpec,
        pi_env_step_s: float,
        mode: str = "barrier",
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.spec = spec
        self.pi_env_step_s = pi_env_step_s
        self.mode = mode

    # -- cost helpers --------------------------------------------------------

    def _send_cost(self, message: Message) -> float:
        """Radio occupancy of one logical message (all its unit sends)."""
        link = self.spec.link
        per_unit = link.channel_setup_s + link.base_latency_s
        return (
            message.n_units * per_unit
            + message.n_bytes * 8 / link.bandwidth_bps
        )

    def _sync_cost(self) -> float:
        """Per-phase synchronisation occupancy at the centre."""
        return self.spec.phase_sync_s * self.spec.n_agents**2

    def _inference_duration(self, record: GenerationRecord, agent: int):
        load = record.agent_loads[agent]
        device = self.spec.device_for(agent)
        return (
            device.inference_time(load.inference_gene_ops)
            + load.env_steps * device.env_step_time(self.pi_env_step_s)
        )

    def _agent_evolution_duration(self, record: GenerationRecord, agent: int):
        load = record.agent_loads[agent]
        return self.spec.device_for(agent).evolution_time(
            effective_evolution_gene_ops(
                load.speciation_gene_ops, load.reproduction_gene_ops
            )
        )

    def _center_evolution_duration(self, record: GenerationRecord) -> float:
        return self.spec.center.evolution_time(
            effective_evolution_gene_ops(
                record.center_speciation_gene_ops,
                record.center_reproduction_gene_ops,
                record.center_planning_ops,
            )
        )

    # -- simulation -----------------------------------------------------------

    def simulate(
        self,
        record: GenerationRecord,
        clan_start: list[float] | None = None,
    ) -> SimulatedGeneration:
        """Run one generation through the event engine.

        ``clan_start`` (async mode only) gives each clan's absolute ready
        time, letting :meth:`simulate_run` chain generations without a
        global barrier between them.
        """
        if self.mode == "async":
            return self._simulate_async(record, clan_start)
        if clan_start is not None:
            raise ValueError("clan_start is only meaningful in async mode")
        return self._simulate_barrier(record)

    def _simulate_barrier(
        self, record: GenerationRecord
    ) -> SimulatedGeneration:
        """Barrier / pipelined execution: one global clock, phase order."""
        queue = EventQueue()
        radio = Resource("center-radio")
        agents = [
            Resource(f"agent-{i}") for i in range(self.spec.n_agents)
        ]

        comm_phases: dict[str, list[Message]] = {}
        for message in record.messages:
            comm_phases.setdefault(_phase_of(message), []).append(message)

        phase_end: dict[str, float] = {}
        #: inference release time per agent in pipelined mode
        genome_arrival = [0.0] * self.spec.n_agents
        barrier = 0.0

        for phase in _PHASE_ORDER:
            if phase == "inference":
                ends = []
                for i, resource in enumerate(agents):
                    duration = self._inference_duration(record, i)
                    if duration == 0:
                        continue
                    earliest = (
                        genome_arrival[i]
                        if self.mode == "pipelined"
                        and "genomes_down" in comm_phases
                        else barrier
                    )
                    _start, end = resource.acquire(
                        earliest, duration, "inference"
                    )
                    ends.append(end)
                if ends:
                    barrier = max(ends)
                    phase_end[phase] = barrier
            elif phase == "agent_evolution":
                ends = []
                for i, resource in enumerate(agents):
                    duration = self._agent_evolution_duration(record, i)
                    if duration == 0:
                        continue
                    _start, end = resource.acquire(
                        barrier, duration, "evolution"
                    )
                    ends.append(end)
                if ends:
                    barrier = max(ends)
                    phase_end[phase] = barrier
            elif phase == "center_evolution":
                duration = self._center_evolution_duration(record)
                if duration > 0:
                    _start, end = radio.acquire(  # centre CPU; reuse slot
                        barrier, 0.0, "evolution-marker"
                    )
                    barrier = barrier + duration
                    phase_end[phase] = barrier
            else:
                messages = comm_phases.get(phase)
                if not messages:
                    continue
                phase_start = barrier
                ends = []
                for message in messages:
                    _start, end = radio.acquire(
                        phase_start, self._send_cost(message), phase
                    )
                    ends.append(end)
                    if (
                        phase == "genomes_down"
                        and message.dst != CENTER
                        and 0 <= message.dst < self.spec.n_agents
                    ):
                        genome_arrival[message.dst] = end
                _start, end = radio.acquire(
                    phase_start, self._sync_cost(), f"{phase}-sync"
                )
                ends.append(end)
                barrier = max(ends)
                phase_end[phase] = barrier

        # flush the (empty) event queue so the clock is consistent
        queue.schedule(barrier, lambda: None, "generation-end")
        total = queue.run()

        return SimulatedGeneration(
            total_s=total,
            phase_end_s=phase_end,
            radio_busy_s=radio.busy_time,
            agent_busy_s=[a.busy_time for a in agents],
            events_processed=queue.processed,
            radio_idle_share=(
                1.0 - radio.busy_time / total if total > 0 else 0.0
            ),
        )

    def _check_async_record(self, record: GenerationRecord) -> None:
        """Async mode models CLAN_DDA-shaped generations only."""
        if (
            record.center_speciation_gene_ops
            or record.center_reproduction_gene_ops
            or record.center_planning_ops
        ):
            raise ValueError(
                "async mode cannot simulate centre-side evolution "
                f"(record from protocol {record.protocol!r}); it models "
                "CLAN_DDA-shaped generations where clans evolve locally"
            )
        for message in record.messages:
            phase = _phase_of(message)
            if phase in ("plan_down", "children_up"):
                raise ValueError(
                    f"async mode cannot simulate {phase!r} traffic "
                    f"(record from protocol {record.protocol!r}); "
                    "synchronous generation plans imply a global barrier"
                )
        if len(record.agent_loads) != self.spec.n_agents:
            raise ValueError(
                f"record places load on {len(record.agent_loads)} agents "
                f"but the spec has {self.spec.n_agents}"
            )

    def _simulate_async(
        self,
        record: GenerationRecord,
        clan_start: list[float] | None,
        radio: Resource | None = None,
    ) -> SimulatedGeneration:
        """Barrier-free execution: per-clan clocks, radio-only contention.

        Per clan: (genome arrival if any shipment is logged) -> inference
        on the clan's own device -> fitness report through the centre
        radio (first-come first-served) -> local evolution, which does
        *not* wait for the radio. An optional ``resync`` phase is the one
        global barrier: all clans gather, the centre redistributes, and
        every clan restarts on the redistribute's completion.

        ``radio`` lets :meth:`simulate_run` share one radio across
        generations: clan clocks are absolute, so a report from a fast
        clan's next generation must queue behind a straggler's previous
        one still on the air.
        """
        self._check_async_record(record)
        n = self.spec.n_agents
        starts = list(clan_start) if clan_start is not None else [0.0] * n
        if len(starts) != n:
            raise ValueError(
                f"{len(starts)} clan_start entries for {n} agents"
            )

        if radio is None:
            radio = Resource("center-radio")
        radio_busy_before = radio.busy_time
        agents = [Resource(f"agent-{i}") for i in range(n)]
        window_start = min(starts)

        genome_msgs: list[Message] = []
        fitness_msgs: dict[int, list[Message]] = {}
        resync_msgs: list[Message] = []
        for message in record.messages:
            phase = _phase_of(message)
            if phase == "resync":
                resync_msgs.append(message)
            elif phase == "genomes_down":
                genome_msgs.append(message)
            else:  # fitness_up (the only other phase the check allows)
                fitness_msgs.setdefault(message.src, []).append(message)

        phase_end: dict[str, float] = {}

        # initial clan distribution (generation 0 / post-resync records):
        # the centre's radio serialises the shipments
        arrival: dict[int, float] = {}
        for message in genome_msgs:
            _start, end = radio.acquire(
                window_start, self._send_cost(message), "genomes_down"
            )
            if message.dst != CENTER and 0 <= message.dst < n:
                arrival[message.dst] = max(
                    arrival.get(message.dst, 0.0), end
                )
        if genome_msgs:
            phase_end["genomes_down"] = max(
                arrival.values(), default=window_start
            )

        # inference on each clan's own clock and device
        inference_end = [0.0] * n
        for i in range(n):
            ready = max(starts[i], arrival.get(i, starts[i]))
            duration = self._inference_duration(record, i)
            if duration > 0:
                _start, end = agents[i].acquire(ready, duration, "inference")
                inference_end[i] = end
            else:
                inference_end[i] = ready
        phase_end["inference"] = max(inference_end)

        # fitness reports serialise through the radio in arrival order
        report_end = list(inference_end)
        for i in sorted(range(n), key=lambda i: inference_end[i]):
            for message in fitness_msgs.get(i, ()):
                _start, end = radio.acquire(
                    inference_end[i], self._send_cost(message), "fitness_up"
                )
                report_end[i] = end
        if fitness_msgs:
            phase_end["fitness_up"] = max(report_end)

        # local evolution advances without waiting for the radio
        evolution_end = list(inference_end)
        for i in range(n):
            duration = self._agent_evolution_duration(record, i)
            if duration > 0:
                _start, end = agents[i].acquire(
                    inference_end[i], duration, "evolution"
                )
                evolution_end[i] = end
        if any(
            evo > inf for evo, inf in zip(evolution_end, inference_end)
        ):
            phase_end["agent_evolution"] = max(evolution_end)

        # optional global resync: gather + redistribute is a true barrier
        clan_ready = list(evolution_end)
        if resync_msgs:
            gate = max(max(evolution_end), max(report_end))
            end = gate
            for message in resync_msgs:
                _start, end = radio.acquire(
                    gate, self._send_cost(message), "resync"
                )
            phase_end["resync"] = end
            clan_ready = [end] * n

        # unlike the barrier path there is no event queue to flush: every
        # clock above is a Resource booking, so the makespan is direct
        total = max(max(clan_ready), max(report_end))
        window = total - window_start
        radio_busy = radio.busy_time - radio_busy_before

        return SimulatedGeneration(
            total_s=total,
            phase_end_s=phase_end,
            radio_busy_s=radio_busy,
            agent_busy_s=[a.busy_time for a in agents],
            clan_finish_s=report_end,
            clan_ready_s=clan_ready,
            straggler_gap_s=max(report_end) - min(report_end),
            radio_idle_share=(
                1.0 - radio_busy / window if window > 0 else 0.0
            ),
        )

    def simulate_run(
        self, records: list[GenerationRecord]
    ) -> list[SimulatedGeneration]:
        """Simulate every generation of a run.

        In ``barrier`` / ``pipelined`` mode generations are independent
        (each starts at t=0). In ``async`` mode each clan's ready time
        carries into the next generation — the barrier-free pipeline the
        paper's "A" stands for — so the returned generations share one
        absolute clock and the last ``total_s`` is the run's makespan.
        """
        if self.mode != "async":
            return [self.simulate(record) for record in records]
        out: list[SimulatedGeneration] = []
        clan_start: list[float] | None = None
        # one radio for the whole run: reports from a fast clan's next
        # generation queue behind a straggler's previous one
        radio = Resource("center-radio")
        for record in records:
            sim = self._simulate_async(record, clan_start, radio=radio)
            out.append(sim)
            clan_start = list(sim.clan_ready_s)
        return out

    def aggregate_total(
        self, sims: list[SimulatedGeneration]
    ) -> float:
        """Run total for generations produced by :meth:`simulate_run`.

        Barrier-family modes sum per-generation durations; async
        generations share one absolute clock, so the run total is the
        last makespan (when the slowest clan's final report lands / its
        last local evolution ends). Kept here so every consumer (CLI,
        driver, benchmarks) aggregates the same way.
        """
        if not sims:
            return 0.0
        if self.mode == "async":
            return sims[-1].total_s
        return sum(g.total_s for g in sims)

    def total_time(self, records: list[GenerationRecord]) -> float:
        """Total simulated wall-clock across a run."""
        return self.aggregate_total(self.simulate_run(records))
