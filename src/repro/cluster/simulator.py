"""Event-driven cluster simulator.

Executes a :class:`~repro.core.metrics.GenerationRecord` as timed events on
a modelled cluster: agents compute in parallel on their own device
resources while every transfer serialises through the centre's WiFi radio.
Phases are barrier-synchronised exactly as in the paper's Fig 2 time-lines,
so in ``barrier`` mode the simulator reproduces the analytic model of
:mod:`repro.cluster.analytic` (tests assert agreement to <0.1 %).

Beyond validation, the simulator supports ``pipelined`` mode, where each
agent starts inference as soon as *its* genome shipment lands instead of
waiting for the full distribution phase — the kind of overlap optimisation
the paper leaves to algorithm-hardware co-design. The ablation benchmark
quantifies what it would buy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.analytic import (
    ClusterSpec,
    effective_evolution_gene_ops,
)
from repro.cluster.events import EventQueue, Resource
from repro.core.messages import CENTER, Message, MessageType
from repro.core.metrics import GenerationRecord

#: phase execution order within one generation (barrier after each)
_PHASE_ORDER = (
    "genomes_down",
    "inference",
    "fitness_up",
    "center_evolution",
    "plan_down",
    "agent_evolution",
    "children_up",
)

_COMM_PHASE_OF_TYPE = {
    MessageType.SENDING_GENOMES: "genomes_down",
    MessageType.SENDING_FITNESS: "fitness_up",
    MessageType.SENDING_SPAWN_COUNT: "plan_down",
    MessageType.SENDING_PARENT_LIST: "plan_down",
    MessageType.SENDING_PARENT_GENOMES: "plan_down",
    MessageType.SENDING_CHILDREN: "children_up",
}


@dataclass
class SimulatedGeneration:
    """Timing produced by one simulated generation."""

    total_s: float
    phase_end_s: dict[str, float] = field(default_factory=dict)
    radio_busy_s: float = 0.0
    agent_busy_s: list[float] = field(default_factory=list)
    events_processed: int = 0

    def phase_duration(self, phase: str, previous: float) -> float:
        return self.phase_end_s.get(phase, previous) - previous


class GenerationSimulator:
    """Simulates generation records on a cluster spec."""

    def __init__(
        self,
        spec: ClusterSpec,
        pi_env_step_s: float,
        mode: str = "barrier",
    ):
        if mode not in ("barrier", "pipelined"):
            raise ValueError("mode must be 'barrier' or 'pipelined'")
        self.spec = spec
        self.pi_env_step_s = pi_env_step_s
        self.mode = mode

    # -- cost helpers --------------------------------------------------------

    def _send_cost(self, message: Message) -> float:
        """Radio occupancy of one logical message (all its unit sends)."""
        link = self.spec.link
        per_unit = link.channel_setup_s + link.base_latency_s
        return (
            message.n_units * per_unit
            + message.n_bytes * 8 / link.bandwidth_bps
        )

    def _sync_cost(self) -> float:
        """Per-phase synchronisation occupancy at the centre."""
        return self.spec.phase_sync_s * self.spec.n_agents**2

    def _inference_duration(self, record: GenerationRecord, agent: int):
        load = record.agent_loads[agent]
        device = self.spec.agent_device
        return (
            device.inference_time(load.inference_gene_ops)
            + load.env_steps * device.env_step_time(self.pi_env_step_s)
        )

    def _agent_evolution_duration(self, record: GenerationRecord, agent: int):
        load = record.agent_loads[agent]
        return self.spec.agent_device.evolution_time(
            effective_evolution_gene_ops(
                load.speciation_gene_ops, load.reproduction_gene_ops
            )
        )

    def _center_evolution_duration(self, record: GenerationRecord) -> float:
        return self.spec.center.evolution_time(
            effective_evolution_gene_ops(
                record.center_speciation_gene_ops,
                record.center_reproduction_gene_ops,
                record.center_planning_ops,
            )
        )

    # -- simulation -----------------------------------------------------------

    def simulate(self, record: GenerationRecord) -> SimulatedGeneration:
        """Run one generation through the event engine."""
        queue = EventQueue()
        radio = Resource("center-radio")
        agents = [
            Resource(f"agent-{i}") for i in range(self.spec.n_agents)
        ]

        comm_phases: dict[str, list[Message]] = {}
        for message in record.messages:
            phase = _COMM_PHASE_OF_TYPE[message.msg_type]
            comm_phases.setdefault(phase, []).append(message)

        phase_end: dict[str, float] = {}
        #: inference release time per agent in pipelined mode
        genome_arrival = [0.0] * self.spec.n_agents
        barrier = 0.0

        for phase in _PHASE_ORDER:
            if phase == "inference":
                ends = []
                for i, resource in enumerate(agents):
                    duration = self._inference_duration(record, i)
                    if duration == 0:
                        continue
                    earliest = (
                        genome_arrival[i]
                        if self.mode == "pipelined"
                        and "genomes_down" in comm_phases
                        else barrier
                    )
                    _start, end = resource.acquire(
                        earliest, duration, "inference"
                    )
                    ends.append(end)
                if ends:
                    barrier = max(ends)
                    phase_end[phase] = barrier
            elif phase == "agent_evolution":
                ends = []
                for i, resource in enumerate(agents):
                    duration = self._agent_evolution_duration(record, i)
                    if duration == 0:
                        continue
                    _start, end = resource.acquire(
                        barrier, duration, "evolution"
                    )
                    ends.append(end)
                if ends:
                    barrier = max(ends)
                    phase_end[phase] = barrier
            elif phase == "center_evolution":
                duration = self._center_evolution_duration(record)
                if duration > 0:
                    _start, end = radio.acquire(  # centre CPU; reuse slot
                        barrier, 0.0, "evolution-marker"
                    )
                    barrier = barrier + duration
                    phase_end[phase] = barrier
            else:
                messages = comm_phases.get(phase)
                if not messages:
                    continue
                phase_start = barrier
                ends = []
                for message in messages:
                    _start, end = radio.acquire(
                        phase_start, self._send_cost(message), phase
                    )
                    ends.append(end)
                    if (
                        phase == "genomes_down"
                        and message.dst != CENTER
                        and 0 <= message.dst < self.spec.n_agents
                    ):
                        genome_arrival[message.dst] = end
                _start, end = radio.acquire(
                    phase_start, self._sync_cost(), f"{phase}-sync"
                )
                ends.append(end)
                barrier = max(ends)
                phase_end[phase] = barrier

        # flush the (empty) event queue so the clock is consistent
        queue.schedule(barrier, lambda: None, "generation-end")
        total = queue.run()

        return SimulatedGeneration(
            total_s=total,
            phase_end_s=phase_end,
            radio_busy_s=radio.busy_time,
            agent_busy_s=[a.busy_time for a in agents],
            events_processed=queue.processed,
        )

    def simulate_run(
        self, records: list[GenerationRecord]
    ) -> list[SimulatedGeneration]:
        """Simulate every generation of a run independently."""
        return [self.simulate(record) for record in records]

    def total_time(self, records: list[GenerationRecord]) -> float:
        """Total simulated wall-clock across a run."""
        return sum(g.total_s for g in self.simulate_run(records))
