"""Durable checkpoint storage: the run outlives the driver process.

PR 6 made clan workers recoverable — but their checkpoints lived in a
dict inside the driver (`DistributedClanRuntime._checkpoints`), so a
SIGKILLed *driver* still lost the whole run. :class:`CheckpointStore`
is the missing durability layer: a directory of atomically-written,
CRC32-checksummed JSON documents plus a versioned manifest describing
the run they belong to. The write primitive is shared with
:func:`repro.neat.checkpoint.save_population` (tmp file +
``os.replace``), so a crash at any instant leaves either the previous
complete document or the new complete document on disk — never a torn
one.

Two clients:

- ``DistributedClanRuntime(checkpoint_store=...)`` streams every clan
  checkpoint it receives into the store as it lands.
- ``repro learn --checkpoint-dir`` persists the logical engine's
  population once per generation, and ``--resume`` reconstructs the
  driver from the manifest and continues bit-identically (every RNG
  stream is name-derived, so there is no hidden generator state to
  lose).
"""

from __future__ import annotations

import pathlib

from repro.neat.checkpoint import (
    CheckpointCorrupt,
    atomic_write_json,
    checked_read_json,
)

__all__ = ["CheckpointStore", "CheckpointCorrupt", "MANIFEST_VERSION"]

#: format version of the manifest document
MANIFEST_VERSION = 1

_MANIFEST_NAME = "manifest"
_CLAN_PREFIX = "clan_"


class CheckpointStore:
    """A directory of checksummed checkpoint documents + a manifest.

    Every document is written atomically and carries a CRC32 checksum;
    reads raise :class:`repro.neat.checkpoint.CheckpointCorrupt` on any
    damage. Names are flat identifiers (no path separators) mapped to
    ``<name>.json`` files, so the directory stays human-inspectable.
    """

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- generic documents -------------------------------------------------

    def path(self, name: str) -> pathlib.Path:
        """Filesystem path backing document ``name``."""
        if "/" in name or "\\" in name:
            raise ValueError(f"checkpoint names are flat, got {name!r}")
        return self.root / f"{name}.json"

    def write(self, name: str, payload: dict) -> None:
        """Atomically persist ``payload`` as document ``name``."""
        atomic_write_json(self.path(name), payload)

    def read(self, name: str) -> dict:
        """Load document ``name``, verifying its checksum."""
        return checked_read_json(self.path(name))

    def exists(self, name: str) -> bool:
        """Whether document ``name`` has been written."""
        return self.path(name).exists()

    # -- the manifest ------------------------------------------------------

    def write_manifest(self, kind: str, payload: dict) -> None:
        """Persist the run manifest.

        ``kind`` identifies the writer (``"learn"`` for resumable CLI
        runs, ``"clan-run"`` for the distributed runtime) so a resume
        attempt against the wrong kind of store fails loudly instead of
        misinterpreting fields.
        """
        document = dict(payload)
        document["manifest_version"] = MANIFEST_VERSION
        document["kind"] = kind
        self.write(_MANIFEST_NAME, document)

    def read_manifest(self, kind: str | None = None) -> dict:
        """Load the manifest, optionally checking its ``kind``.

        Raises :class:`CheckpointCorrupt` when the manifest is missing or
        damaged, and :class:`ValueError` on a version or kind mismatch.
        """
        if not self.exists(_MANIFEST_NAME):
            raise CheckpointCorrupt(
                f"no manifest in checkpoint store {self.root} — nothing "
                "to resume from"
            )
        manifest = self.read(_MANIFEST_NAME)
        version = manifest.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {version!r} in {self.root}"
            )
        if kind is not None and manifest.get("kind") != kind:
            raise ValueError(
                f"checkpoint store {self.root} holds a "
                f"{manifest.get('kind')!r} run, expected {kind!r}"
            )
        return manifest

    def has_manifest(self) -> bool:
        """Whether a manifest has been written."""
        return self.exists(_MANIFEST_NAME)

    # -- per-clan checkpoints (DistributedClanRuntime) ---------------------

    def put_clan(self, clan_id: int, payload: dict) -> None:
        """Persist the latest checkpoint of clan ``clan_id``."""
        self.write(f"{_CLAN_PREFIX}{clan_id:04d}", payload)

    def get_clan(self, clan_id: int) -> dict:
        """Load the latest checkpoint of clan ``clan_id``."""
        return self.read(f"{_CLAN_PREFIX}{clan_id:04d}")

    def clan_ids(self) -> list[int]:
        """Sorted ids of every clan with a stored checkpoint."""
        ids = []
        for path in self.root.glob(f"{_CLAN_PREFIX}*.json"):
            stem = path.stem[len(_CLAN_PREFIX):]
            if stem.isdigit():
                ids.append(int(stem))
        return sorted(ids)
