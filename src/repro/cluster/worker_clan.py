"""Clan state hosted inside a worker process (real CLAN_DDA backend).

A ``WorkerClan`` is the in-process twin of
:class:`repro.core.protocols._Clan`: it owns a sub-population, speciates it
locally, plans and reproduces — the full asynchronous-speciation loop — and
only ever reports fitness summaries back through the pipe. Kept in its own
module so worker processes import it lazily without dragging the whole
``repro.core`` package into the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.serialization import (
    decode_genomes,
    encode_genome,
    encode_genomes,
)
from repro.neat.checkpoint import (
    decode_genome_hex,
    encode_genome_hex,
    species_from_blob,
    species_to_blob,
)
from repro.neat.config import NEATConfig
from repro.neat.evaluation import GenomeEvaluator
from repro.neat.innovation import InnovationTracker
from repro.neat.reproduction import (
    brood_rng,
    execute_plan,
    plan_generation,
)
from repro.neat.species import SpeciesSet
from repro.obs import tracer as obs
from repro.utils.rng import RngFactory

#: format version of the per-clan checkpoint payload (independent of the
#: population checkpoint version in :mod:`repro.neat.checkpoint`, but the
#: species blobs reuse its v2 state format)
CLAN_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class ClanGenerationSummary:
    """What a clan reports to the centre after one local generation."""

    clan_id: int
    generation: int
    best_fitness: float
    mean_fitness: float
    n_species: int
    n_members: int
    solved: bool


class WorkerClan:
    """One clan evolving independently inside a worker process."""

    def __init__(
        self,
        env_id: str,
        config: NEATConfig,
        evaluator: GenomeEvaluator,
        clan_id: int,
        n_clans: int,
        members_wire: bytes,
        rng_seed: int,
        next_genome_key: int,
        num_outputs: int,
    ):
        members = decode_genomes(members_wire)
        self.env_id = env_id
        self.clan_id = clan_id
        self.evaluator = evaluator
        self.config = config.evolve_with(pop_size=len(members))
        self.members = {g.key: g for g in members}
        self.rngs = RngFactory(rng_seed)
        self.species_set = SpeciesSet(
            species_id_offset=clan_id, species_id_stride=n_clans
        )
        max_node = max(
            (g.max_node_id() for g in self.members.values()),
            default=num_outputs - 1,
        )
        self.innovation = InnovationTracker(
            next_node_id=max(max_node + 1, num_outputs),
            agent_offset=clan_id,
            agent_stride=n_clans,
        )
        self.n_clans = n_clans
        self._next_key = next_genome_key
        self._key_stride = n_clans
        self._best = None
        #: number of the last *completed* local generation (None before
        #: any generation has run) — checkpoints resume at the next one
        self.last_generation: int | None = None

    def _allocate_key(self) -> int:
        key = self._next_key
        self._next_key += self._key_stride
        return key

    def run_generation(self, generation: int) -> ClanGenerationSummary:
        """One full local generation: I -> S -> plan -> R."""
        solved = False
        # the evaluator's configured backend applies here: with
        # backend="batched" each member's episodes run in lockstep through
        # the NumPy engine instead of the scalar interpreter
        with obs.span(
            "evaluate", gen=generation, genomes=len(self.members)
        ):
            results = self.evaluator.evaluate_many(
                self.members.values(), self.config, generation
            )
        for genome in self.members.values():
            result = results[genome.key]
            genome.fitness = result.fitness
            solved = solved or result.solved

        best = max(
            self.members.values(), key=lambda g: (g.fitness, -g.key)
        )
        if self._best is None or best.fitness > self._best.fitness:
            self._best = best.copy()
        mean = sum(g.fitness for g in self.members.values()) / len(
            self.members
        )

        with obs.span("speciate", gen=generation):
            stats = self.species_set.speciate(
                self.members,
                generation,
                self.config,
                self.rngs.get(f"speciate:{generation}"),
            )
        with obs.span("reproduce", gen=generation):
            plan = plan_generation(
                self.config,
                self.species_set,
                generation,
                self.rngs.get(f"plan:{generation}"),
                self._allocate_key,
            )
            next_members, _repro = execute_plan(
                plan,
                self.members,
                self.config,
                lambda spec: self.rngs.get(
                    f"child:{generation}:{spec.child_key}"
                ),
                self.innovation,
                np_rng=brood_rng(self.config, self.rngs, generation),
            )
        self.members = next_members
        self.innovation.advance_generation()
        self.last_generation = generation

        return ClanGenerationSummary(
            clan_id=self.clan_id,
            generation=generation,
            best_fitness=best.fitness,
            mean_fitness=mean,
            n_species=stats.n_species,
            n_members=len(self.members),
            solved=solved,
        )

    @property
    def best_fitness(self) -> float:
        """Fitness of the clan's best-ever genome (-inf before any run).

        The barrier-free worker loop compares this across generations to
        decide when to stream a champion-changed message to the centre.
        """
        if self._best is None:
            return float("-inf")
        return self._best.fitness

    def best_genome_wire(self) -> bytes:
        """The clan's best-ever genome, serialised (for final collection)."""
        if self._best is None:
            raise RuntimeError("no generation has run yet")
        return encode_genome(self._best)

    # -- checkpoint / restore (fault tolerance) ---------------------------

    def checkpoint_payload(self) -> dict:
        """Everything a fresh worker process needs to resume this clan.

        Taken *between* generations (the innovation tracker's split
        window is empty then, so it needs only its counter). Every RNG
        stream is derived by name from ``rng_seed``, so the restored clan
        re-running generation ``last_generation + 1`` is bit-identical to
        the original having run it — the property the supervision loop of
        :class:`repro.cluster.runtime.DistributedClanRuntime` relies on.
        Genome payloads are hex-encoded canonical wire bytes (the
        checkpoint-v2 convention), so the payload is JSON-serialisable.
        """
        return {
            "version": CLAN_CHECKPOINT_VERSION,
            "clan_id": self.clan_id,
            "n_clans": self.n_clans,
            "completed_generation": self.last_generation,
            "members_hex": encode_genomes(
                [self.members[key] for key in sorted(self.members)]
            ).hex(),
            "rng_seed": self.rngs.root_seed,
            "next_genome_key": self._next_key,
            "next_node_id": self.innovation.next_node_id,
            "next_species_id": self.species_set._next_species_id,
            "species": [
                species_to_blob(species, self.members)
                for species in self.species_set.iter_species()
            ],
            "best_hex": (
                encode_genome_hex(self._best)
                if self._best is not None
                else None
            ),
        }

    @classmethod
    def restore(
        cls,
        env_id: str,
        config: NEATConfig,
        evaluator: GenomeEvaluator,
        payload: dict,
    ) -> "WorkerClan":
        """Rebuild a clan from :meth:`checkpoint_payload` state."""
        version = payload.get("version")
        if version != CLAN_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported clan checkpoint version {version!r}"
            )
        clan = cls(
            env_id=env_id,
            config=config,
            evaluator=evaluator,
            clan_id=payload["clan_id"],
            n_clans=payload["n_clans"],
            members_wire=bytes.fromhex(payload["members_hex"]),
            rng_seed=payload["rng_seed"],
            next_genome_key=payload["next_genome_key"],
            num_outputs=config.num_outputs,
        )
        # __init__ derives counters from the membership; override them
        # with the checkpointed state (ids observed from migrations or
        # prior generations may run ahead of what the members imply)
        clan.innovation = InnovationTracker(
            next_node_id=payload["next_node_id"],
            agent_offset=payload["clan_id"],
            agent_stride=payload["n_clans"],
        )
        species_set = SpeciesSet(
            species_id_offset=payload["clan_id"],
            species_id_stride=payload["n_clans"],
        )
        species_set._next_species_id = payload["next_species_id"]
        for blob in payload["species"]:
            species_from_blob(blob, clan.members, species_set)
        clan.species_set = species_set
        clan._best = (
            decode_genome_hex(payload["best_hex"])
            if payload["best_hex"] is not None
            else None
        )
        clan.last_generation = payload["completed_generation"]
        return clan
