"""Genome wire format.

The paper's cost metric treats a gene as "a 32-bit datastructure"; this
module makes that concrete. A genome is serialised as::

    header : genome key, fitness (NaN if unset), n_nodes, n_connections
    nodes  : per node gene — key, bias, response, activation id, aggregation id
    conns  : per connection gene — in key, out key, weight, enabled flag

Accounting (``genome_wire_floats``) counts one 32-bit word per field,
exactly the paper's convention; every communication cost model uses these
counts. The *encoded byte stream*, however, stores scalar attributes as
IEEE-754 doubles: the multiprocess runtime must round-trip genomes
bit-exactly so a physically distributed run reproduces the logical engines,
and Python floats are doubles. The modelled wire cost and the transport
encoding are therefore intentionally distinct layers.
"""

from __future__ import annotations

import math
import struct

from repro.neat.activations import ACTIVATIONS
from repro.neat.aggregations import AGGREGATIONS
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome
from repro.neat.network import BatchedPlan, LayerPlan, _require_numpy

try:  # numpy is only needed for the batched-plan codec below
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: bytes per accounted 32-bit word
WORD_BYTES = 4
#: accounted words in the genome header
HEADER_WORDS = 4

_HEADER_FMT = "<idii"
_NODE_FMT = "<iddii"
_CONN_FMT = "<iidi"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_NODE_SIZE = struct.calcsize(_NODE_FMT)
_CONN_SIZE = struct.calcsize(_CONN_FMT)

_ACTIVATION_IDS = {name: i for i, name in enumerate(sorted(ACTIVATIONS))}
_ACTIVATION_NAMES = {i: name for name, i in _ACTIVATION_IDS.items()}
_AGGREGATION_IDS = {name: i for i, name in enumerate(sorted(AGGREGATIONS))}
_AGGREGATION_NAMES = {i: name for name, i in _AGGREGATION_IDS.items()}


def genome_wire_floats(genome: Genome) -> int:
    """Number of 32-bit words the genome occupies on the wire."""
    return (
        HEADER_WORDS
        + NodeGene.FLOAT_FIELDS * len(genome.nodes)
        + ConnectionGene.FLOAT_FIELDS * len(genome.connections)
    )


def genome_wire_bytes(genome: Genome) -> int:
    """Modelled wire footprint of a genome in bytes (accounted words)."""
    return WORD_BYTES * genome_wire_floats(genome)


def genome_stream_bytes(genome: Genome) -> int:
    """Actual encoded byte-stream length (doubles for scalars)."""
    return (
        _HEADER_SIZE
        + _NODE_SIZE * len(genome.nodes)
        + _CONN_SIZE * len(genome.connections)
    )


def encode_genome(genome: Genome) -> bytes:
    """Serialise a genome to its canonical byte stream."""
    fitness = genome.fitness if genome.fitness is not None else math.nan
    parts = [
        struct.pack(
            _HEADER_FMT,
            genome.key,
            fitness,
            len(genome.nodes),
            len(genome.connections),
        )
    ]
    for key in sorted(genome.nodes):
        node = genome.nodes[key]
        parts.append(
            struct.pack(
                _NODE_FMT,
                node.key,
                node.bias,
                node.response,
                _ACTIVATION_IDS[node.activation],
                _AGGREGATION_IDS[node.aggregation],
            )
        )
    for key in sorted(genome.connections):
        conn = genome.connections[key]
        parts.append(
            struct.pack(
                _CONN_FMT,
                conn.key[0],
                conn.key[1],
                conn.weight,
                1 if conn.enabled else 0,
            )
        )
    return b"".join(parts)


def decode_genome(data: bytes) -> Genome:
    """Reconstruct a genome from :func:`encode_genome` output."""
    if len(data) < _HEADER_SIZE:
        raise ValueError("genome byte stream shorter than header")
    key, fitness, n_nodes, n_conns = struct.unpack_from(_HEADER_FMT, data, 0)
    expected = _HEADER_SIZE + _NODE_SIZE * n_nodes + _CONN_SIZE * n_conns
    if len(data) != expected:
        raise ValueError(
            f"genome byte stream length {len(data)} != expected {expected}"
        )
    genome = Genome(key)
    genome.fitness = None if math.isnan(fitness) else fitness
    offset = _HEADER_SIZE
    for _ in range(n_nodes):
        node_key, bias, response, act_id, agg_id = struct.unpack_from(
            _NODE_FMT, data, offset
        )
        offset += _NODE_SIZE
        try:
            activation = _ACTIVATION_NAMES[act_id]
            aggregation = _AGGREGATION_NAMES[agg_id]
        except KeyError:
            raise ValueError(
                f"unknown activation/aggregation id in node {node_key}"
            ) from None
        genome.nodes[node_key] = NodeGene(
            node_key, bias, response, activation, aggregation
        )
    for _ in range(n_conns):
        in_key, out_key, weight, enabled = struct.unpack_from(
            _CONN_FMT, data, offset
        )
        offset += _CONN_SIZE
        genome.connections[(in_key, out_key)] = ConnectionGene(
            (in_key, out_key), weight, bool(enabled)
        )
    return genome


def encode_genomes(genomes: list[Genome]) -> bytes:
    """Serialise a batch: a count word followed by length-prefixed genomes."""
    parts = [struct.pack("<i", len(genomes))]
    for genome in genomes:
        payload = encode_genome(genome)
        parts.append(struct.pack("<i", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_genomes(data: bytes) -> list[Genome]:
    """Inverse of :func:`encode_genomes`."""
    (count,) = struct.unpack_from("<i", data, 0)
    offset = WORD_BYTES
    genomes = []
    for _ in range(count):
        (length,) = struct.unpack_from("<i", data, offset)
        offset += WORD_BYTES
        genomes.append(decode_genome(data[offset: offset + length]))
        offset += length
    if offset != len(data):
        raise ValueError("trailing bytes after genome batch")
    return genomes


# -- compiled batched plans ---------------------------------------------------
#
# The centre compiles a genome once (:func:`repro.neat.network.
# compile_batched`) and ships the lowered arrays so workers skip the
# pruning/ordering/layering pass entirely. The stream is explicit
# little-endian (int32 indices, float64 scalars) so it round-trips
# bit-exactly across heterogeneous agents. Plans are an execution artifact,
# not part of the paper's modelled genome traffic: ``genome_wire_floats``
# accounting is unchanged.

#: format version tag leading every encoded plan ("BP" + version);
#: v2 stores layer weights sparsely (nonzero (slot, weight) pairs per row)
_PLAN_MAGIC = 0x42500002

_PLAN_HEADER_FMT = "<iiiii"
_PLAN_HEADER_SIZE = struct.calcsize(_PLAN_HEADER_FMT)
_LAYER_HEADER_FMT = "<iii"
_LAYER_HEADER_SIZE = struct.calcsize(_LAYER_HEADER_FMT)


def _read_array(data: bytes, offset: int, dtype: str, count: int):
    """Decode ``count`` items of ``dtype`` at ``offset``; returns (arr, end).

    The slice is copied so decoded plans own writable, aligned arrays.
    """
    arr = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
    return arr.copy(), offset + arr.nbytes


def encode_batched_plan(plan: BatchedPlan) -> bytes:
    """Serialise a compiled batched plan to its canonical byte stream."""
    _require_numpy()
    n_inputs = len(plan.input_keys)
    n_outputs = len(plan.output_keys)
    parts = [
        struct.pack(
            _PLAN_HEADER_FMT,
            _PLAN_MAGIC,
            n_inputs,
            n_outputs,
            plan.total_slots,
            len(plan.layers),
        ),
        np.asarray(plan.input_keys, dtype="<i4").tobytes(),
        np.asarray(plan.output_keys, dtype="<i4").tobytes(),
        np.asarray(plan.output_slots, dtype="<i4").tobytes(),
    ]
    for layer in plan.layers:
        parts.append(
            struct.pack(
                _LAYER_HEADER_FMT,
                len(layer.node_slots),
                len(layer.act_groups),
                len(layer.generic_nodes),
            )
        )
        parts.append(layer.node_slots.astype("<i4").tobytes())
        parts.append(layer.bias.astype("<f8").tobytes())
        parts.append(layer.response.astype("<f8").tobytes())
        # the dense per-layer matrix is mostly zeros (links are sparse), so
        # ship only the nonzero (slot, weight) pairs per row; decode
        # re-densifies. Zero entries scatter back to an identical matrix,
        # keeping decoded outputs bit-exact.
        for row in range(len(layer.node_slots)):
            (cols,) = np.nonzero(layer.weights[row])
            parts.append(struct.pack("<i", len(cols)))
            parts.append(cols.astype("<i4").tobytes())
            parts.append(layer.weights[row, cols].astype("<f8").tobytes())
        for name, rows in layer.act_groups:
            parts.append(
                struct.pack("<ii", _ACTIVATION_IDS[name], len(rows))
            )
            parts.append(rows.astype("<i4").tobytes())
        for row, aggregation, src_slots, link_weights in layer.generic_nodes:
            parts.append(
                struct.pack(
                    "<iii",
                    row,
                    _AGGREGATION_IDS[aggregation],
                    len(src_slots),
                )
            )
            parts.append(src_slots.astype("<i4").tobytes())
            parts.append(link_weights.astype("<f8").tobytes())
    return b"".join(parts)


def decode_batched_plan(data: bytes) -> BatchedPlan:
    """Reconstruct a plan from :func:`encode_batched_plan` output."""
    _require_numpy()
    if len(data) < _PLAN_HEADER_SIZE:
        raise ValueError("plan byte stream shorter than header")
    magic, n_inputs, n_outputs, total_slots, n_layers = struct.unpack_from(
        _PLAN_HEADER_FMT, data, 0
    )
    if magic != _PLAN_MAGIC:
        raise ValueError(f"bad plan magic {magic:#x}")
    offset = _PLAN_HEADER_SIZE
    input_keys, offset = _read_array(data, offset, "<i4", n_inputs)
    output_keys, offset = _read_array(data, offset, "<i4", n_outputs)
    output_slots, offset = _read_array(data, offset, "<i4", n_outputs)
    layers: list[LayerPlan] = []
    for _ in range(n_layers):
        n_nodes, n_act_groups, n_generic = struct.unpack_from(
            _LAYER_HEADER_FMT, data, offset
        )
        offset += _LAYER_HEADER_SIZE
        node_slots, offset = _read_array(data, offset, "<i4", n_nodes)
        bias, offset = _read_array(data, offset, "<f8", n_nodes)
        response, offset = _read_array(data, offset, "<f8", n_nodes)
        weights = np.zeros((n_nodes, total_slots), dtype=np.float64)
        for row in range(n_nodes):
            (n_links,) = struct.unpack_from("<i", data, offset)
            offset += WORD_BYTES
            cols, offset = _read_array(data, offset, "<i4", n_links)
            row_weights, offset = _read_array(data, offset, "<f8", n_links)
            weights[row, cols] = row_weights
        act_groups = []
        for _ in range(n_act_groups):
            act_id, n_rows = struct.unpack_from("<ii", data, offset)
            offset += 2 * WORD_BYTES
            rows, offset = _read_array(data, offset, "<i4", n_rows)
            try:
                act_groups.append((_ACTIVATION_NAMES[act_id], rows))
            except KeyError:
                raise ValueError(
                    f"unknown activation id {act_id} in plan"
                ) from None
        generic_nodes = []
        for _ in range(n_generic):
            row, agg_id, fan_in = struct.unpack_from("<iii", data, offset)
            offset += 3 * WORD_BYTES
            src_slots, offset = _read_array(data, offset, "<i4", fan_in)
            link_weights, offset = _read_array(data, offset, "<f8", fan_in)
            try:
                aggregation = _AGGREGATION_NAMES[agg_id]
            except KeyError:
                raise ValueError(
                    f"unknown aggregation id {agg_id} in plan"
                ) from None
            generic_nodes.append((row, aggregation, src_slots, link_weights))
        layers.append(
            LayerPlan(
                node_slots=node_slots,
                weights=weights,
                bias=bias,
                response=response,
                act_groups=act_groups,
                generic_nodes=generic_nodes,
            )
        )
    if offset != len(data):
        raise ValueError("trailing bytes after plan stream")
    return BatchedPlan(
        input_keys=tuple(int(key) for key in input_keys),
        output_keys=tuple(int(key) for key in output_keys),
        total_slots=total_slots,
        output_slots=output_slots,
        layers=layers,
    )


def encode_batched_plans(plans: list[BatchedPlan]) -> bytes:
    """Serialise a batch: a count word followed by length-prefixed plans."""
    parts = [struct.pack("<i", len(plans))]
    for plan in plans:
        payload = encode_batched_plan(plan)
        parts.append(struct.pack("<i", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_batched_plans(data: bytes) -> list[BatchedPlan]:
    """Inverse of :func:`encode_batched_plans`."""
    (count,) = struct.unpack_from("<i", data, 0)
    offset = WORD_BYTES
    plans = []
    for _ in range(count):
        (length,) = struct.unpack_from("<i", data, offset)
        offset += WORD_BYTES
        plans.append(decode_batched_plan(data[offset: offset + length]))
        offset += length
    if offset != len(data):
        raise ValueError("trailing bytes after plan batch")
    return plans
