"""Genome wire format.

The paper's cost metric treats a gene as "a 32-bit datastructure"; this
module makes that concrete. A genome is serialised as::

    header : genome key, fitness (NaN if unset), n_nodes, n_connections
    nodes  : per node gene — key, bias, response, activation id, aggregation id
    conns  : per connection gene — in key, out key, weight, enabled flag

Accounting (``genome_wire_floats``) counts one 32-bit word per field,
exactly the paper's convention; every communication cost model uses these
counts. The *encoded byte stream*, however, stores scalar attributes as
IEEE-754 doubles: the multiprocess runtime must round-trip genomes
bit-exactly so a physically distributed run reproduces the logical engines,
and Python floats are doubles. The modelled wire cost and the transport
encoding are therefore intentionally distinct layers.
"""

from __future__ import annotations

import math
import struct

from repro.neat.activations import ACTIVATIONS
from repro.neat.aggregations import AGGREGATIONS
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome

#: bytes per accounted 32-bit word
WORD_BYTES = 4
#: accounted words in the genome header
HEADER_WORDS = 4

_HEADER_FMT = "<idii"
_NODE_FMT = "<iddii"
_CONN_FMT = "<iidi"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_NODE_SIZE = struct.calcsize(_NODE_FMT)
_CONN_SIZE = struct.calcsize(_CONN_FMT)

_ACTIVATION_IDS = {name: i for i, name in enumerate(sorted(ACTIVATIONS))}
_ACTIVATION_NAMES = {i: name for name, i in _ACTIVATION_IDS.items()}
_AGGREGATION_IDS = {name: i for i, name in enumerate(sorted(AGGREGATIONS))}
_AGGREGATION_NAMES = {i: name for name, i in _AGGREGATION_IDS.items()}


def genome_wire_floats(genome: Genome) -> int:
    """Number of 32-bit words the genome occupies on the wire."""
    return (
        HEADER_WORDS
        + NodeGene.FLOAT_FIELDS * len(genome.nodes)
        + ConnectionGene.FLOAT_FIELDS * len(genome.connections)
    )


def genome_wire_bytes(genome: Genome) -> int:
    """Modelled wire footprint of a genome in bytes (accounted words)."""
    return WORD_BYTES * genome_wire_floats(genome)


def genome_stream_bytes(genome: Genome) -> int:
    """Actual encoded byte-stream length (doubles for scalars)."""
    return (
        _HEADER_SIZE
        + _NODE_SIZE * len(genome.nodes)
        + _CONN_SIZE * len(genome.connections)
    )


def encode_genome(genome: Genome) -> bytes:
    """Serialise a genome to its canonical byte stream."""
    fitness = genome.fitness if genome.fitness is not None else math.nan
    parts = [
        struct.pack(
            _HEADER_FMT,
            genome.key,
            fitness,
            len(genome.nodes),
            len(genome.connections),
        )
    ]
    for key in sorted(genome.nodes):
        node = genome.nodes[key]
        parts.append(
            struct.pack(
                _NODE_FMT,
                node.key,
                node.bias,
                node.response,
                _ACTIVATION_IDS[node.activation],
                _AGGREGATION_IDS[node.aggregation],
            )
        )
    for key in sorted(genome.connections):
        conn = genome.connections[key]
        parts.append(
            struct.pack(
                _CONN_FMT,
                conn.key[0],
                conn.key[1],
                conn.weight,
                1 if conn.enabled else 0,
            )
        )
    return b"".join(parts)


def decode_genome(data: bytes) -> Genome:
    """Reconstruct a genome from :func:`encode_genome` output."""
    if len(data) < _HEADER_SIZE:
        raise ValueError("genome byte stream shorter than header")
    key, fitness, n_nodes, n_conns = struct.unpack_from(_HEADER_FMT, data, 0)
    expected = _HEADER_SIZE + _NODE_SIZE * n_nodes + _CONN_SIZE * n_conns
    if len(data) != expected:
        raise ValueError(
            f"genome byte stream length {len(data)} != expected {expected}"
        )
    genome = Genome(key)
    genome.fitness = None if math.isnan(fitness) else fitness
    offset = _HEADER_SIZE
    for _ in range(n_nodes):
        node_key, bias, response, act_id, agg_id = struct.unpack_from(
            _NODE_FMT, data, offset
        )
        offset += _NODE_SIZE
        try:
            activation = _ACTIVATION_NAMES[act_id]
            aggregation = _AGGREGATION_NAMES[agg_id]
        except KeyError:
            raise ValueError(
                f"unknown activation/aggregation id in node {node_key}"
            ) from None
        genome.nodes[node_key] = NodeGene(
            node_key, bias, response, activation, aggregation
        )
    for _ in range(n_conns):
        in_key, out_key, weight, enabled = struct.unpack_from(
            _CONN_FMT, data, offset
        )
        offset += _CONN_SIZE
        genome.connections[(in_key, out_key)] = ConnectionGene(
            (in_key, out_key), weight, bool(enabled)
        )
    return genome


def encode_genomes(genomes: list[Genome]) -> bytes:
    """Serialise a batch: a count word followed by length-prefixed genomes."""
    parts = [struct.pack("<i", len(genomes))]
    for genome in genomes:
        payload = encode_genome(genome)
        parts.append(struct.pack("<i", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_genomes(data: bytes) -> list[Genome]:
    """Inverse of :func:`encode_genomes`."""
    (count,) = struct.unpack_from("<i", data, 0)
    offset = WORD_BYTES
    genomes = []
    for _ in range(count):
        (length,) = struct.unpack_from("<i", data, offset)
        offset += WORD_BYTES
        genomes.append(decode_genome(data[offset: offset + length]))
        offset += length
    if offset != len(data):
        raise ValueError("trailing bytes after genome batch")
    return genomes
