"""Discrete-event engine primitives for the cluster simulator.

Minimal but genuine DES machinery: a time-ordered event queue and a
single-server resource with FIFO acquisition, enough to model agents
computing in parallel while the centre's WiFi radio serialises transfers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _QueuedEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """Time-ordered event executor."""

    def __init__(self):
        self._heap: list[_QueuedEvent] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> None:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        heapq.heappush(
            self._heap, _QueuedEvent(time, next(self._seq), action, label)
        )

    def run(self) -> float:
        """Process all events in time order; return the final clock."""
        while self._heap:
            event = heapq.heappop(self._heap)
            self.now = event.time
            self.processed += 1
            event.action()
        return self.now


class Resource:
    """A single-server FIFO resource (a device core or the centre's radio).

    ``acquire(earliest, duration)`` books the resource for ``duration``
    starting no earlier than ``earliest`` nor before the previous booking
    ends, and returns the (start, end) interval.
    """

    def __init__(self, name: str):
        self.name = name
        self.free_at = 0.0
        self.busy_time = 0.0
        self.bookings: list[tuple[float, float, str]] = []

    def acquire(
        self, earliest: float, duration: float, label: str = ""
    ) -> tuple[float, float]:
        if duration < 0:
            raise ValueError("duration cannot be negative")
        start = max(earliest, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.bookings.append((start, end, label))
        return start, end

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the resource was busy.

        Returns the *raw* ratio: a single-server resource genuinely
        saturated over the horizon reads 1.0, and a ratio above 1.0 means
        the caller's horizon is shorter than the booked busy time — a
        double-booking signal that clamping used to hide.
        """
        if horizon <= 0:
            return 0.0
        return self.busy_time / horizon
