"""Per-workload environment-step cost constants.

``pi_env_step_s`` is the wall-clock cost of one environment time-step on a
Raspberry Pi 3 running the paper's Python stack — gym environment physics
plus the per-step interpreter overhead of the evaluation loop. Values were
chosen so that serial per-generation times land in the ranges the paper
reports (Fig 5a and Fig 11):

* CartPole / MountainCar: classic-control physics, well under a
  millisecond of float math, dominated by Python call overhead
  (~0.8-1.0 ms/step on an ARM A53).
* LunarLander: Box2D rigid-body world step — tens of milliseconds on a Pi
  (the paper's ~1000 s generations for a population of 150 imply ~45 ms).
* Atari-RAM games: Stella emulation of several frames per step plus
  observation marshalling (~45-50 ms on a Pi).

These constants live apart from :mod:`repro.envs` because they describe the
*paper's* testbed cost of the real gym environments, not the cost of our
synthetic re-implementations.
"""

from __future__ import annotations

_PI_ENV_STEP_S: dict[str, float] = {
    "CartPole-v0": 0.8e-3,
    "MountainCar-v0": 1.0e-3,
    "LunarLander-v2": 45e-3,
    "Airraid-ram-v0": 45e-3,
    "Amidar-ram-v0": 45e-3,
    "Alien-ram-v0": 50e-3,
}


def pi_env_step_seconds(env_id: str) -> float:
    """Per-step environment cost on a Raspberry Pi for ``env_id``."""
    try:
        return _PI_ENV_STEP_S[env_id]
    except KeyError:
        known = ", ".join(_PI_ENV_STEP_S)
        raise KeyError(
            f"no cost profile for env {env_id!r}; known: {known}"
        ) from None
