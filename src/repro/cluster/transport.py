"""Real multiprocess transport: one OS process per simulated Pi.

The logical protocol engines in :mod:`repro.core.protocols` place compute
and account for communication; this module actually *executes* the heavy
phases in parallel across worker processes, shipping genomes over pipes in
the canonical 32-bit wire format of :mod:`repro.cluster.serialization` —
the same bytes the cost model counts.

Workers are long-lived (started once, fed per-generation commands) to match
the persistent agents of the paper's testbed. Two command sets are
supported:

* ``eval``: evaluate a shard of genomes (distributed inference — the heavy
  phase of CLAN_DCS / CLAN_DDS).
* ``clan_init`` / ``clan_step``: host an entire clan and run full local
  generations (CLAN_DDA).
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from multiprocessing import connection as mp_connection
from dataclasses import dataclass

from repro.cluster.serialization import (
    decode_batched_plans,
    decode_genomes,
    encode_batched_plans,
    encode_genomes,
)
from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult, GenomeEvaluator
from repro.neat.network import BatchedFeedForwardNetwork


@dataclass(frozen=True)
class EvalRequest:
    """Command: evaluate a shard of genomes for one generation.

    ``plans_wire``, when set, carries the genomes' pre-compiled batched
    plans (same order as the genome batch) so the worker skips
    recompilation and evaluates straight from the lowered arrays.
    """

    genomes_wire: bytes
    generation: int
    plans_wire: bytes | None = None


@dataclass(frozen=True)
class EvalReply:
    """Per-genome evaluation outcomes (no genome payloads)."""

    results: tuple[tuple[int, float, int, float, bool], ...]

    def to_fitness_results(self) -> dict[int, FitnessResult]:
        return {
            key: FitnessResult(
                genome_key=key,
                fitness=fitness,
                steps=steps,
                total_reward=reward,
                solved=solved,
            )
            for key, fitness, steps, reward, solved in self.results
        }


def _worker_main(
    conn,
    env_id: str,
    config: NEATConfig,
    evaluator_seed: int,
    episodes: int,
    max_steps: int | None,
    backend: str,
    eval_mode: str,
) -> None:
    """Worker process loop: serve evaluation commands until 'stop'."""
    evaluator = GenomeEvaluator(
        env_id,
        episodes=episodes,
        max_steps=max_steps,
        seed=evaluator_seed,
        backend=backend,
        eval_mode=eval_mode,
    )
    clan = None  # lazily created by 'clan_init'
    try:
        while True:
            command, payload = conn.recv()
            if command == "stop":
                conn.send(("stopped", None))
                break
            elif command == "eval":
                genomes = decode_genomes(payload.genomes_wire)
                plans = None
                if payload.plans_wire is not None:
                    plans = decode_batched_plans(payload.plans_wire)
                    if len(plans) != len(genomes):
                        raise ValueError(
                            f"{len(plans)} plans for {len(genomes)} genomes"
                        )
                if evaluator.eval_mode == "population" and genomes:
                    # one vectorized sweep over the whole shard; shipped
                    # plans skip recompilation just like per-genome mode
                    if plans is not None:
                        result_map = evaluator.evaluate_stacked(
                            plans,
                            [g.key for g in genomes],
                            payload.generation,
                        )
                    else:
                        result_map = evaluator.evaluate_many(
                            genomes, config, payload.generation
                        )
                    results = [
                        (
                            g.key,
                            result_map[g.key].fitness,
                            result_map[g.key].steps,
                            result_map[g.key].total_reward,
                            result_map[g.key].solved,
                        )
                        for g in genomes
                    ]
                    conn.send(("ok", EvalReply(tuple(results))))
                    continue
                if plans is not None:
                    networks = [
                        BatchedFeedForwardNetwork(plan) for plan in plans
                    ]
                else:
                    networks = [None] * len(genomes)
                results = []
                for genome, network in zip(genomes, networks):
                    if network is not None:
                        r = evaluator.evaluate_compiled(
                            network, genome.key, payload.generation
                        )
                    else:
                        r = evaluator.evaluate(
                            genome, config, payload.generation
                        )
                    results.append(
                        (genome.key, r.fitness, r.steps, r.total_reward,
                         r.solved)
                    )
                conn.send(("ok", EvalReply(tuple(results))))
            elif command == "clan_init":
                from repro.cluster.worker_clan import WorkerClan

                clan = WorkerClan(
                    env_id=env_id,
                    config=config,
                    evaluator=evaluator,
                    **payload,
                )
                conn.send(("ok", None))
            elif command == "clan_step":
                if clan is None:
                    raise RuntimeError("clan_step before clan_init")
                summary = clan.run_generation(payload)
                conn.send(("ok", summary))
            elif command == "clan_run":
                # barrier-free driver: run generations continuously,
                # streaming one ("progress", summary) per generation; the
                # centre never joins the pool per generation. Stops on
                # budget, on own convergence, or on a "clan_halt" nudge.
                if clan is None:
                    raise RuntimeError("clan_run before clan_init")
                start = payload["start_generation"]
                budget = payload["max_generations"]
                threshold = payload["threshold"]
                # opt-in (older payloads lack the key): stream the clan's
                # champion genome whenever its best-ever fitness improves,
                # so the centre can hot-swap a deployed policy mid-run
                stream_champions = payload.get("stream_champions", False)
                ran = 0
                stopping = False
                for generation in range(start, start + budget):
                    if conn.poll():
                        nudge, _ = conn.recv()
                        if nudge == "stop":
                            # shutdown raced into the free-run: honour the
                            # stop handshake instead of nudging
                            stopping = True
                            break
                        if nudge == "clan_halt":
                            break
                    previous_best = clan.best_fitness
                    summary = clan.run_generation(generation)
                    ran += 1
                    if stream_champions and clan.best_fitness > (
                        previous_best
                    ):
                        # champion precedes its generation's progress
                        # report, so a threshold-crossing report never
                        # arrives before the genome that caused it
                        conn.send(
                            (
                                "champion",
                                {
                                    "clan_id": clan.clan_id,
                                    "generation": generation,
                                    "fitness": clan.best_fitness,
                                    "genome_wire": clan.best_genome_wire(),
                                },
                            )
                        )
                    conn.send(("progress", summary))
                    if summary.best_fitness >= threshold:
                        break
                if stopping:
                    conn.send(("stopped", None))
                    break
                conn.send(("done", ran))
            elif command == "clan_halt":
                # a halt that raced past the end of clan_run; nothing to do
                pass
            elif command == "clan_best":
                if clan is None:
                    raise RuntimeError("clan_best before clan_init")
                conn.send(("ok", clan.best_genome_wire()))
            else:
                raise ValueError(f"unknown command {command!r}")
    except Exception:  # pragma: no cover - surfaced to the parent
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class WorkerPool:
    """A fleet of agent processes connected by pipes.

    Use as a context manager to guarantee shutdown::

        with WorkerPool(4, "CartPole-v0", config) as pool:
            replies = pool.evaluate_shards(shards, generation=0)
    """

    def __init__(
        self,
        n_workers: int,
        env_id: str,
        config: NEATConfig,
        evaluator_seed: int = 0,
        episodes: int = 1,
        max_steps: int | None = None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        self.env_id = env_id
        self.config = config
        self.backend = backend
        self.eval_mode = eval_mode
        ctx = mp.get_context("fork" if hasattr(mp, "get_context") else None)
        self._conns = []
        self._procs = []
        for _ in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    env_id,
                    config,
                    evaluator_seed,
                    episodes,
                    max_steps,
                    backend,
                    eval_mode,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._stopped = False

    # -- commands ----------------------------------------------------------

    def _request(self, worker: int, command: str, payload) -> None:
        self._conns[worker].send((command, payload))

    def _collect(self, worker: int):
        status, value = self._conns[worker].recv()
        if status == "error":
            raise RuntimeError(
                f"worker {worker} failed:\n{value}"
            )
        return value

    def evaluate_shards(
        self,
        shards: list[list],
        generation: int,
        plans: list[list] | None = None,
    ) -> list[dict[int, FitnessResult]]:
        """Evaluate genome shards in parallel; shard i goes to worker i.

        ``plans``, when given, mirrors ``shards`` with each genome's
        pre-compiled :class:`~repro.neat.network.BatchedPlan`; workers then
        evaluate the shipped plans instead of recompiling.
        """
        if len(shards) > self.n_workers:
            raise ValueError(
                f"{len(shards)} shards for {self.n_workers} workers"
            )
        if plans is not None and len(plans) != len(shards):
            raise ValueError(
                f"{len(plans)} plan shards for {len(shards)} genome shards"
            )
        active = []
        for worker, shard in enumerate(shards):
            if not shard:
                continue
            request = EvalRequest(
                genomes_wire=encode_genomes(shard),
                generation=generation,
                plans_wire=(
                    encode_batched_plans(plans[worker])
                    if plans is not None
                    else None
                ),
            )
            self._request(worker, "eval", request)
            active.append(worker)
        replies = []
        for worker in active:
            reply = self._collect(worker)
            replies.append(reply.to_fitness_results())
        return replies

    def broadcast(self, command: str, payloads: list) -> list:
        """Send one command per worker, collect all replies in order."""
        if len(payloads) != self.n_workers:
            raise ValueError("need exactly one payload per worker")
        for worker, payload in enumerate(payloads):
            self._request(worker, command, payload)
        return [self._collect(worker) for worker in range(self.n_workers)]

    def send(self, worker: int, command: str, payload=None) -> None:
        """Fire one command at one worker without waiting for a reply.

        Pair with :meth:`wait_any` for asynchronous protocols (streaming
        ``clan_run`` progress, ``clan_halt`` nudges).
        """
        self._request(worker, command, payload)

    def wait_any(
        self, timeout: float | None = None
    ) -> list[tuple[int, str, object]]:
        """Collect every message currently readable from any worker.

        Blocks up to ``timeout`` seconds (None = forever) for at least one
        message, then drains without blocking. Returns
        ``(worker, status, value)`` triples; a worker ``"error"`` status
        raises immediately, like the synchronous paths.
        """
        ready = mp_connection.wait(self._conns, timeout)
        out: list[tuple[int, str, object]] = []
        for conn in ready:
            worker = self._conns.index(conn)
            while True:
                status, value = conn.recv()
                if status == "error":
                    raise RuntimeError(f"worker {worker} failed:\n{value}")
                out.append((worker, status, value))
                if not conn.poll():
                    break
        return out

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for worker, conn in enumerate(self._conns):
            try:
                conn.send(("stop", None))
                # drain until the stop ack: a free-running clan_run may
                # have queued unsolicited progress/done messages nobody
                # collected (e.g. run_async aborted early)
                while True:
                    status, _value = conn.recv()
                    if status == "stopped":
                        break
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
