"""Real multiprocess transport: one OS process per simulated Pi.

The logical protocol engines in :mod:`repro.core.protocols` place compute
and account for communication; this module actually *executes* the heavy
phases in parallel across worker processes, shipping genomes over pipes in
the canonical 32-bit wire format of :mod:`repro.cluster.serialization` —
the same bytes the cost model counts.

Workers are long-lived (started once, fed per-generation commands) to match
the persistent agents of the paper's testbed. Two command sets are
supported:

* ``eval``: evaluate a shard of genomes (distributed inference — the heavy
  phase of CLAN_DCS / CLAN_DDS).
* ``clan_init`` / ``clan_step``: host an entire clan and run full local
  generations (CLAN_DDA).

Fault tolerance (``docs/fault_tolerance.md``): worker death surfaces as
:class:`WorkerDied` (pipe EOF / liveness check) and hangs as
:class:`WorkerTimeout` (per-command timeouts, ``ping`` probes); a failed
worker slot can be relaunched in place with :meth:`WorkerPool.respawn` and
re-seeded from a clan checkpoint via the ``clan_restore`` command. The
supervision policy itself (when to respawn, from which checkpoint) lives
one layer up in :class:`repro.cluster.runtime.DistributedClanRuntime`.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import traceback
from multiprocessing import connection as mp_connection
from dataclasses import dataclass

from repro.cluster.serialization import (
    decode_batched_plans,
    decode_genomes,
    encode_batched_plans,
    encode_genomes,
)
from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult, GenomeEvaluator
from repro.neat.network import BatchedFeedForwardNetwork


class WorkerFailure(RuntimeError):
    """A worker process failed (died or stopped responding).

    Carries the failed worker's index so supervisors can respawn the
    right slot; the message stays human-readable for unsupervised
    callers, where the exception propagates like any other error.
    """

    def __init__(self, worker: int, message: str):
        super().__init__(message)
        self.worker = worker


class WorkerDied(WorkerFailure):
    """The worker process is gone: pipe EOF, broken pipe, or a liveness
    check found the process dead (e.g. SIGKILLed by the OS)."""


class WorkerTimeout(WorkerFailure):
    """The worker process is alive but did not answer within the
    per-command timeout — the hang/stall failure mode."""


@dataclass(frozen=True)
class EvalRequest:
    """Command: evaluate a shard of genomes for one generation.

    ``plans_wire``, when set, carries the genomes' pre-compiled batched
    plans (same order as the genome batch) so the worker skips
    recompilation and evaluates straight from the lowered arrays.
    """

    genomes_wire: bytes
    generation: int
    plans_wire: bytes | None = None


@dataclass(frozen=True)
class EvalReply:
    """Per-genome evaluation outcomes (no genome payloads)."""

    results: tuple[tuple[int, float, int, float, bool], ...]

    def to_fitness_results(self) -> dict[int, FitnessResult]:
        return {
            key: FitnessResult(
                genome_key=key,
                fitness=fitness,
                steps=steps,
                total_reward=reward,
                solved=solved,
            )
            for key, fitness, steps, reward, solved in self.results
        }


def _worker_main(
    conn,
    env_id: str,
    config: NEATConfig,
    evaluator_seed: int,
    episodes: int,
    max_steps: int | None,
    backend: str,
    eval_mode: str,
) -> None:
    """Worker process loop: serve evaluation commands until 'stop'."""
    evaluator = GenomeEvaluator(
        env_id,
        episodes=episodes,
        max_steps=max_steps,
        seed=evaluator_seed,
        backend=backend,
        eval_mode=eval_mode,
    )
    clan = None  # lazily created by 'clan_init'
    try:
        while True:
            command, payload = conn.recv()
            if command == "stop":
                conn.send(("stopped", None))
                break
            elif command == "eval":
                genomes = decode_genomes(payload.genomes_wire)
                plans = None
                if payload.plans_wire is not None:
                    plans = decode_batched_plans(payload.plans_wire)
                    if len(plans) != len(genomes):
                        raise ValueError(
                            f"{len(plans)} plans for {len(genomes)} genomes"
                        )
                if evaluator.eval_mode == "population" and genomes:
                    # one vectorized sweep over the whole shard; shipped
                    # plans skip recompilation just like per-genome mode
                    if plans is not None:
                        result_map = evaluator.evaluate_stacked(
                            plans,
                            [g.key for g in genomes],
                            payload.generation,
                        )
                    else:
                        result_map = evaluator.evaluate_many(
                            genomes, config, payload.generation
                        )
                    results = [
                        (
                            g.key,
                            result_map[g.key].fitness,
                            result_map[g.key].steps,
                            result_map[g.key].total_reward,
                            result_map[g.key].solved,
                        )
                        for g in genomes
                    ]
                    conn.send(("ok", EvalReply(tuple(results))))
                    continue
                if plans is not None:
                    networks = [
                        BatchedFeedForwardNetwork(plan) for plan in plans
                    ]
                else:
                    networks = [None] * len(genomes)
                results = []
                for genome, network in zip(genomes, networks):
                    if network is not None:
                        r = evaluator.evaluate_compiled(
                            network, genome.key, payload.generation
                        )
                    else:
                        r = evaluator.evaluate(
                            genome, config, payload.generation
                        )
                    results.append(
                        (genome.key, r.fitness, r.steps, r.total_reward,
                         r.solved)
                    )
                conn.send(("ok", EvalReply(tuple(results))))
            elif command == "ping":
                # liveness probe: a hung worker never answers, a healthy
                # one answers immediately (heartbeat for the supervisor)
                conn.send(("ok", "pong"))
            elif command == "inject_stall":
                # failure-injection hook (tests/benchmarks only): wedge
                # this worker for `payload` seconds without replying, so
                # stall detection and per-command timeouts can be
                # exercised deterministically
                time.sleep(payload)
            elif command == "clan_init":
                from repro.cluster.worker_clan import WorkerClan

                clan = WorkerClan(
                    env_id=env_id,
                    config=config,
                    evaluator=evaluator,
                    **payload,
                )
                # the reply is the clan's initial checkpoint, so the
                # centre can respawn a worker that dies before its first
                # streamed checkpoint
                conn.send(("ok", clan.checkpoint_payload()))
            elif command == "clan_restore":
                from repro.cluster.worker_clan import WorkerClan

                clan = WorkerClan.restore(
                    env_id=env_id,
                    config=config,
                    evaluator=evaluator,
                    payload=payload,
                )
                conn.send(("ok", clan.last_generation))
            elif command == "clan_checkpoint":
                if clan is None:
                    raise RuntimeError("clan_checkpoint before clan_init")
                conn.send(("ok", clan.checkpoint_payload()))
            elif command == "clan_step":
                if clan is None:
                    raise RuntimeError("clan_step before clan_init")
                summary = clan.run_generation(payload)
                conn.send(("ok", summary))
            elif command == "clan_run":
                # barrier-free driver: run generations continuously,
                # streaming one ("progress", summary) per generation; the
                # centre never joins the pool per generation. Stops on
                # budget, on own convergence, or on a "clan_halt" nudge.
                if clan is None:
                    raise RuntimeError("clan_run before clan_init")
                start = payload["start_generation"]
                budget = payload["max_generations"]
                threshold = payload["threshold"]
                # opt-in tracing: record this clan's phase spans and ship
                # each generation's batch back over the pipe as an
                # unsolicited ("spans", batch) message; the driver merges
                # batches into the global trace tagged with this track
                clan_tracer = None
                previous_tracer = None
                if payload.get("trace", False):
                    from repro.obs import tracer as obs

                    clan_tracer = obs.Tracer(
                        track=f"clan:{clan.clan_id}"
                    )
                    previous_tracer = obs.activate(clan_tracer)
                # opt-in (older payloads lack the key): stream the clan's
                # champion genome whenever its best-ever fitness improves,
                # so the centre can hot-swap a deployed policy mid-run
                stream_champions = payload.get("stream_champions", False)
                # stream a full clan checkpoint every K completed
                # generations (0 = never) — the supervisor's respawn
                # source when this process dies or stalls
                checkpoint_period = payload.get("checkpoint_period", 0)
                ran = 0
                stopping = False
                for generation in range(start, start + budget):
                    if conn.poll():
                        nudge, _ = conn.recv()
                        if nudge == "stop":
                            # shutdown raced into the free-run: honour the
                            # stop handshake instead of nudging
                            stopping = True
                            break
                        if nudge == "clan_halt":
                            break
                    previous_best = clan.best_fitness
                    summary = clan.run_generation(generation)
                    ran += 1
                    if stream_champions and clan.best_fitness > (
                        previous_best
                    ):
                        # champion precedes its generation's progress
                        # report, so a threshold-crossing report never
                        # arrives before the genome that caused it
                        conn.send(
                            (
                                "champion",
                                {
                                    "clan_id": clan.clan_id,
                                    "generation": generation,
                                    "fitness": clan.best_fitness,
                                    "genome_wire": clan.best_genome_wire(),
                                },
                            )
                        )
                    conn.send(("progress", summary))
                    if clan_tracer is not None:
                        spans = clan_tracer.drain()
                        if spans:
                            conn.send(("spans", spans))
                    if checkpoint_period and ran % checkpoint_period == 0:
                        # after the progress report, so the checkpoint
                        # never describes a generation the centre has not
                        # been told about
                        conn.send(
                            ("checkpoint", clan.checkpoint_payload())
                        )
                    if summary.best_fitness >= threshold:
                        break
                if clan_tracer is not None:
                    from repro.obs import tracer as obs

                    spans = clan_tracer.drain()
                    if spans and not stopping:
                        conn.send(("spans", spans))
                    if previous_tracer is not None:
                        obs.activate(previous_tracer)
                    else:
                        obs.deactivate()
                if stopping:
                    conn.send(("stopped", None))
                    break
                conn.send(("done", ran))
            elif command == "clan_halt":
                # a halt that raced past the end of clan_run; nothing to do
                pass
            elif command == "clan_best":
                if clan is None:
                    raise RuntimeError("clan_best before clan_init")
                conn.send(("ok", clan.best_genome_wire()))
            else:
                raise ValueError(f"unknown command {command!r}")
    except Exception:  # pragma: no cover - surfaced to the parent
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class WorkerPool:
    """A fleet of agent processes connected by pipes.

    Use as a context manager to guarantee shutdown::

        with WorkerPool(4, "CartPole-v0", config) as pool:
            replies = pool.evaluate_shards(shards, generation=0)
    """

    def __init__(
        self,
        n_workers: int,
        env_id: str,
        config: NEATConfig,
        evaluator_seed: int = 0,
        episodes: int = 1,
        max_steps: int | None = None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
        chaos=None,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        #: optional :class:`repro.chaos.ChaosInjector`. Consulted once
        #: per outbound command in :meth:`_request` — the single choke
        #: point every parent->worker message flows through — so a fault
        #: plan can kill/stall a worker or drop a command at an exact,
        #: replayable protocol event. ``None`` (the default) adds no
        #: branches beyond one ``is None`` check.
        self._chaos = chaos
        self.env_id = env_id
        self.config = config
        self.backend = backend
        self.eval_mode = eval_mode
        self._ctx = mp.get_context(
            "fork" if hasattr(mp, "get_context") else None
        )
        # spawn arguments are kept so a failed worker slot can be
        # relaunched in place (respawn) with an identical process
        self._spawn_args = (
            env_id,
            config,
            evaluator_seed,
            episodes,
            max_steps,
            backend,
            eval_mode,
        )
        #: serialises liveness bookkeeping: the supervision loop and a
        #: closing service may mark deaths / respawn slots from
        #: different threads. Never held across a blocking join/recv.
        self._state_lock = threading.Lock()
        self._conns = []  # guarded-by: _state_lock
        self._procs = []  # guarded-by: _state_lock
        #: dead worker indices (EOF seen or killed); excluded from
        #: wait_any until respawned — guarded-by: _state_lock
        self._dead: set[int] = set()
        for _ in range(n_workers):
            conn, proc = self._spawn_worker()
            self._conns.append(conn)
            self._procs.append(proc)
        self._stopped = False

    def _spawn_worker(self):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, *self._spawn_args),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    # -- commands ----------------------------------------------------------

    def _mark_dead(self, worker: int) -> WorkerDied:
        with self._state_lock:
            self._dead.add(worker)
        return WorkerDied(worker, f"worker {worker} died (pipe closed)")

    def _request(self, worker: int, command: str, payload) -> None:
        if worker in self._dead:
            raise WorkerDied(worker, f"worker {worker} is dead")
        if self._chaos is not None and not self._apply_chaos(
            worker, command
        ):
            return  # command dropped by the fault plan
        try:
            self._conns[worker].send((command, payload))
        except (BrokenPipeError, OSError):
            raise self._mark_dead(worker) from None

    def _apply_chaos(self, worker: int, command: str) -> bool:
        """Consult the fault plan for one outbound command.

        Returns False when the command must be dropped (the caller's
        reply timeout then surfaces it as a hang, exactly like a lost
        message would). A ``kill`` fault terminates the worker process
        *before* the send, so the death is observed through the normal
        channels — failed send or pipe EOF — not through a side door.
        """
        decision = self._chaos.on_event("worker", worker, command)
        if not decision.intercepts:
            return True
        if decision.stall_s > 0.0:
            try:
                self._conns[worker].send(("inject_stall", decision.stall_s))
            except (BrokenPipeError, OSError):
                raise self._mark_dead(worker) from None
        if decision.kill:
            proc = self._procs[worker]
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5)
        return decision.deliveries > 0

    def _collect(self, worker: int, timeout: float | None = None):
        """Wait for one reply; ``timeout`` (seconds) bounds the wait.

        Raises :class:`WorkerTimeout` when the worker is alive but
        silent past the deadline (hang), :class:`WorkerDied` when its
        pipe is closed or its process is gone, and ``RuntimeError`` for
        an error the worker itself reported (with its traceback).
        """
        conn = self._conns[worker]
        if timeout is not None and not conn.poll(timeout):
            if not self._procs[worker].is_alive():
                raise self._mark_dead(worker)
            raise WorkerTimeout(
                worker,
                f"worker {worker} gave no reply within {timeout}s",
            )
        try:
            status, value = conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            raise self._mark_dead(worker) from None
        if status == "error":
            raise RuntimeError(
                f"worker {worker} failed:\n{value}"
            )
        return value

    def evaluate_shards(
        self,
        shards: list[list],
        generation: int,
        plans: list[list] | None = None,
        timeout: float | None = None,
    ) -> list[dict[int, FitnessResult]]:
        """Evaluate genome shards in parallel; shard i goes to worker i.

        ``plans``, when given, mirrors ``shards`` with each genome's
        pre-compiled :class:`~repro.neat.network.BatchedPlan`; workers then
        evaluate the shipped plans instead of recompiling.
        """
        if len(shards) > self.n_workers:
            raise ValueError(
                f"{len(shards)} shards for {self.n_workers} workers"
            )
        if plans is not None and len(plans) != len(shards):
            raise ValueError(
                f"{len(plans)} plan shards for {len(shards)} genome shards"
            )
        active = []
        for worker, shard in enumerate(shards):
            if not shard:
                continue
            request = EvalRequest(
                genomes_wire=encode_genomes(shard),
                generation=generation,
                plans_wire=(
                    encode_batched_plans(plans[worker])
                    if plans is not None
                    else None
                ),
            )
            self._request(worker, "eval", request)
            active.append(worker)
        replies = []
        for worker in active:
            reply = self._collect(worker, timeout=timeout)
            replies.append(reply.to_fitness_results())
        return replies

    def broadcast(
        self, command: str, payloads: list, timeout: float | None = None
    ) -> list:
        """Send one command per worker, collect all replies in order."""
        if len(payloads) != self.n_workers:
            raise ValueError("need exactly one payload per worker")
        for worker, payload in enumerate(payloads):
            self._request(worker, command, payload)
        return [
            self._collect(worker, timeout=timeout)
            for worker in range(self.n_workers)
        ]

    def send(self, worker: int, command: str, payload=None) -> None:
        """Fire one command at one worker without waiting for a reply.

        Pair with :meth:`wait_any` for asynchronous protocols (streaming
        ``clan_run`` progress, ``clan_halt`` nudges).
        """
        self._request(worker, command, payload)

    def wait_any(
        self, timeout: float | None = None
    ) -> list[tuple[int, str, object]]:
        """Collect every message currently readable from any live worker.

        Blocks up to ``timeout`` seconds (None = forever) for at least one
        message, then drains without blocking. Returns
        ``(worker, status, value)`` triples; a worker ``"error"`` status
        raises immediately, like the synchronous paths. A worker whose
        pipe hits EOF (process death) yields one ``"died"`` triple and is
        excluded from future waits until :meth:`respawn` replaces it —
        the signal the runtime's supervision loop acts on.
        """
        by_conn = {
            self._conns[worker]: worker
            for worker in range(self.n_workers)
            if worker not in self._dead
        }
        ready = mp_connection.wait(list(by_conn), timeout)
        out: list[tuple[int, str, object]] = []
        for conn in ready:
            worker = by_conn[conn]
            while True:
                try:
                    status, value = conn.recv()
                except (EOFError, ConnectionResetError, OSError):
                    with self._state_lock:
                        self._dead.add(worker)
                    out.append((worker, "died", None))
                    break
                if status == "error":
                    raise RuntimeError(f"worker {worker} failed:\n{value}")
                out.append((worker, status, value))
                if not conn.poll():
                    break
        return out

    # -- liveness / recovery ------------------------------------------------

    def is_alive(self, worker: int) -> bool:
        """Whether the worker's process is currently running."""
        return (
            worker not in self._dead and self._procs[worker].is_alive()
        )

    def ping(self, worker: int, timeout: float = 5.0) -> bool:
        """Heartbeat probe: True iff the worker answers within ``timeout``.

        Only meaningful on an idle worker (commands are served in order,
        so a busy worker answers late and a hung one never does).
        """
        try:
            self._request(worker, "ping", None)
            return self._collect(worker, timeout=timeout) == "pong"
        except WorkerFailure:
            return False

    def kill(self, worker: int) -> None:
        """Forcibly terminate a (presumed hung) worker process.

        Marks the slot dead; messages still queued in its pipe are
        dropped. Pair with :meth:`respawn` to bring the slot back.
        """
        proc = self._procs[worker]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5)
        with self._state_lock:
            self._dead.add(worker)
        try:
            self._conns[worker].close()
        except OSError:  # pragma: no cover - defensive
            pass

    def respawn(self, worker: int) -> None:
        """Replace a failed worker slot with a fresh process.

        The new process starts with the same evaluator arguments as the
        original but no clan state: the supervisor re-seeds it with
        ``clan_restore`` (from a checkpoint) before resuming work.
        """
        old = self._procs[worker]
        try:
            self._conns[worker].close()
        except OSError:  # pragma: no cover - defensive
            pass
        if old.is_alive():
            old.terminate()
            old.join(timeout=5)
            if old.is_alive():  # pragma: no cover - defensive
                old.kill()
                old.join(timeout=5)
        else:
            old.join(timeout=5)
        conn, proc = self._spawn_worker()
        with self._state_lock:
            self._conns[worker] = conn
            self._procs[worker] = proc
            self._dead.discard(worker)

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for worker, conn in enumerate(self._conns):
            try:
                if worker not in self._dead:
                    conn.send(("stop", None))
                    # drain until the stop ack: a free-running clan_run
                    # may have queued unsolicited progress/done messages
                    # nobody collected (e.g. run_async aborted early)
                    while True:
                        status, _value = conn.recv()
                        if status == "stopped":
                            break
            except (BrokenPipeError, EOFError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
