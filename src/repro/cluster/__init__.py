"""Edge-cluster substrate: what the paper's Raspberry-Pi testbed provides.

* :mod:`repro.cluster.netmodel` — the WiFi link (62.24 Mbps client-to-client,
  8.83 ms peer-to-peer latency for 64 B transfers, per paper section IV-A).
* :mod:`repro.cluster.device` — compute models for the platforms of
  Table IV (Pi, Jetson TX2 CPU/GPU, HPC CPU/GPU) plus the 32x32 systolic
  array of the custom-hardware study.
* :mod:`repro.cluster.serialization` — genomes as streams of 32-bit words
  (the paper's gene wire format).
* :mod:`repro.cluster.analytic` — closed-form per-generation phase timing
  over homogeneous or heterogeneous (per-agent device) fleets.
* :mod:`repro.cluster.simulator` — discrete-event cross-check of the
  analytic model, plus pipelined and barrier-free ``async`` execution
  modes (see ``docs/asynchrony.md``).
* :mod:`repro.cluster.transport` / :mod:`repro.cluster.runtime` — a real
  multiprocess execution backend (one OS process per simulated Pi), with
  lock-step and barrier-free clan drivers.
"""

from repro.cluster.netmodel import WiFiModel
from repro.cluster.device import DeviceModel, get_device, available_devices
from repro.cluster.serialization import (
    decode_batched_plan,
    decode_genome,
    encode_batched_plan,
    encode_genome,
    genome_wire_floats,
)

__all__ = [
    "WiFiModel",
    "DeviceModel",
    "get_device",
    "available_devices",
    "encode_genome",
    "decode_genome",
    "encode_batched_plan",
    "decode_batched_plan",
    "genome_wire_floats",
]
