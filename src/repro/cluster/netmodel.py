"""WiFi link timing model.

Parameterised from the paper's measured testbed (section IV-A): a
62.24 Mbps client-to-client local WiFi network with a peer-to-peer latency
of 8.83 ms for 64 B transfers. The paper further observes a "constant cost
of invoking the communication channels" that punishes chatty protocols; we
model a message as::

    time(bytes) = channel_setup + base_latency + bytes * 8 / bandwidth

``base_latency`` is calibrated so a 64 B transfer takes the published
8.83 ms. The technology study of Fig 10(a/b) ("what if the communication
technology used was better?") is expressed through :meth:`WiFiModel.scaled`,
which the paper approximates by halving the communication cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: paper-measured client-to-client bandwidth, bits per second
PAPER_BANDWIDTH_BPS = 62.24e6
#: paper-measured peer-to-peer time for a 64-byte transfer, seconds
PAPER_64B_LATENCY_S = 8.83e-3


@dataclass(frozen=True)
class WiFiModel:
    """Point-to-point link timing between two cluster nodes."""

    bandwidth_bps: float = PAPER_BANDWIDTH_BPS
    #: fixed per-message latency (medium access, kernel, python stack)
    base_latency_s: float = PAPER_64B_LATENCY_S - 64 * 8 / PAPER_BANDWIDTH_BPS
    #: per-message channel invocation cost at the sender (socket write path);
    #: the paper calls this "the constant cost of invoking the communication
    #: channels"
    channel_setup_s: float = 2.0e-3

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.base_latency_s < 0 or self.channel_setup_s < 0:
            raise ValueError("latencies must be non-negative")

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to deliver one message of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("message size cannot be negative")
        return (
            self.channel_setup_s
            + self.base_latency_s
            + n_bytes * 8 / self.bandwidth_bps
        )

    def sender_occupancy(self, n_bytes: int) -> float:
        """Seconds the *sender* is busy with one message.

        The sender serialises its transfers (a hub talking to n agents pays
        this n times); propagation latency overlaps with the next send, so
        occupancy excludes ``base_latency_s``.
        """
        if n_bytes < 0:
            raise ValueError("message size cannot be negative")
        return self.channel_setup_s + n_bytes * 8 / self.bandwidth_bps

    def scaled(self, factor: float) -> "WiFiModel":
        """A link whose every cost component is multiplied by ``factor``.

        ``scaled(0.5)`` reproduces the paper's Fig 10(a/b) approximation of
        better communication technology ("we halve the communication cost").
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            bandwidth_bps=self.bandwidth_bps / factor,
            base_latency_s=self.base_latency_s * factor,
            channel_setup_s=self.channel_setup_s * factor,
        )
