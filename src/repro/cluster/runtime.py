"""Physically parallel CLAN execution over OS processes.

While the engines in :mod:`repro.core.protocols` are logical (exact
algorithm, modelled time), the runtimes here actually fan work out to a
:class:`~repro.cluster.transport.WorkerPool` — one process per agent — and
measure real wall-clock. Two runtimes mirror the two interesting designs:

* :class:`ParallelInferenceRuntime` — distributed inference with central
  evolution (CLAN_DCS on your own CPU cores).
* :class:`DistributedClanRuntime` — fully asynchronous clans (CLAN_DDA);
  each worker hosts a clan and runs complete local generations.

Both reproduce the logical engines' results exactly: evaluation is
deterministic per (seed, generation), and clans use the same named RNG
streams as :class:`repro.core.protocols.CLAN_DDA`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.serialization import decode_genome, encode_genomes
from repro.cluster.transport import WorkerPool
from repro.core.partition import contiguous_blocks, round_robin
from repro.envs.registry import workload_spec
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import PlanCache, compile_batched
from repro.neat.population import Population
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class ChampionEvent:
    """A new global-best genome surfaced by a barrier-free run.

    Emitted by :meth:`DistributedClanRuntime.run_async` every time a clan
    report improves on the best champion the centre has seen so far — the
    hook the serving subsystem (:mod:`repro.serve`) uses to hot-swap a
    deployed policy mid-traffic, and what the ``repro serve`` summary
    prints per swap.
    """

    #: clan that produced the champion
    clan_id: int
    #: the clan-local generation that produced it
    generation: int
    #: key of the champion genome
    genome_key: int
    #: champion fitness (strictly increasing across a run's events)
    fitness: float
    #: the decoded champion genome itself
    genome: Genome


@dataclass
class RealRunStats:
    """Wall-clock measurements from a physically parallel run.

    Barrier-free runs (:meth:`DistributedClanRuntime.run_async`) also fill
    ``per_clan_generations`` — how many local generations each clan
    completed, which diverge on heterogeneous or contended hosts — and
    ``best_fitness_per_generation`` then holds the centre's best-so-far at
    each *report arrival* (one entry per clan generation received, in
    arrival order), not per global generation.
    """

    generations: int = 0
    wall_time_s: float = 0.0
    best_fitness: float = float("-inf")
    converged: bool = False
    per_generation_s: list[float] = field(default_factory=list)
    best_fitness_per_generation: list[float] = field(default_factory=list)
    per_clan_generations: list[int] = field(default_factory=list)
    #: champion-changed events in arrival order (run_async with champion
    #: streaming only); fitness is strictly increasing along this list
    champions: list[ChampionEvent] = field(default_factory=list)


class ParallelInferenceRuntime:
    """CLAN_DCS over real processes: inference on workers, evolution here."""

    def __init__(
        self,
        env_id: str,
        n_workers: int,
        config: NEATConfig | None = None,
        seed: int = 0,
        max_steps: int | None = None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
    ):
        """``backend="batched"`` evaluates with the NumPy engine; the centre
        then compiles each genome once and ships the lowered plan alongside
        it, so workers skip recompilation. ``eval_mode="population"``
        additionally makes each worker roll its whole shard forward as one
        vectorized sweep (stacked plans against the array-native
        environment) instead of genome-by-genome.

        Trade-off: each genome is evaluated by exactly one worker per
        generation, so shipping plans moves compile work onto the centre
        rather than deduplicating it. That mirrors the paper's asymmetric
        deployments (a strong centre feeding weak edge agents); on a
        symmetric local pool the codec overhead roughly offsets the saved
        worker-side compiles."""
        self.env_id = env_id
        self.config = config or NEATConfig.for_env(env_id)
        self.seed = seed
        self.backend = backend
        #: centre-side compiled-plan cache: weight-only children reuse
        #: their parent topology's lowered layout across generations, so
        #: shard compilation pays only an array refill for most genomes
        self.plan_cache = PlanCache() if backend == "batched" else None
        self.population = Population(self.config, seed=seed)
        rngs = RngFactory(seed)
        self.pool = WorkerPool(
            n_workers,
            env_id,
            self.config,
            evaluator_seed=rngs.seed_for("episodes") % (2**31),
            max_steps=max_steps,
            backend=backend,
            eval_mode=eval_mode,
        )
        self.solved_threshold = workload_spec(env_id).solved_threshold

    def run(
        self,
        max_generations: int,
        fitness_threshold: float | None = None,
    ) -> RealRunStats:
        """Evolve with physically distributed inference."""
        threshold = (
            self.solved_threshold
            if fitness_threshold is None
            else fitness_threshold
        )
        stats = RealRunStats()
        start = time.perf_counter()

        def evaluate(genomes, generation):
            ordered = sorted(genomes, key=lambda g: g.key)
            shards = round_robin(ordered, self.pool.n_workers)
            plans = None
            if self.backend == "batched":
                plans = [
                    [
                        compile_batched(
                            g, self.config, cache=self.plan_cache
                        )
                        for g in shard
                    ]
                    for shard in shards
                ]
            results = {}
            for reply in self.pool.evaluate_shards(
                shards, generation, plans=plans
            ):
                results.update(reply)
            return results

        for _ in range(max_generations):
            gen_start = time.perf_counter()
            gen_stats = self.population.run_generation(evaluate)
            stats.per_generation_s.append(time.perf_counter() - gen_start)
            stats.best_fitness_per_generation.append(gen_stats.best_fitness)
            stats.generations += 1
            stats.best_fitness = max(
                stats.best_fitness, gen_stats.best_fitness
            )
            if gen_stats.best_fitness >= threshold:
                stats.converged = True
                break
        stats.wall_time_s = time.perf_counter() - start
        return stats

    @property
    def best_genome(self) -> Genome | None:
        return self.population.best_genome

    def shutdown(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "ParallelInferenceRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class DistributedClanRuntime:
    """CLAN_DDA over real processes: each worker hosts a full clan."""

    def __init__(
        self,
        env_id: str,
        n_clans: int,
        config: NEATConfig | None = None,
        seed: int = 0,
        max_steps: int | None = None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
    ):
        """``backend="batched"`` makes every clan evaluate its members with
        the NumPy engine (episodes step in lockstep on the worker);
        ``eval_mode="population"`` makes each clan evaluate its whole
        membership as one vectorized sweep per generation."""
        self.env_id = env_id
        self.config = config or NEATConfig.for_env(env_id)
        if self.config.pop_size < 2 * n_clans:
            raise ValueError(
                f"population of {self.config.pop_size} cannot form "
                f"{n_clans} clans of >= 2 members"
            )
        self.n_clans = n_clans
        self.seed = seed
        self.rngs = RngFactory(seed)
        self.solved_threshold = workload_spec(env_id).solved_threshold

        # identical initial population + partition to the logical engine
        seed_population = Population(self.config, seed=seed)
        blocks = contiguous_blocks(sorted(seed_population.genomes), n_clans)

        self.pool = WorkerPool(
            n_clans,
            env_id,
            self.config,
            evaluator_seed=self.rngs.seed_for("episodes") % (2**31),
            max_steps=max_steps,
            backend=backend,
            eval_mode=eval_mode,
        )
        payloads = []
        for clan_id, block in enumerate(blocks):
            members = [seed_population.genomes[key] for key in block]
            payloads.append(
                {
                    "clan_id": clan_id,
                    "n_clans": n_clans,
                    "members_wire": encode_genomes(members),
                    "rng_seed": self.rngs.child(
                        f"clan:{clan_id}"
                    ).root_seed,
                    "next_genome_key": self.config.pop_size + clan_id,
                    "num_outputs": self.config.num_outputs,
                }
            )
        self.pool.broadcast("clan_init", payloads)
        self._generation = 0

    def run(
        self,
        max_generations: int,
        fitness_threshold: float | None = None,
    ) -> RealRunStats:
        """Run asynchronous clans in parallel until convergence."""
        threshold = (
            self.solved_threshold
            if fitness_threshold is None
            else fitness_threshold
        )
        stats = RealRunStats()
        start = time.perf_counter()
        for _ in range(max_generations):
            gen_start = time.perf_counter()
            summaries = self.pool.broadcast(
                "clan_step", [self._generation] * self.n_clans
            )
            self._generation += 1
            best = max(s.best_fitness for s in summaries)
            stats.per_generation_s.append(time.perf_counter() - gen_start)
            stats.best_fitness_per_generation.append(best)
            stats.generations += 1
            stats.best_fitness = max(stats.best_fitness, best)
            if best >= threshold:
                stats.converged = True
                break
        stats.wall_time_s = time.perf_counter() - start
        return stats

    def run_async(
        self,
        max_generations: int,
        fitness_threshold: float | None = None,
        on_champion: Callable[[ChampionEvent], None] | None = None,
        stop: threading.Event | None = None,
    ) -> RealRunStats:
        """Barrier-free execution: no per-generation pool join.

        Every worker free-runs its clan for up to ``max_generations``
        local generations, streaming a summary after each one; the centre
        consumes reports as they arrive and tracks best-so-far. When any
        report crosses the threshold the centre nudges the other clans to
        halt after their in-flight generation — fast clans never wait for
        stragglers, which is where this driver beats :meth:`run` on
        heterogeneous fleets (see ``docs/asynchrony.md``).

        ``on_champion`` turns on champion streaming: clans additionally
        ship their champion genome whenever their best-ever fitness
        improves, and the centre fires one :class:`ChampionEvent` per
        *global* improvement (cross-clan duplicates are filtered, so
        event fitness is strictly increasing). Events are also collected
        on ``stats.champions``. The callback runs on the caller's thread
        between report arrivals; :mod:`repro.serve` uses it to hot-swap
        the deployed policy with zero downtime.

        ``stop``, when given, is polled between report batches: setting
        it nudges every active clan to halt after its in-flight
        generation and the call returns once they drain — the external
        counterpart of the threshold halt, used by long-lived hosts
        (:class:`repro.serve.ContinuousService`) to wind down evolution
        without tearing the pool down mid-message.

        Unlike :meth:`run`, clans drift apart in generation count, so the
        best-so-far trajectory is indexed by report arrival, and
        ``stats.generations`` is the *maximum* clan generation count.
        """
        threshold = (
            self.solved_threshold
            if fitness_threshold is None
            else fitness_threshold
        )
        stats = RealRunStats()
        stats.per_clan_generations = [0] * self.n_clans
        start = time.perf_counter()

        payload = {
            "start_generation": self._generation,
            "max_generations": max_generations,
            "threshold": threshold,
            "stream_champions": on_champion is not None,
        }
        for worker in range(self.n_clans):
            self.pool.send(worker, "clan_run", payload)

        active = set(range(self.n_clans))
        halt_sent = False
        champion_best = float("-inf")
        # a blocking wait is fine without a stop event; with one, wake up
        # periodically so an external stop is honoured promptly
        wait_timeout = None if stop is None else 0.05
        while active:
            if stop is not None and stop.is_set() and not halt_sent:
                halt_sent = True
                for other in active:
                    self.pool.send(other, "clan_halt")
            for worker, status, value in self.pool.wait_any(wait_timeout):
                if status == "champion":
                    # clans stream their *local* improvements; only
                    # global improvements become events
                    if value["fitness"] > champion_best:
                        champion_best = value["fitness"]
                        genome = decode_genome(value["genome_wire"])
                        event = ChampionEvent(
                            clan_id=value["clan_id"],
                            generation=value["generation"],
                            genome_key=genome.key,
                            fitness=value["fitness"],
                            genome=genome,
                        )
                        stats.champions.append(event)
                        if on_champion is not None:
                            on_champion(event)
                elif status == "progress":
                    stats.per_clan_generations[worker] += 1
                    stats.best_fitness = max(
                        stats.best_fitness, value.best_fitness
                    )
                    stats.best_fitness_per_generation.append(
                        stats.best_fitness
                    )
                    if value.best_fitness >= threshold:
                        stats.converged = True
                        if not halt_sent:
                            halt_sent = True
                            for other in active:
                                if other != worker:
                                    self.pool.send(other, "clan_halt")
                elif status == "done":
                    active.discard(worker)

        self._generation += max(stats.per_clan_generations, default=0)
        stats.generations = max(stats.per_clan_generations, default=0)
        stats.wall_time_s = time.perf_counter() - start
        return stats

    def best_genome(self) -> Genome:
        """Gather per-clan champions and return the global best."""
        champions = [
            decode_genome(wire)
            for wire in self.pool.broadcast(
                "clan_best", [None] * self.n_clans
            )
        ]
        return max(champions, key=lambda g: g.fitness)

    def shutdown(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "DistributedClanRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
