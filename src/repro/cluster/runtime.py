"""Physically parallel CLAN execution over OS processes.

While the engines in :mod:`repro.core.protocols` are logical (exact
algorithm, modelled time), the runtimes here actually fan work out to a
:class:`~repro.cluster.transport.WorkerPool` — one process per agent — and
measure real wall-clock. Two runtimes mirror the two interesting designs:

* :class:`ParallelInferenceRuntime` — distributed inference with central
  evolution (CLAN_DCS on your own CPU cores).
* :class:`DistributedClanRuntime` — fully asynchronous clans (CLAN_DDA);
  each worker hosts a clan and runs complete local generations.

Both reproduce the logical engines' results exactly: evaluation is
deterministic per (seed, generation), and clans use the same named RNG
streams as :class:`repro.core.protocols.CLAN_DDA`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import clock
from repro.obs import tracer as obs
from repro.cluster.serialization import decode_genome, encode_genomes
from repro.cluster.transport import (
    WorkerDied,
    WorkerFailure,
    WorkerPool,
    WorkerTimeout,
)
from repro.core.metrics import ChurnStats
from repro.core.partition import contiguous_blocks, round_robin
from repro.neat.checkpoint import decode_genome_hex
from repro.envs.registry import workload_spec
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import PlanCache, compile_batched
from repro.neat.population import Population
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class ChampionEvent:
    """A new global-best genome surfaced by a barrier-free run.

    Emitted by :meth:`DistributedClanRuntime.run_async` every time a clan
    report improves on the best champion the centre has seen so far — the
    hook the serving subsystem (:mod:`repro.serve`) uses to hot-swap a
    deployed policy mid-traffic, and what the ``repro serve`` summary
    prints per swap.
    """

    #: clan that produced the champion
    clan_id: int
    #: the clan-local generation that produced it
    generation: int
    #: key of the champion genome
    genome_key: int
    #: champion fitness (strictly increasing across a run's events)
    fitness: float
    #: the decoded champion genome itself
    genome: Genome


@dataclass
class RealRunStats:
    """Wall-clock measurements from a physically parallel run.

    Barrier-free runs (:meth:`DistributedClanRuntime.run_async`) also fill
    ``per_clan_generations`` — how many local generations each clan
    completed, which diverge on heterogeneous or contended hosts — and
    ``best_fitness_per_generation`` then holds the centre's best-so-far at
    each *report arrival* (one entry per clan generation received, in
    arrival order), not per global generation.
    """

    generations: int = 0
    wall_time_s: float = 0.0
    best_fitness: float = float("-inf")
    converged: bool = False
    per_generation_s: list[float] = field(default_factory=list)
    best_fitness_per_generation: list[float] = field(default_factory=list)
    per_clan_generations: list[int] = field(default_factory=list)
    #: champion-changed events in arrival order (run_async with champion
    #: streaming only); fitness is strictly increasing along this list
    champions: list[ChampionEvent] = field(default_factory=list)
    #: device-churn counters (deaths, respawns, lost/re-assigned
    #: generations, recovery latencies) filled by the supervision loop;
    #: all-zero on an undisturbed run
    churn: ChurnStats = field(default_factory=ChurnStats)


class ParallelInferenceRuntime:
    """CLAN_DCS over real processes: inference on workers, evolution here."""

    def __init__(
        self,
        env_id: str,
        n_workers: int,
        config: NEATConfig | None = None,
        seed: int = 0,
        max_steps: int | None = None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
    ):
        """``backend="batched"`` evaluates with the NumPy engine; the centre
        then compiles each genome once and ships the lowered plan alongside
        it, so workers skip recompilation. ``eval_mode="population"``
        additionally makes each worker roll its whole shard forward as one
        vectorized sweep (stacked plans against the array-native
        environment) instead of genome-by-genome.

        Trade-off: each genome is evaluated by exactly one worker per
        generation, so shipping plans moves compile work onto the centre
        rather than deduplicating it. That mirrors the paper's asymmetric
        deployments (a strong centre feeding weak edge agents); on a
        symmetric local pool the codec overhead roughly offsets the saved
        worker-side compiles."""
        self.env_id = env_id
        self.config = config or NEATConfig.for_env(env_id)
        self.seed = seed
        self.backend = backend
        #: centre-side compiled-plan cache: weight-only children reuse
        #: their parent topology's lowered layout across generations, so
        #: shard compilation pays only an array refill for most genomes
        self.plan_cache = PlanCache() if backend == "batched" else None
        self.population = Population(self.config, seed=seed)
        rngs = RngFactory(seed)
        self.pool = WorkerPool(
            n_workers,
            env_id,
            self.config,
            evaluator_seed=rngs.seed_for("episodes") % (2**31),
            max_steps=max_steps,
            backend=backend,
            eval_mode=eval_mode,
        )
        self.solved_threshold = workload_spec(env_id).solved_threshold

    def run(
        self,
        max_generations: int,
        fitness_threshold: float | None = None,
    ) -> RealRunStats:
        """Evolve with physically distributed inference."""
        threshold = (
            self.solved_threshold
            if fitness_threshold is None
            else fitness_threshold
        )
        stats = RealRunStats()
        start = clock.perf()

        def evaluate(genomes, generation):
            ordered = sorted(genomes, key=lambda g: g.key)
            shards = round_robin(ordered, self.pool.n_workers)
            plans = None
            if self.backend == "batched":
                plans = [
                    [
                        compile_batched(
                            g, self.config, cache=self.plan_cache
                        )
                        for g in shard
                    ]
                    for shard in shards
                ]
            results = {}
            for reply in self.pool.evaluate_shards(
                shards, generation, plans=plans
            ):
                results.update(reply)
            return results

        for _ in range(max_generations):
            gen_start = clock.perf()
            with obs.span("generation", gen=stats.generations):
                gen_stats = self.population.run_generation(evaluate)
            stats.per_generation_s.append(clock.perf() - gen_start)
            stats.best_fitness_per_generation.append(gen_stats.best_fitness)
            stats.generations += 1
            stats.best_fitness = max(
                stats.best_fitness, gen_stats.best_fitness
            )
            if gen_stats.best_fitness >= threshold:
                stats.converged = True
                break
        stats.wall_time_s = clock.perf() - start
        return stats

    @property
    def best_genome(self) -> Genome | None:
        return self.population.best_genome

    def shutdown(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "ParallelInferenceRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class DistributedClanRuntime:
    """CLAN_DDA over real processes: each worker hosts a full clan."""

    def __init__(
        self,
        env_id: str,
        n_clans: int,
        config: NEATConfig | None = None,
        seed: int = 0,
        max_steps: int | None = None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
        max_respawns: int = 2,
        heartbeat_timeout_s: float | None = 30.0,
        checkpoint_period: int = 1,
        respawn_backoff_s: float = 0.05,
        command_timeout_s: float = 30.0,
        checkpoint_store=None,
        chaos=None,
    ):
        """``backend="batched"`` makes every clan evaluate its members with
        the NumPy engine (episodes step in lockstep on the worker);
        ``eval_mode="population"`` makes each clan evaluate its whole
        membership as one vectorized sweep per generation.

        Fault tolerance (on by default — see ``docs/fault_tolerance.md``):
        a clan whose process dies or stalls mid-run is respawned from its
        latest checkpoint, up to ``max_respawns`` times per clan per run
        (with exponential backoff starting at ``respawn_backoff_s``),
        after which the clan is abandoned and its remaining generation
        budget re-assigned to survivors. ``heartbeat_timeout_s`` bounds
        how long a clan may go without reporting before it is presumed
        hung and killed (None disables stall detection; raise it well
        above your slowest generation). ``checkpoint_period`` sets how
        many local generations elapse between streamed clan checkpoints
        (1 = every generation; higher trades recovery re-work for less
        checkpoint traffic). ``command_timeout_s`` bounds individual
        request/reply commands (restore, best-genome collection).
        Recovery is exact: re-running a generation from a checkpoint is
        bit-identical to the original run, so an undisturbed run's
        trajectory is unchanged by any of these settings.

        ``checkpoint_store`` (a :class:`repro.cluster.store.CheckpointStore`)
        makes the run durable against *driver* death: every clan
        checkpoint the runtime receives is also streamed to disk as it
        lands, so a SIGKILLed driver no longer takes the run's recovery
        state with it. ``chaos`` (a :class:`repro.chaos.ChaosInjector`)
        is forwarded to the worker pool for replayable fault injection —
        see ``docs/chaos.md``.
        """
        if checkpoint_period < 1:
            raise ValueError("checkpoint_period must be >= 1")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self.env_id = env_id
        self.config = config or NEATConfig.for_env(env_id)
        if self.config.pop_size < 2 * n_clans:
            raise ValueError(
                f"population of {self.config.pop_size} cannot form "
                f"{n_clans} clans of >= 2 members"
            )
        self.n_clans = n_clans
        self.seed = seed
        self.rngs = RngFactory(seed)
        self.solved_threshold = workload_spec(env_id).solved_threshold
        self.max_respawns = max_respawns
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.checkpoint_period = checkpoint_period
        self.respawn_backoff_s = respawn_backoff_s
        self.command_timeout_s = command_timeout_s
        #: clans abandoned after exhausting their respawn budget; they
        #: take no further part in runs, and best-genome collection falls
        #: back to their last checkpoint
        self._lost: set[int] = set()

        # identical initial population + partition to the logical engine
        seed_population = Population(self.config, seed=seed)
        blocks = contiguous_blocks(sorted(seed_population.genomes), n_clans)

        self.pool = WorkerPool(
            n_clans,
            env_id,
            self.config,
            evaluator_seed=self.rngs.seed_for("episodes") % (2**31),
            max_steps=max_steps,
            backend=backend,
            eval_mode=eval_mode,
            chaos=chaos,
        )
        self._store = checkpoint_store
        payloads = []
        for clan_id, block in enumerate(blocks):
            members = [seed_population.genomes[key] for key in block]
            payloads.append(
                {
                    "clan_id": clan_id,
                    "n_clans": n_clans,
                    "members_wire": encode_genomes(members),
                    "rng_seed": self.rngs.child(
                        f"clan:{clan_id}"
                    ).root_seed,
                    "next_genome_key": self.config.pop_size + clan_id,
                    "num_outputs": self.config.num_outputs,
                }
            )
        # clan_init replies with each clan's *initial* checkpoint, so a
        # worker that dies before its first streamed checkpoint can still
        # be respawned from generation zero
        replies = self.pool.broadcast("clan_init", payloads)
        self._checkpoints: dict[int, dict] = {}
        for clan_id, reply in enumerate(replies):
            self._record_checkpoint(clan_id, reply)
        self._write_store_manifest()
        self._generation = 0

    def _record_checkpoint(self, worker: int, payload: dict) -> None:
        """Retain a clan checkpoint — and stream it to durable storage.

        The in-memory dict serves respawns within this driver process;
        the optional :class:`~repro.cluster.store.CheckpointStore` makes
        the same state survive the driver itself (atomic, checksummed
        writes — a crash mid-stream leaves the previous checkpoint
        intact).
        """
        self._checkpoints[worker] = payload
        if self._store is not None:
            self._store.put_clan(worker, payload)

    def _write_store_manifest(self) -> None:
        if self._store is None:
            return
        self._store.write_manifest(
            "clan-run",
            {
                "env_id": self.env_id,
                "n_clans": self.n_clans,
                "seed": self.seed,
                "pop_size": self.config.pop_size,
                "checkpoint_period": self.checkpoint_period,
            },
        )

    def run(
        self,
        max_generations: int,
        fitness_threshold: float | None = None,
    ) -> RealRunStats:
        """Run asynchronous clans in parallel until convergence.

        Supervised: a clan process that dies (pipe EOF) or stalls past
        ``heartbeat_timeout_s`` during a step is respawned from its
        latest checkpoint, replayed up to the in-flight generation
        (bit-identical — every RNG stream is generation-named), and the
        step retried; after ``max_respawns`` failures the clan is
        abandoned and the run continues on the survivors. Churn is
        tallied on ``stats.churn``.
        """
        threshold = (
            self.solved_threshold
            if fitness_threshold is None
            else fitness_threshold
        )
        stats = RealRunStats()
        start = clock.perf()
        respawns_used = {w: 0 for w in range(self.n_clans)}
        for _ in range(max_generations):
            gen_start = clock.perf()
            with obs.span("generation", gen=self._generation):
                summaries = self._supervised_step(
                    stats.churn, respawns_used
                )
            self._generation += 1
            best = max(s.best_fitness for s in summaries)
            stats.per_generation_s.append(clock.perf() - gen_start)
            stats.best_fitness_per_generation.append(best)
            stats.generations += 1
            stats.best_fitness = max(stats.best_fitness, best)
            if best >= threshold:
                stats.converged = True
                break
        stats.wall_time_s = clock.perf() - start
        return stats

    def _supervised_step(
        self, churn: "ChurnStats", respawns_used: dict[int, int]
    ) -> list:
        """One barrier generation across all live clans, with recovery."""
        live = [w for w in range(self.n_clans) if w not in self._lost]
        if not live:
            raise RuntimeError("no live clans remain (all lost to churn)")
        generation = self._generation
        pending = []
        for worker in live:
            try:
                self.pool._request(worker, "clan_step", generation)
            except WorkerDied:
                if not self._recover_barrier(
                    worker, churn, respawns_used
                ):
                    continue
            pending.append(worker)
        summaries = []
        for worker in pending:
            while True:
                try:
                    summaries.append(
                        self.pool._collect(
                            worker, timeout=self.heartbeat_timeout_s
                        )
                    )
                    break
                except WorkerTimeout:
                    # alive but silent past the heartbeat window:
                    # presumed hung — kill, then recover like a death
                    self.pool.kill(worker)
                except WorkerDied:
                    pass
                if not self._recover_barrier(
                    worker, churn, respawns_used
                ):
                    break
        if not summaries:
            raise RuntimeError("no live clans remain (all lost to churn)")
        if (generation + 1) % self.checkpoint_period == 0:
            for worker in live:
                if worker in self._lost:
                    continue
                try:
                    self.pool._request(worker, "clan_checkpoint", None)
                    self._record_checkpoint(
                        worker,
                        self.pool._collect(
                            worker, timeout=self.command_timeout_s
                        ),
                    )
                except WorkerFailure:
                    # failed mid-refresh: the stale checkpoint stands and
                    # the next step's supervision handles the worker
                    pass
        return summaries

    def _recover_barrier(
        self, worker: int, churn: "ChurnStats", respawns_used: dict[int, int]
    ) -> bool:
        """Respawn ``worker`` and replay it up to the in-flight barrier
        generation; False when it is abandoned instead (budget spent)."""
        churn.deaths += 1
        obs.instant("clan_death", clan=worker, gen=self._generation)
        checkpoint = self._checkpoints[worker]
        completed = checkpoint.get("completed_generation")
        resume = 0 if completed is None else completed + 1
        churn.lost_generations += max(0, self._generation - resume)
        if respawns_used[worker] >= self.max_respawns:
            self._lost.add(worker)
            churn.clans_lost += 1
            obs.instant("clan_lost", clan=worker, gen=self._generation)
            return False
        respawns_used[worker] += 1
        started = clock.perf()
        backoff = self.respawn_backoff_s * (
            2 ** (respawns_used[worker] - 1)
        )
        if backoff:
            time.sleep(backoff)
        self.pool.respawn(worker)
        self.pool._request(worker, "clan_restore", checkpoint)
        self.pool._collect(worker, timeout=self.command_timeout_s)
        # deterministic catch-up: re-run every generation since the
        # checkpoint, then re-issue the in-flight one (caller collects)
        for generation in range(resume, self._generation):
            self.pool._request(worker, "clan_step", generation)
            self.pool._collect(worker, timeout=self.heartbeat_timeout_s)
        self.pool._request(worker, "clan_step", self._generation)
        churn.respawns += 1
        churn.recovery_latency_s.append(clock.perf() - started)
        obs.instant("respawn", clan=worker, resume=resume)
        return True

    def run_async(
        self,
        max_generations: int,
        fitness_threshold: float | None = None,
        on_champion: Callable[[ChampionEvent], None] | None = None,
        stop: threading.Event | None = None,
    ) -> RealRunStats:
        """Barrier-free execution: no per-generation pool join.

        Every worker free-runs its clan for up to ``max_generations``
        local generations, streaming a summary after each one; the centre
        consumes reports as they arrive and tracks best-so-far. When any
        report crosses the threshold the centre nudges the other clans to
        halt after their in-flight generation — fast clans never wait for
        stragglers, which is where this driver beats :meth:`run` on
        heterogeneous fleets (see ``docs/asynchrony.md``).

        ``on_champion`` turns on champion streaming: clans additionally
        ship their champion genome whenever their best-ever fitness
        improves, and the centre fires one :class:`ChampionEvent` per
        *global* improvement (cross-clan duplicates are filtered, so
        event fitness is strictly increasing). Events are also collected
        on ``stats.champions``. The callback runs on the caller's thread
        between report arrivals; :mod:`repro.serve` uses it to hot-swap
        the deployed policy with zero downtime.

        ``stop``, when given, is polled between report batches: setting
        it nudges every active clan to halt after its in-flight
        generation and the call returns once they drain — the external
        counterpart of the threshold halt, used by long-lived hosts
        (:class:`repro.serve.ContinuousService`) to wind down evolution
        without tearing the pool down mid-message.

        Unlike :meth:`run`, clans drift apart in generation count, so the
        best-so-far trajectory is indexed by report arrival, and
        ``stats.generations`` is the *maximum* clan generation count.

        Supervision (see ``docs/fault_tolerance.md``): progress reports
        double as heartbeats. A clan whose process dies mid-run — or goes
        silent past ``heartbeat_timeout_s`` and is presumed hung — is
        respawned from its latest streamed checkpoint and free-runs again
        from there; replayed generations are bit-identical and are not
        double-counted in the stats. After ``max_respawns`` failures the
        clan is abandoned and its remaining generation budget handed to
        the first surviving clan that drains its own. Churn is tallied on
        ``stats.churn``; an undisturbed run's outputs are unchanged.
        """
        threshold = (
            self.solved_threshold
            if fitness_threshold is None
            else fitness_threshold
        )
        stats = RealRunStats()
        stats.per_clan_generations = [0] * self.n_clans
        churn = stats.churn
        start = clock.perf()
        run_start = self._generation
        stream = on_champion is not None

        def run_payload(start_generation: int, budget: int) -> dict:
            return {
                "start_generation": start_generation,
                "max_generations": budget,
                "threshold": threshold,
                "stream_champions": stream,
                "checkpoint_period": self.checkpoint_period,
                # workers trace (and ship span batches back) iff the
                # driver process has an active tracer to merge them into
                "trace": obs.current() is not None,
            }

        active: set[int] = set()
        #: highest generation number each clan has *completed and
        #: reported* — replays after a respawn re-report the same
        #: numbers and are filtered against this
        max_done: dict[int, int] = {}
        #: inclusive final generation each clan owes (grows when a lost
        #: clan's budget is re-assigned)
        clan_end: dict[int, int] = {}
        respawns_used: dict[int, int] = {}
        last_seen: dict[int, float] = {}
        reassign_pool = 0
        halt_sent = False
        champion_best = float("-inf")

        def send_halt_all() -> None:
            for other in sorted(active):
                try:
                    self.pool.send(other, "clan_halt")
                except WorkerDied:
                    fail(other)

        def fail(worker: int) -> None:
            """Death handler: respawn from checkpoint or abandon."""
            nonlocal reassign_pool
            churn.deaths += 1
            obs.instant("clan_death", clan=worker)
            active.discard(worker)
            completed = self._checkpoints[worker].get(
                "completed_generation"
            )
            resume = 0 if completed is None else completed + 1
            # completed-but-uncheckpointed generations must be re-run
            # (or die with the clan)
            churn.lost_generations += max(
                0, max_done[worker] - resume + 1
            )
            if halt_sent or stats.converged:
                # winding down anyway; recovery would re-do work only to
                # halt it again
                return
            if respawns_used[worker] >= self.max_respawns:
                self._lost.add(worker)
                churn.clans_lost += 1
                obs.instant("clan_lost", clan=worker)
                reassign_pool += max(
                    0, clan_end[worker] - max(max_done[worker], resume - 1)
                )
                return
            respawns_used[worker] += 1
            started = clock.perf()
            backoff = self.respawn_backoff_s * (
                2 ** (respawns_used[worker] - 1)
            )
            if backoff:
                time.sleep(backoff)
            self.pool.respawn(worker)
            self.pool._request(
                worker, "clan_restore", self._checkpoints[worker]
            )
            self.pool._collect(worker, timeout=self.command_timeout_s)
            budget = clan_end[worker] - resume + 1
            if budget > 0:
                self.pool.send(
                    worker, "clan_run", run_payload(resume, budget)
                )
                active.add(worker)
            churn.respawns += 1
            churn.recovery_latency_s.append(
                clock.perf() - started
            )
            obs.instant("respawn", clan=worker, resume=resume)
            last_seen[worker] = clock.perf()

        now = clock.perf()
        for worker in range(self.n_clans):
            if worker in self._lost:
                continue
            clan_end[worker] = run_start + max_generations - 1
            max_done[worker] = run_start - 1
            respawns_used[worker] = 0
            last_seen[worker] = now
            active.add(worker)
            try:
                self.pool.send(
                    worker,
                    "clan_run",
                    run_payload(run_start, max_generations),
                )
            except WorkerDied:
                fail(worker)
        if not active and max_generations > 0 and not self._lost:
            raise RuntimeError("no live clans remain (all lost to churn)")

        # a blocking wait is fine without a stop event or heartbeat; with
        # either, wake up periodically so stops and stall detection are
        # honoured promptly
        wait_timeout = (
            None
            if stop is None and self.heartbeat_timeout_s is None
            else 0.05
        )
        while active:
            if stop is not None and stop.is_set() and not halt_sent:
                halt_sent = True
                send_halt_all()
            for worker, status, value in self.pool.wait_any(wait_timeout):
                last_seen[worker] = clock.perf()
                if status == "spans":
                    # span batch shipped by a traced worker clan: merge
                    # into the driver's trace (pipe order preserves the
                    # clan's own event ordering)
                    tracer = obs.current()
                    if tracer is not None:
                        tracer.absorb(value)
                elif status == "checkpoint":
                    self._record_checkpoint(worker, value)
                elif status == "champion":
                    # clans stream their *local* improvements; only
                    # global improvements become events (this also
                    # filters re-streamed champions from replays)
                    if value["fitness"] > champion_best:
                        champion_best = value["fitness"]
                        genome = decode_genome(value["genome_wire"])
                        event = ChampionEvent(
                            clan_id=value["clan_id"],
                            generation=value["generation"],
                            genome_key=genome.key,
                            fitness=value["fitness"],
                            genome=genome,
                        )
                        stats.champions.append(event)
                        if on_champion is not None:
                            on_champion(event)
                elif status == "progress":
                    generation = value.generation
                    if generation <= max_done[worker]:
                        # bit-identical replay of an already-counted
                        # generation after a respawn
                        continue
                    max_done[worker] = generation
                    stats.per_clan_generations[worker] = (
                        generation - run_start + 1
                    )
                    stats.best_fitness = max(
                        stats.best_fitness, value.best_fitness
                    )
                    stats.best_fitness_per_generation.append(
                        stats.best_fitness
                    )
                    if value.best_fitness >= threshold:
                        stats.converged = True
                        if not halt_sent:
                            halt_sent = True
                            send_halt_all()
                elif status == "done":
                    if (
                        reassign_pool > 0
                        and not halt_sent
                        and not stats.converged
                    ):
                        # inherit a lost clan's unspent budget: keep
                        # free-running past our own end
                        extra = reassign_pool
                        reassign_pool = 0
                        resume = max_done[worker] + 1
                        clan_end[worker] = resume + extra - 1
                        churn.reassigned_generations += extra
                        try:
                            self.pool.send(
                                worker,
                                "clan_run",
                                run_payload(resume, extra),
                            )
                        except WorkerDied:
                            fail(worker)
                    else:
                        active.discard(worker)
                elif status == "died":
                    fail(worker)
            if self.heartbeat_timeout_s is not None:
                now = clock.perf()
                for worker in sorted(active):
                    if now - last_seen[worker] > self.heartbeat_timeout_s:
                        # silent past the heartbeat window: presumed
                        # hung — kill, then recover like a death
                        self.pool.kill(worker)
                        fail(worker)

        self._generation += max(stats.per_clan_generations, default=0)
        stats.generations = max(stats.per_clan_generations, default=0)
        stats.wall_time_s = clock.perf() - start
        return stats

    def best_genome(self) -> Genome:
        """Gather per-clan champions and return the global best.

        Dead or abandoned clans contribute their last checkpointed
        champion, so a run that lost clans still yields its best genome.
        """
        champions = []
        for worker in range(self.n_clans):
            wire = None
            if worker not in self._lost and self.pool.is_alive(worker):
                try:
                    self.pool._request(worker, "clan_best", None)
                    wire = self.pool._collect(
                        worker, timeout=self.command_timeout_s
                    )
                except WorkerFailure:
                    wire = None
            if wire is not None:
                champions.append(decode_genome(wire))
                continue
            best_hex = self._checkpoints[worker].get("best_hex")
            if best_hex is not None:
                champions.append(decode_genome_hex(best_hex))
        if not champions:
            raise RuntimeError("no generation has run yet")
        return max(champions, key=lambda g: g.fitness)

    def shutdown(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "DistributedClanRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
